//! Quickstart: search a synthetic protein database with cuBLASTP on the
//! simulated K20c and print the hit list.
//!
//! ```text
//! cargo run --release -p examples --bin quickstart -- --query-len 127 --seqs 2000
//! ```

use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig};
use examples_support::{arg, print_report};
use gpu_sim::DeviceConfig;

fn main() {
    let query_len: usize = arg("--query-len", 127);
    let seqs: usize = arg("--seqs", 2_000);

    // 1. A query and a database. Real users would load FASTA via
    //    `bio_seq::fasta`; here we synthesize a database with homologies
    //    planted against the query.
    let query = make_query(query_len);
    let spec = DbSpec {
        name: "demo",
        num_sequences: seqs,
        mean_length: 300,
        homolog_fraction: 0.02,
        seed: 7,
    };
    let db = generate_db(&spec, &query).db;
    println!(
        "database: {} sequences, {} residues; query: {} ({} aa)",
        db.len(),
        db.total_residues(),
        query.id,
        query.len()
    );

    // 2. Build the searcher (DFA, PSSM, cutoffs, device upload) and run.
    let searcher = CuBlastp::new(
        query.clone(),
        SearchParams::default(),
        CuBlastpConfig::default(),
        DeviceConfig::k20c(),
        &db,
    );
    let result = searcher.search(&db).expect("fault-free search");

    // 3. Results: identical to FSA-BLAST, plus GPU-side telemetry.
    print_report(&result.report, &query.id, 10);
    println!("\nsimulated K20c telemetry:");
    for k in &result.kernels {
        println!(
            "  {:<28} {:>8.3} ms  load-eff {:>5.1}%  divergence {:>5.1}%  occupancy {:>5.1}%",
            k.name,
            k.time_ms(&searcher.device),
            100.0 * k.global_load_efficiency(),
            100.0 * k.divergence_overhead(),
            100.0 * k.occupancy,
        );
    }
    let t = &result.timing;
    println!(
        "\nhits {} → filtered {} ({:.1}%) → extensions {}",
        result.counts.hits,
        result.counts.filtered,
        100.0 * result.counts.survival_ratio(),
        result.counts.extensions,
    );
    println!(
        "GPU {:.2} ms + transfers {:.2} ms + CPU {:.2} ms; overlapped total {:.2} ms (saved {:.0}%)",
        t.gpu_ms,
        t.h2d_ms + t.d2h_ms,
        t.cpu_wall_ms,
        t.total_ms(),
        100.0 * result.pipeline.saving(),
    );
}
