//! NGS-style batch protein search — the workload the paper's introduction
//! motivates: a stream of protein queries (e.g. translated reads or
//! predicted ORFs of varying length) searched against a reference
//! database, comparing the CPU reference against cuBLASTP and checking
//! output identity along the way.
//!
//! Also demonstrates the FASTA round trip: the query batch is serialized
//! to FASTA and parsed back before searching.
//!
//! ```text
//! cargo run --release -p examples --bin protein_search -- --queries 8 --seqs 3000
//! ```

use bio_seq::fasta::{parse_fasta, to_fasta};
use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::SearchParams;
use blast_cpu::search::{search_sequential, SearchEngine};
use cublastp::{CuBlastp, CuBlastpConfig};
use examples_support::{arg, print_report};
use gpu_sim::DeviceConfig;

fn main() {
    let num_queries: usize = arg("--queries", 8);
    let seqs: usize = arg("--seqs", 3_000);

    // A batch of queries with NGS-like length spread (short fragments to
    // full-length proteins).
    let lengths = [90usize, 127, 220, 310, 415, 517, 780, 1054];
    let batch: Vec<_> = (0..num_queries)
        .map(|i| make_query(lengths[i % lengths.len()] + i))
        .collect();

    // FASTA round trip, as a real pipeline would consume them.
    let fasta = to_fasta(&batch, 60);
    let queries = parse_fasta(&fasta);
    assert_eq!(queries.len(), batch.len());

    // One reference database shared by the whole batch (homologies planted
    // against the first query so at least some reads map).
    let spec = DbSpec {
        name: "reference",
        num_sequences: seqs,
        mean_length: 280,
        homolog_fraction: 0.02,
        seed: 1234,
    };
    let db = generate_db(&spec, &queries[0]).db;
    let params = SearchParams::default();

    println!(
        "batch of {} queries vs {} sequences ({} residues)",
        queries.len(),
        db.len(),
        db.total_residues()
    );
    println!(
        "\n{:<12} {:>6} {:>10} {:>12} {:>12} {:>9}",
        "query", "len", "hits", "cpu (ms)", "gpu (ms)", "identical"
    );

    let mut total_cpu = 0.0;
    let mut total_gpu = 0.0;
    let mut best: Option<(String, blast_cpu::report::SearchReport)> = None;
    for q in &queries {
        let engine = SearchEngine::new(q.clone(), params, &db);
        let cpu = search_sequential(&engine, &db);
        let cpu_ms = cpu.times.total().as_secs_f64() * 1e3;

        let searcher = CuBlastp::new(
            q.clone(),
            params,
            CuBlastpConfig::default(),
            DeviceConfig::k20c(),
            &db,
        );
        let gpu = searcher.search(&db).expect("fault-free search");
        let gpu_ms = gpu.timing.total_ms();

        let identical = gpu.report.identity_key() == cpu.report.identity_key();
        assert!(identical, "cuBLASTP output must match FSA-BLAST");
        println!(
            "{:<12} {:>6} {:>10} {:>12.2} {:>12.2} {:>9}",
            q.id,
            q.len(),
            gpu.report.hits.len(),
            cpu_ms,
            gpu_ms,
            identical
        );
        total_cpu += cpu_ms;
        total_gpu += gpu_ms;
        if best
            .as_ref()
            .map(|(_, r)| {
                gpu.report
                    .hits
                    .first()
                    .map(|h| h.alignment.score)
                    .unwrap_or(0)
                    > r.hits.first().map(|h| h.alignment.score).unwrap_or(0)
            })
            .unwrap_or(true)
        {
            best = Some((q.id.clone(), gpu.report));
        }
    }

    println!(
        "\nbatch total: CPU {total_cpu:.1} ms, cuBLASTP {total_gpu:.1} ms ({:.2}x)",
        total_cpu / total_gpu
    );
    if let Some((qid, report)) = best {
        print_report(&report, &qid, 5);
        if let Some(top) = report.hits.first() {
            println!("\nbest alignment CIGAR: {}", top.alignment.cigar());
        }
    }
}
