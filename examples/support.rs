//! Shared helpers for the example binaries: tiny argument parsing and
//! result pretty-printing, so each example stays focused on the API it
//! demonstrates.

use blast_cpu::report::SearchReport;

/// Read a `--flag value` style argument from the command line.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Print the top of a hit list in a BLAST-report-like format.
pub fn print_report(report: &SearchReport, query_id: &str, top: usize) {
    println!("\nTop alignments for {query_id}:");
    println!(
        "{:<28} {:>7} {:>9} {:>10} {:>7} {:>17}",
        "subject", "score", "bits", "e-value", "ident%", "range(q/s)"
    );
    for hit in report.hits.iter().take(top) {
        let a = &hit.alignment;
        println!(
            "{:<28} {:>7} {:>9.1} {:>10.2e} {:>6.1}% {:>6}-{}/{}-{}",
            hit.subject_id,
            a.score,
            hit.bit_score,
            hit.evalue,
            a.percent_identity(),
            a.q_start,
            a.q_end,
            a.s_start,
            a.s_end,
        );
    }
    if report.hits.is_empty() {
        println!("  (no alignments below the e-value cutoff)");
    }
}
