//! The Fig. 12 pipeline in action: how database blocking and CPU–GPU
//! overlap change the makespan.
//!
//! Sweeps the pipeline block size and prints, for each, the serial
//! makespan (H2D → GPU → D2H → CPU back to back for every block) and the
//! overlapped makespan (stages of different blocks run concurrently),
//! plus the stage that bottlenecks the steady state.
//!
//! ```text
//! cargo run --release -p examples --bin pipeline_overlap -- --seqs 6000
//! ```

use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig};
use examples_support::arg;
use gpu_sim::DeviceConfig;

type IdentityKey = Vec<(usize, i32, u32, u32, u32, u32)>;

fn main() {
    let seqs: usize = arg("--seqs", 6_000);
    let query = make_query(517);
    let spec = DbSpec {
        name: "pipeline",
        num_sequences: seqs,
        mean_length: 220,
        homolog_fraction: 0.03,
        seed: 4242,
    };
    let db = generate_db(&spec, &query).db;
    let params = SearchParams::default();

    println!(
        "query517 vs {} sequences; sweeping pipeline block size\n",
        db.len()
    );
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>9} {:>22}",
        "block", "blocks", "serial (ms)", "overlap (ms)", "saved", "stage totals g/c (ms)"
    );

    let mut reference: Option<IdentityKey> = None;
    for block_size in [0usize, 4000, 2000, 1000, 500, 250] {
        let cfg = CuBlastpConfig {
            db_block_size: if block_size == 0 {
                db.len()
            } else {
                block_size
            },
            overlap: true,
            ..CuBlastpConfig::default()
        };
        let searcher = CuBlastp::new(query.clone(), params, cfg, DeviceConfig::k20c(), &db);
        let r = searcher.search(&db).expect("fault-free search");
        let t = &r.timing;
        let label = if block_size == 0 {
            "whole-db".to_string()
        } else {
            block_size.to_string()
        };
        println!(
            "{:>10} {:>8} {:>12.2} {:>14.2} {:>8.1}% {:>13.2} / {:.2}",
            label,
            db.len().div_ceil(cfg.db_block_size),
            t.serial_ms,
            t.overlapped_ms,
            100.0 * r.pipeline.saving(),
            t.gpu_ms,
            t.cpu_wall_ms,
        );

        // Block size must never change the answer.
        let key = r.report.identity_key();
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k, "block size changed the output!"),
        }
    }

    println!(
        "\nOne block cannot overlap anything; many small blocks pipeline GPU kernels \
         against CPU gapped extension + traceback and PCIe transfers (paper Fig. 12). \
         Every configuration produced identical BLAST output."
    );
}
