//! Simulator introspection: why fine-grained beats coarse-grained.
//!
//! Runs the same search three ways — coarse-grained one-thread-per-
//! sequence (CUDA-BLASTP style), coarse with a runtime work queue
//! (GPU-BLASTP style), and cuBLASTP's fine-grained kernels — and dumps
//! the per-kernel SIMT telemetry so the mechanisms of the paper's §3.1
//! are visible: branch divergence, memory coalescing, and occupancy.
//!
//! ```text
//! cargo run --release -p examples --bin divergence_study -- --seqs 4000
//! ```

use baselines::{CudaBlastp, GpuBlastp};
use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig, ExtensionStrategy};
use examples_support::arg;
use gpu_sim::{DeviceConfig, KernelStats};

fn row(label: &str, k: &KernelStats, device: &DeviceConfig) {
    println!(
        "  {:<36} {:>9.3} ms  load-eff {:>5.1}%  divergence {:>5.1}%  occupancy {:>5.1}%",
        label,
        k.time_ms(device),
        100.0 * k.global_load_efficiency(),
        100.0 * k.divergence_overhead(),
        100.0 * k.occupancy,
    );
}

fn main() {
    let seqs: usize = arg("--seqs", 4_000);
    let query = make_query(517);
    let spec = DbSpec {
        name: "study",
        num_sequences: seqs,
        mean_length: 250,
        homolog_fraction: 0.02,
        seed: 99,
    };
    let db = generate_db(&spec, &query).db;
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    println!("query517 vs {} sequences on the simulated K20c\n", db.len());

    println!("coarse-grained, one thread per sequence (CUDA-BLASTP style):");
    let cuda = CudaBlastp::new(query.clone(), params, device, &db).search(&db);
    row("fused hit-detection+extension", &cuda.kernel, &device);

    println!("\ncoarse-grained with runtime work queue (GPU-BLASTP style):");
    let mut gb = GpuBlastp::new(query.clone(), params, device, &db);
    gb.total_warps = (db.len() / 160).clamp(8, 104);
    let gpub = gb.search(&db);
    row("fused hit-detection+extension", &gpub.kernel, &device);

    println!("\nfine-grained cuBLASTP (window-based extension):");
    let searcher = CuBlastp::new(
        query.clone(),
        params,
        CuBlastpConfig::default(),
        DeviceConfig::k20c(),
        &db,
    );
    let cu = searcher.search(&db).expect("fault-free search");
    for k in &cu.kernels {
        row(&k.name, k, &device);
    }

    // The three extension strategies side by side (paper Fig. 9/16).
    println!("\nungapped-extension strategy comparison:");
    for (label, strategy) in [
        ("diagonal-based (Algorithm 3)", ExtensionStrategy::Diagonal),
        ("hit-based (Algorithm 4)", ExtensionStrategy::Hit),
        ("window-based (Algorithm 5)", ExtensionStrategy::Window),
    ] {
        let cfg = CuBlastpConfig {
            extension: strategy,
            ..CuBlastpConfig::default()
        };
        let s = CuBlastp::new(query.clone(), params, cfg, device, &db);
        let r = s.search(&db).expect("fault-free search");
        let k = r.kernel("ungapped_extension").expect("extension kernel");
        row(label, k, &device);
        if strategy == ExtensionStrategy::Hit {
            println!(
                "      ({} redundant extensions de-duplicated)",
                r.counts.redundant
            );
        }
    }

    println!(
        "\ncritical-phase totals: CUDA-BLASTP {:.2} ms | GPU-BLASTP {:.2} ms | cuBLASTP {:.2} ms",
        cuda.timing.gpu_ms, gpub.timing.gpu_ms, cu.timing.gpu_ms
    );
    assert_eq!(cu.report.identity_key(), cuda.report.identity_key());
    assert_eq!(cu.report.identity_key(), gpub.report.identity_key());
    println!("all three pipelines produced identical BLAST output.");
}
