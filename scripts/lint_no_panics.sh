#!/usr/bin/env bash
# Forbid unwrap()/expect( in the non-test code of the library crates
# that sit on the search hot path. Device faults must surface as typed
# errors (SearchError / DeviceError), not panics; see DESIGN.md §3.3.
# (The obs crate is exempt: obs/json.rs defines a method named `expect`
# as part of its pull parser, which this textual check cannot tell apart.)
#
# Test modules live at the end of each file behind `#[cfg(test)]`, so the
# check strips everything from that marker onward before grepping. Doc
# comments (`///`, `//!`) are exempt: doctest examples may use expect().
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for file in crates/cublastp/src/*.rs crates/gpu-sim/src/*.rs \
            crates/blast-cpu/src/*.rs crates/blast-core/src/*.rs \
            crates/bio-seq/src/*.rs crates/cublastp-serve/src/*.rs \
            crates/cublastp-db/src/*.rs crates/cublastp-cli/src/*.rs \
            crates/bench/src/runners.rs; do
    hits=$(sed '/#\[cfg(test)\]/,$d' "$file" \
        | grep -n 'unwrap()\|expect(' \
        | grep -vE '^[0-9]+:[[:space:]]*//[/!]' || true)
    if [ -n "$hits" ]; then
        echo "panic-prone call in non-test code of $file:" >&2
        echo "$hits" >&2
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "error: library hot paths must return typed errors, not panic" >&2
    echo "       (wrap genuinely-infallible cases in a test module or" >&2
    echo "       restructure; see DESIGN.md §3.3)" >&2
fi
exit "$status"
