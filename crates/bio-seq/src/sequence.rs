//! Owned, encoded protein sequences.

use crate::alphabet::{decode_str, encode_str, Residue};
use serde::{Deserialize, Serialize};

/// A protein sequence stored in residue encoding, together with its
/// identifier and an optional description line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// Identifier (the first token of a FASTA header).
    pub id: String,
    /// Free-form description (the rest of the FASTA header).
    pub description: String,
    /// Encoded residues; see [`crate::alphabet`].
    pub residues: Vec<Residue>,
}

impl Sequence {
    /// Build a sequence from an ASCII byte string, encoding residues.
    pub fn from_bytes(id: impl Into<String>, bytes: &[u8]) -> Self {
        Self {
            id: id.into(),
            description: String::new(),
            residues: encode_str(bytes),
        }
    }

    /// Build a sequence from already-encoded residues.
    pub fn from_residues(id: impl Into<String>, residues: Vec<Residue>) -> Self {
        Self {
            id: id.into(),
            description: String::new(),
            residues,
        }
    }

    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True if the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Decode back to an ASCII string (for display and FASTA output).
    pub fn to_ascii(&self) -> String {
        decode_str(&self.residues)
    }

    /// Borrow the encoded residues.
    #[inline]
    pub fn residues(&self) -> &[Residue] {
        &self.residues
    }
}

impl std::fmt::Display for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ">{} ({} aa)", self.id, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_encodes() {
        let s = Sequence::from_bytes("q", b"ARND");
        assert_eq!(s.len(), 4);
        assert_eq!(s.residues(), &[0, 1, 2, 3]);
        assert_eq!(s.to_ascii(), "ARND");
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::from_bytes("e", b"");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display_shows_id_and_length() {
        let s = Sequence::from_bytes("sp|P12345", b"MKV");
        assert_eq!(format!("{s}"), ">sp|P12345 (3 aa)");
    }
}
