//! The protein alphabet used throughout the workspace.
//!
//! BLASTP scores sequences over a 24-symbol alphabet: the 20 standard amino
//! acids, the two ambiguity codes `B` (Asx) and `Z` (Glx), the unknown
//! residue `X`, and the stop/translation symbol `*`. Residues are stored as
//! small integers (`0..24`) so they can index scoring matrices directly;
//! the ordering matches the classic NCBI BLOSUM layout
//! `A R N D C Q E G H I L K M F P S T W Y V B Z X *`.

/// Number of symbols in the scoring alphabet.
pub const ALPHABET_SIZE: usize = 24;

/// Row stride used by GPU-friendly layouts of per-residue tables. The paper
/// (§3.5) describes PSS-matrix columns of "32 rows with 2 bytes for each";
/// padding the 24-letter alphabet to 32 keeps those sizes identical.
pub const PADDED_ALPHABET_SIZE: usize = 32;

/// Alphabet letters in encoding order.
pub const ALPHABET: [u8; ALPHABET_SIZE] = *b"ARNDCQEGHILKMFPSTWYVBZX*";

/// A residue encoded as an index into [`ALPHABET`].
pub type Residue = u8;

/// Encoding of `X`, used as the substitute for unknown input letters.
pub const RESIDUE_X: Residue = 22;

/// Number of standard (unambiguous) amino acids; the synthetic generator
/// only emits these.
pub const STANDARD_AA: usize = 20;

/// Robinson–Robinson background frequencies of the 20 standard amino acids,
/// in encoding order (`A R N D C Q E G H I L K M F P S T W Y V`). These are
/// the frequencies NCBI BLAST uses for Karlin–Altschul statistics.
pub const ROBINSON_FREQS: [f64; STANDARD_AA] = [
    0.078_05, // A
    0.051_29, // R
    0.044_87, // N
    0.053_64, // D
    0.019_25, // C
    0.042_64, // Q
    0.062_95, // E
    0.073_77, // G
    0.021_99, // H
    0.051_42, // I
    0.090_19, // L
    0.057_44, // K
    0.022_43, // M
    0.038_56, // F
    0.052_03, // P
    0.071_29, // S
    0.058_41, // T
    0.013_30, // W
    0.032_16, // Y
    0.064_41, // V
];

/// Convert an ASCII letter to its residue encoding.
///
/// Lower-case letters are accepted; any letter outside the alphabet
/// (including `U`, `O`, `J`) maps to `X`, mirroring NCBI BLAST's input
/// sanitation.
#[inline]
pub fn encode(letter: u8) -> Residue {
    ENCODE_TABLE[letter.to_ascii_uppercase() as usize]
}

/// Convert a residue encoding back to its ASCII letter.
///
/// # Panics
/// Panics if `r >= ALPHABET_SIZE`.
#[inline]
pub fn decode(r: Residue) -> u8 {
    ALPHABET[r as usize]
}

/// Encode a full byte string.
pub fn encode_str(s: &[u8]) -> Vec<Residue> {
    s.iter().map(|&b| encode(b)).collect()
}

/// Decode a residue slice into an ASCII string.
pub fn decode_str(rs: &[Residue]) -> String {
    rs.iter().map(|&r| decode(r) as char).collect()
}

/// Returns true if the residue is one of the 20 standard amino acids.
#[inline]
pub fn is_standard(r: Residue) -> bool {
    (r as usize) < STANDARD_AA
}

/// Returns true if the ASCII byte is a letter of the scoring alphabet
/// (case-insensitive). Strict input validation uses this to distinguish
/// real alphabet letters from bytes the lenient [`encode`] would silently
/// fold to `X` (`U`, `O`, `J`, digits, gap dashes, …).
#[inline]
pub fn is_alphabet_letter(b: u8) -> bool {
    ENCODE_TABLE[b.to_ascii_uppercase() as usize] != RESIDUE_X || b.eq_ignore_ascii_case(&b'X')
}

const ENCODE_TABLE: [Residue; 256] = build_encode_table();

const fn build_encode_table() -> [Residue; 256] {
    let mut t = [RESIDUE_X; 256];
    let mut i = 0;
    while i < ALPHABET_SIZE {
        t[ALPHABET[i] as usize] = i as Residue;
        i += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_letters() {
        for (i, &letter) in ALPHABET.iter().enumerate() {
            assert_eq!(encode(letter), i as Residue);
            assert_eq!(decode(i as Residue), letter);
        }
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(encode(b'a'), encode(b'A'));
        assert_eq!(encode(b'w'), encode(b'W'));
    }

    #[test]
    fn unknown_letters_become_x() {
        for b in [b'U', b'O', b'J', b'1', b' ', b'-'] {
            assert_eq!(encode(b), RESIDUE_X, "byte {b}");
        }
    }

    #[test]
    fn alphabet_letter_predicate() {
        for &letter in &ALPHABET {
            assert!(is_alphabet_letter(letter), "letter {}", letter as char);
            assert!(is_alphabet_letter(letter.to_ascii_lowercase()));
        }
        for b in [b'U', b'O', b'J', b'1', b'-', b' ', b'\n', 0u8, 200u8] {
            assert!(!is_alphabet_letter(b), "byte {b}");
        }
    }

    #[test]
    fn robinson_frequencies_sum_to_one() {
        let sum: f64 = ROBINSON_FREQS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum = {sum}");
    }

    #[test]
    fn encode_str_roundtrip() {
        let s = b"MKVLAARNDW";
        let enc = encode_str(s);
        assert_eq!(decode_str(&enc).as_bytes(), s);
    }

    #[test]
    fn standard_partition() {
        assert!(is_standard(encode(b'A')));
        assert!(is_standard(encode(b'V')));
        assert!(!is_standard(encode(b'B')));
        assert!(!is_standard(encode(b'X')));
        assert!(!is_standard(encode(b'*')));
    }
}
