//! Synthetic protein workload generation.
//!
//! The paper evaluates on two NCBI databases (`swissprot`, ~300 k sequences
//! averaging 370 residues, and `env_nr`, ~6 M sequences averaging 200
//! residues) and three queries of length 127, 517 and 1054. Those inputs are
//! not redistributable and are far larger than a laptop-scale reproduction
//! needs, so this module builds statistically equivalent stand-ins:
//!
//! * background residues are drawn from the Robinson–Robinson frequencies —
//!   the same distribution Karlin–Altschul statistics assume — so the rate
//!   of random word hits per column matches real protein data;
//! * sequence lengths follow a log-normal distribution fitted to each
//!   preset's mean, matching the long-tailed length profile of NCBI
//!   databases;
//! * a configurable fraction of subjects receives a *planted homology*: a
//!   mutated copy of a random query segment, so the pipeline exercises real
//!   two-hit triggers, ungapped extensions that reach the gapped stage, and
//!   traceback — not just random noise.
//!
//! Everything is driven by explicit seeds, so every figure in
//! EXPERIMENTS.md is reproducible bit-for-bit.

use crate::alphabet::{Residue, ROBINSON_FREQS, STANDARD_AA};
use crate::db::SequenceDb;
use crate::sequence::Sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cumulative distribution over the 20 standard amino acids, used for
/// inverse-CDF sampling.
fn residue_cdf() -> [f64; STANDARD_AA] {
    let mut cdf = [0.0; STANDARD_AA];
    let mut acc = 0.0;
    for (i, &p) in ROBINSON_FREQS.iter().enumerate() {
        acc += p;
        cdf[i] = acc;
    }
    // Guard against floating-point undershoot so sampling never falls off
    // the end of the table.
    cdf[STANDARD_AA - 1] = 1.0;
    cdf
}

/// Sample one residue from the Robinson–Robinson background.
fn sample_residue(rng: &mut StdRng, cdf: &[f64; STANDARD_AA]) -> Residue {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u) as Residue
}

/// Sample a residue different from `r` (used for point mutations).
fn sample_other_residue(rng: &mut StdRng, cdf: &[f64; STANDARD_AA], r: Residue) -> Residue {
    loop {
        let s = sample_residue(rng, cdf);
        if s != r {
            return s;
        }
    }
}

/// Named database presets mirroring the paper's two evaluation databases,
/// scaled so a full figure reproduction runs in seconds on a laptop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbPreset {
    /// Stand-in for NCBI `swissprot`: fewer, longer sequences (mean 370).
    SwissprotMini,
    /// Stand-in for NCBI `env_nr`: more, shorter sequences (mean 200).
    EnvNrMini,
}

impl DbPreset {
    /// The specification behind the preset.
    pub fn spec(self) -> DbSpec {
        match self {
            DbPreset::SwissprotMini => DbSpec {
                name: "swissprot_mini",
                num_sequences: 2_000,
                mean_length: 370,
                homolog_fraction: 0.03,
                seed: 0x5155_5057,
            },
            DbPreset::EnvNrMini => DbSpec {
                name: "env_nr_mini",
                num_sequences: 6_000,
                mean_length: 200,
                homolog_fraction: 0.02,
                seed: 0xE17B_0001,
            },
        }
    }

    /// Human-readable preset name as used in figure output.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

/// Full description of a synthetic database.
#[derive(Debug, Clone, Copy)]
pub struct DbSpec {
    /// Name used in sequence ids and figure labels.
    pub name: &'static str,
    /// Number of subject sequences to generate.
    pub num_sequences: usize,
    /// Mean sequence length (log-normal distributed).
    pub mean_length: usize,
    /// Fraction of subjects that receive a planted query homology.
    pub homolog_fraction: f64,
    /// RNG seed; identical specs generate identical databases.
    pub seed: u64,
}

impl DbSpec {
    /// Scale the number of sequences (used by benches that need a quick
    /// smoke-sized database).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.num_sequences = ((self.num_sequences as f64 * factor).round() as usize).max(1);
        self
    }
}

/// A generated database plus the query it was planted against.
pub struct SyntheticDb {
    /// The database proper.
    pub db: SequenceDb,
    /// Indices of subjects that contain a planted homology.
    pub planted: Vec<usize>,
}

/// Generate a deterministic query sequence of the given length.
///
/// The three paper queries are `make_query(127)`, `make_query(517)` and
/// `make_query(1054)`; their ids are `query127` etc.
pub fn make_query(length: usize) -> Sequence {
    let cdf = residue_cdf();
    let mut rng =
        StdRng::seed_from_u64(0xC0FFEE ^ (length as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let residues: Vec<Residue> = (0..length)
        .map(|_| sample_residue(&mut rng, &cdf))
        .collect();
    let mut q = Sequence::from_residues(format!("query{length}"), residues);
    q.description = format!("synthetic query, {length} residues");
    q
}

/// Generate a query like [`make_query`] but with `runs` low-complexity
/// segments (homopolymer or dipeptide repeats of 14–24 residues) planted
/// at deterministic positions — the compositional bias real proteins
/// carry and SEG masking exists for.
pub fn make_query_with_low_complexity(length: usize, runs: usize) -> Sequence {
    let mut q = make_query(length);
    let mut rng = StdRng::seed_from_u64(0x0BAD_C0DE ^ length as u64);
    let cdf = residue_cdf();
    for k in 0..runs {
        let run_len = 14 + (k * 5) % 11;
        if length < run_len + 2 {
            break;
        }
        let start = rng.gen_range(0..=length - run_len);
        let a = sample_residue(&mut rng, &cdf);
        let b = if rng.gen::<bool>() {
            a // homopolymer
        } else {
            sample_other_residue(&mut rng, &cdf, a) // dipeptide repeat
        };
        for (i, slot) in q.residues[start..start + run_len].iter_mut().enumerate() {
            *slot = if i % 2 == 0 { a } else { b };
        }
    }
    q.id = format!("query{length}lc");
    q.description = format!("synthetic query with {runs} low-complexity runs");
    q
}

/// Draw a log-normally distributed length with the given mean and a shape
/// parameter (sigma of the underlying normal) of 0.45, clamped to at least
/// one word length.
fn sample_length(rng: &mut StdRng, mean: usize) -> usize {
    const SIGMA: f64 = 0.45;
    // For a log-normal, mean = exp(mu + sigma^2/2); solve for mu.
    let mu = (mean as f64).ln() - SIGMA * SIGMA / 2.0;
    // Box-Muller normal sample.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let len = (mu + SIGMA * z).exp();
    (len.round() as usize).clamp(8, mean * 12)
}

/// Generate a synthetic database, planting mutated copies of `query`
/// segments into a `homolog_fraction` of subjects.
///
/// Planted segments cover 30–90 % of the query, are copied at ~60 %
/// identity (each residue mutates with probability 0.4), and occasionally
/// receive short insertions/deletions so the gapped stage has real work.
pub fn generate_db(spec: &DbSpec, query: &Sequence) -> SyntheticDb {
    let cdf = residue_cdf();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut sequences = Vec::with_capacity(spec.num_sequences);
    let mut planted = Vec::new();

    for i in 0..spec.num_sequences {
        let len = sample_length(&mut rng, spec.mean_length);
        let mut residues: Vec<Residue> = (0..len).map(|_| sample_residue(&mut rng, &cdf)).collect();

        let plant = !query.is_empty()
            && query.len() >= 12
            && rng.gen::<f64>() < spec.homolog_fraction
            && len > query.len() / 4;
        if plant {
            plant_homolog(&mut rng, &cdf, query, &mut residues);
            planted.push(i);
        }

        let mut seq = Sequence::from_residues(format!("{}_{i:06}", spec.name), residues);
        if plant {
            seq.description = format!("planted homolog of {}", query.id);
        }
        sequences.push(seq);
    }

    SyntheticDb {
        db: SequenceDb::new(spec.name, sequences),
        planted,
    }
}

/// Overwrite a window of `subject` with a mutated copy of a query segment.
fn plant_homolog(
    rng: &mut StdRng,
    cdf: &[f64; STANDARD_AA],
    query: &Sequence,
    subject: &mut Vec<Residue>,
) {
    let qlen = query.len();
    let frac = 0.3 + rng.gen::<f64>() * 0.6;
    let seg_len = ((qlen as f64 * frac) as usize).clamp(10, qlen);
    let q_start = rng.gen_range(0..=qlen - seg_len);

    // Copy with point mutations (~60 % identity).
    let mut segment: Vec<Residue> = query.residues[q_start..q_start + seg_len]
        .iter()
        .map(|&r| {
            if rng.gen::<f64>() < 0.4 {
                sample_other_residue(rng, cdf, r)
            } else {
                r
            }
        })
        .collect();

    // Occasionally add a short indel so gapped extension is exercised.
    if segment.len() > 20 && rng.gen::<f64>() < 0.5 {
        let pos = rng.gen_range(5..segment.len() - 5);
        if rng.gen::<bool>() {
            let ins_len = rng.gen_range(1..=3);
            for _ in 0..ins_len {
                segment.insert(pos, sample_residue(rng, cdf));
            }
        } else {
            let del_len = rng.gen_range(1..=3.min(segment.len() - pos - 1));
            segment.drain(pos..pos + del_len);
        }
    }

    if segment.len() >= subject.len() {
        *subject = segment;
    } else {
        let s_start = rng.gen_range(0..=subject.len() - segment.len());
        subject[s_start..s_start + segment.len()].copy_from_slice(&segment);
    }
}

/// Convenience: generate a preset database against a query.
pub fn generate_preset(preset: DbPreset, query: &Sequence) -> SyntheticDb {
    generate_db(&preset.spec(), query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::is_standard;

    #[test]
    fn query_is_deterministic() {
        let a = make_query(127);
        let b = make_query(127);
        assert_eq!(a.residues, b.residues);
        assert_eq!(a.id, "query127");
        assert_eq!(a.len(), 127);
    }

    #[test]
    fn different_lengths_differ() {
        let a = make_query(127);
        let b = make_query(517);
        assert_ne!(a.residues[..100], b.residues[..100]);
    }

    #[test]
    fn db_is_deterministic() {
        let q = make_query(64);
        let spec = DbSpec {
            name: "t",
            num_sequences: 50,
            mean_length: 100,
            homolog_fraction: 0.2,
            seed: 42,
        };
        let a = generate_db(&spec, &q);
        let b = generate_db(&spec, &q);
        assert_eq!(a.planted, b.planted);
        for (x, y) in a.db.sequences().iter().zip(b.db.sequences()) {
            assert_eq!(x.residues, y.residues);
        }
    }

    #[test]
    fn only_standard_residues_generated() {
        let q = make_query(32);
        let spec = DbSpec {
            name: "t",
            num_sequences: 20,
            mean_length: 80,
            homolog_fraction: 0.5,
            seed: 7,
        };
        let s = generate_db(&spec, &q);
        for seq in s.db.sequences() {
            assert!(seq.residues().iter().all(|&r| is_standard(r)));
        }
    }

    #[test]
    fn homolog_fraction_respected_roughly() {
        let q = make_query(200);
        let spec = DbSpec {
            name: "t",
            num_sequences: 1000,
            mean_length: 200,
            homolog_fraction: 0.1,
            seed: 9,
        };
        let s = generate_db(&spec, &q);
        let frac = s.planted.len() as f64 / 1000.0;
        assert!((0.05..=0.16).contains(&frac), "fraction = {frac}");
    }

    #[test]
    fn mean_length_roughly_matches() {
        let q = make_query(32);
        let spec = DbSpec {
            name: "t",
            num_sequences: 2000,
            mean_length: 300,
            homolog_fraction: 0.0,
            seed: 3,
        };
        let s = generate_db(&spec, &q);
        let mean = s.db.sequences().iter().map(|s| s.len()).sum::<usize>() as f64 / 2000.0;
        assert!((240.0..=360.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn planted_subjects_share_query_words() {
        // A planted homolog at ~60 % identity must share at least one exact
        // 3-mer with the query with overwhelming probability.
        let q = make_query(100);
        let spec = DbSpec {
            name: "t",
            num_sequences: 200,
            mean_length: 150,
            homolog_fraction: 0.3,
            seed: 11,
        };
        let s = generate_db(&spec, &q);
        assert!(!s.planted.is_empty());
        let query_words: std::collections::HashSet<&[Residue]> = q.residues.windows(3).collect();
        let mut sharing = 0;
        for &i in &s.planted {
            let subj = &s.db.sequences()[i];
            if subj.residues.windows(3).any(|w| query_words.contains(w)) {
                sharing += 1;
            }
        }
        assert!(
            sharing * 10 >= s.planted.len() * 8,
            "only {sharing}/{} planted homologs share a word",
            s.planted.len()
        );
    }

    #[test]
    fn low_complexity_query_is_deterministic_and_biased() {
        let a = make_query_with_low_complexity(300, 5);
        let b = make_query_with_low_complexity(300, 5);
        assert_eq!(a.residues, b.residues);
        assert_eq!(a.id, "query300lc");
        // The planted runs must differ from the clean query.
        let clean = make_query(300);
        let diffs = a
            .residues
            .iter()
            .zip(&clean.residues)
            .filter(|(x, y)| x != y)
            .count();
        assert!(diffs >= 30, "only {diffs} positions changed");
        // Zero runs leaves the base query intact (id aside).
        let zero = make_query_with_low_complexity(300, 0);
        assert_eq!(zero.residues, clean.residues);
    }

    #[test]
    fn presets_differ_in_shape() {
        let sp = DbPreset::SwissprotMini.spec();
        let env = DbPreset::EnvNrMini.spec();
        assert!(env.num_sequences > sp.num_sequences);
        assert!(sp.mean_length > env.mean_length);
    }

    #[test]
    fn scaled_spec() {
        let s = DbPreset::SwissprotMini.spec().scaled(0.1);
        assert_eq!(s.num_sequences, 200);
        assert_eq!(DbPreset::SwissprotMini.spec().scaled(0.0).num_sequences, 1);
    }
}
