//! Minimal FASTA parsing and formatting.
//!
//! The benchmark harness generates synthetic databases in memory, but real
//! users feed FASTA files; this module covers the round trip without pulling
//! in a heavyweight parser dependency.

use crate::sequence::Sequence;
use std::io::{self, BufRead, Write};

/// Parse FASTA records from a reader.
///
/// Header lines start with `>`; the first whitespace-separated token becomes
/// the sequence id, the remainder the description. Blank lines are ignored.
/// Residue lines may be wrapped arbitrarily. A record body may be empty
/// (some tools emit headers with no residues); such records are kept.
pub fn read_fasta<R: BufRead>(reader: R) -> io::Result<Vec<Sequence>> {
    let mut out: Vec<Sequence> = Vec::new();
    let mut current: Option<Sequence> = None;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(seq) = current.take() {
                out.push(seq);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(Sequence {
                id,
                description,
                residues: Vec::new(),
            });
        } else {
            let seq = current.get_or_insert_with(|| Sequence {
                id: "unnamed".to_string(),
                description: String::new(),
                residues: Vec::new(),
            });
            seq.residues.extend(
                line.bytes()
                    .filter(|b| !b.is_ascii_whitespace())
                    .map(crate::alphabet::encode),
            );
        }
    }
    if let Some(seq) = current {
        out.push(seq);
    }
    Ok(out)
}

/// Parse FASTA from an in-memory string.
pub fn parse_fasta(text: &str) -> Vec<Sequence> {
    read_fasta(text.as_bytes()).expect("in-memory reads cannot fail")
}

/// Write sequences in FASTA format, wrapping residue lines at `width`
/// columns (pass 0 for no wrapping).
pub fn write_fasta<W: Write>(writer: &mut W, seqs: &[Sequence], width: usize) -> io::Result<()> {
    for seq in seqs {
        if seq.description.is_empty() {
            writeln!(writer, ">{}", seq.id)?;
        } else {
            writeln!(writer, ">{} {}", seq.id, seq.description)?;
        }
        let ascii = seq.to_ascii();
        if width == 0 {
            writeln!(writer, "{ascii}")?;
        } else {
            for chunk in ascii.as_bytes().chunks(width) {
                writer.write_all(chunk)?;
                writeln!(writer)?;
            }
        }
    }
    Ok(())
}

/// Format sequences as a FASTA string.
pub fn to_fasta(seqs: &[Sequence], width: usize) -> String {
    let mut buf = Vec::new();
    write_fasta(&mut buf, seqs, width).expect("in-memory writes cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_records() {
        let seqs = parse_fasta(">a first\nMKV\nLAA\n>b\nARND\n");
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id, "a");
        assert_eq!(seqs[0].description, "first");
        assert_eq!(seqs[0].to_ascii(), "MKVLAA");
        assert_eq!(seqs[1].id, "b");
        assert_eq!(seqs[1].to_ascii(), "ARND");
    }

    #[test]
    fn blank_lines_and_wrapping_ignored() {
        let seqs = parse_fasta(">x\n\nMK V\n\nLA\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].to_ascii(), "MKVLA");
    }

    #[test]
    fn headerless_body_gets_default_id() {
        let seqs = parse_fasta("MKV\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].id, "unnamed");
    }

    #[test]
    fn empty_record_kept() {
        let seqs = parse_fasta(">empty\n>full\nMK\n");
        assert_eq!(seqs.len(), 2);
        assert!(seqs[0].is_empty());
        assert_eq!(seqs[1].len(), 2);
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let original = vec![
            Sequence::from_bytes("a", b"MKVLAARNDCQEGH"),
            Sequence::from_bytes("b", b"WWYV"),
        ];
        let text = to_fasta(&original, 5);
        let parsed = parse_fasta(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].residues, original[0].residues);
        assert_eq!(parsed[1].residues, original[1].residues);
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let seqs = parse_fasta(">x desc\r\nMKV\r\nLAA\r\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].to_ascii(), "MKVLAA");
        assert_eq!(seqs[0].description, "desc");
    }

    #[test]
    fn width_one_wrapping() {
        let original = vec![Sequence::from_bytes("a", b"MKV")];
        let text = to_fasta(&original, 1);
        assert_eq!(text, ">a\nM\nK\nV\n");
        assert_eq!(parse_fasta(&text)[0].residues, original[0].residues);
    }

    #[test]
    fn roundtrip_no_wrap() {
        let original = vec![Sequence::from_bytes("a", b"MKV")];
        let parsed = parse_fasta(&to_fasta(&original, 0));
        assert_eq!(parsed[0].residues, original[0].residues);
    }
}
