//! Minimal FASTA parsing and formatting.
//!
//! The benchmark harness generates synthetic databases in memory, but real
//! users feed FASTA files; this module covers the round trip without pulling
//! in a heavyweight parser dependency.

use crate::sequence::Sequence;
use std::fmt;
use std::io::{self, BufRead, Write};

/// What is wrong with a FASTA input (strict parsing only — the lenient
/// [`read_fasta`] accepts all of these).
#[derive(Debug)]
pub enum FastaErrorKind {
    /// A `>` header with no id token (e.g. a bare `>` or `> desc`).
    EmptyId,
    /// A residue line before any `>` header (the lenient parser invents an
    /// `unnamed` record for these).
    MissingHeader,
    /// A residue byte outside the 24-letter scoring alphabet. The lenient
    /// parser folds such bytes to `X`; strict mode reports them.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
    },
    /// The underlying reader failed.
    Io(io::Error),
}

/// A strict-parse failure, locating the problem by record number and line
/// number (both 1-based) so the user can fix the file.
#[derive(Debug)]
pub struct FastaError {
    /// 1-based record number (0 when no record started yet, e.g. an I/O
    /// error before the first header).
    pub record: usize,
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: FastaErrorKind,
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FastaErrorKind::EmptyId => {
                write!(
                    f,
                    "record {} (line {}): empty sequence id",
                    self.record, self.line
                )
            }
            FastaErrorKind::MissingHeader => {
                write!(f, "line {}: residues before any '>' header", self.line)
            }
            FastaErrorKind::InvalidResidue { byte } => {
                if byte.is_ascii_graphic() {
                    write!(
                        f,
                        "record {} (line {}): invalid residue {:?}",
                        self.record, self.line, *byte as char
                    )
                } else {
                    write!(
                        f,
                        "record {} (line {}): invalid residue byte 0x{byte:02x}",
                        self.record, self.line
                    )
                }
            }
            FastaErrorKind::Io(e) => {
                write!(f, "read failed near line {}: {e}", self.line)
            }
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            FastaErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Parse FASTA records from a reader.
///
/// Header lines start with `>`; the first whitespace-separated token becomes
/// the sequence id, the remainder the description. Blank lines are ignored.
/// Residue lines may be wrapped arbitrarily. A record body may be empty
/// (some tools emit headers with no residues); such records are kept.
pub fn read_fasta<R: BufRead>(reader: R) -> io::Result<Vec<Sequence>> {
    let mut out: Vec<Sequence> = Vec::new();
    let mut current: Option<Sequence> = None;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(seq) = current.take() {
                out.push(seq);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            current = Some(Sequence {
                id,
                description,
                residues: Vec::new(),
            });
        } else {
            let seq = current.get_or_insert_with(|| Sequence {
                id: "unnamed".to_string(),
                description: String::new(),
                residues: Vec::new(),
            });
            seq.residues.extend(
                line.bytes()
                    .filter(|b| !b.is_ascii_whitespace())
                    .map(crate::alphabet::encode),
            );
        }
    }
    if let Some(seq) = current {
        out.push(seq);
    }
    Ok(out)
}

/// Parse FASTA from an in-memory string.
pub fn parse_fasta(text: &str) -> Vec<Sequence> {
    // Reading from an in-memory slice cannot produce an I/O error.
    read_fasta(text.as_bytes()).unwrap_or_default()
}

/// Parse FASTA records, rejecting malformed input instead of silently
/// repairing it the way [`read_fasta`] does.
///
/// Strict rules on top of the lenient grammar:
/// * every header must carry a non-empty id token (a bare `>` — which the
///   lenient parser admits as an empty-id record — is an error);
/// * residue lines must contain only the 24 scoring-alphabet letters
///   (either case); `U`/`O`/`J`, digits, gap dashes and other bytes the
///   lenient parser folds to `X` are errors;
/// * a residue line before any header is an error (the lenient parser
///   invents an `unnamed` record).
///
/// Errors carry the 1-based record and line numbers of the first problem.
pub fn read_fasta_strict<R: BufRead>(reader: R) -> Result<Vec<Sequence>, FastaError> {
    let mut out: Vec<Sequence> = Vec::new();
    let mut current: Option<Sequence> = None;
    let mut record = 0usize;
    for (line_idx, line) in reader.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = line.map_err(|e| FastaError {
            record,
            line: line_no,
            kind: FastaErrorKind::Io(e),
        })?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            record += 1;
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or_default().to_string();
            if id.is_empty() {
                return Err(FastaError {
                    record,
                    line: line_no,
                    kind: FastaErrorKind::EmptyId,
                });
            }
            if let Some(seq) = current.take() {
                out.push(seq);
            }
            let description = parts.next().unwrap_or_default().trim().to_string();
            current = Some(Sequence {
                id,
                description,
                residues: Vec::new(),
            });
        } else {
            let Some(seq) = current.as_mut() else {
                return Err(FastaError {
                    record,
                    line: line_no,
                    kind: FastaErrorKind::MissingHeader,
                });
            };
            for b in line.bytes() {
                if b.is_ascii_whitespace() {
                    continue;
                }
                if !crate::alphabet::is_alphabet_letter(b) {
                    return Err(FastaError {
                        record,
                        line: line_no,
                        kind: FastaErrorKind::InvalidResidue { byte: b },
                    });
                }
                seq.residues.push(crate::alphabet::encode(b));
            }
        }
    }
    if let Some(seq) = current {
        out.push(seq);
    }
    Ok(out)
}

/// [`read_fasta_strict`] over an in-memory string.
pub fn parse_fasta_strict(text: &str) -> Result<Vec<Sequence>, FastaError> {
    read_fasta_strict(text.as_bytes())
}

/// Write sequences in FASTA format, wrapping residue lines at `width`
/// columns (pass 0 for no wrapping).
pub fn write_fasta<W: Write>(writer: &mut W, seqs: &[Sequence], width: usize) -> io::Result<()> {
    for seq in seqs {
        if seq.description.is_empty() {
            writeln!(writer, ">{}", seq.id)?;
        } else {
            writeln!(writer, ">{} {}", seq.id, seq.description)?;
        }
        let ascii = seq.to_ascii();
        if width == 0 {
            writeln!(writer, "{ascii}")?;
        } else {
            for chunk in ascii.as_bytes().chunks(width) {
                writer.write_all(chunk)?;
                writeln!(writer)?;
            }
        }
    }
    Ok(())
}

/// Format sequences as a FASTA string.
pub fn to_fasta(seqs: &[Sequence], width: usize) -> String {
    let mut buf = Vec::new();
    // Writing to an in-memory Vec cannot produce an I/O error, and the
    // emitted bytes are ASCII; lossy conversion is a no-op either way.
    let _ = write_fasta(&mut buf, seqs, width);
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_records() {
        let seqs = parse_fasta(">a first\nMKV\nLAA\n>b\nARND\n");
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id, "a");
        assert_eq!(seqs[0].description, "first");
        assert_eq!(seqs[0].to_ascii(), "MKVLAA");
        assert_eq!(seqs[1].id, "b");
        assert_eq!(seqs[1].to_ascii(), "ARND");
    }

    #[test]
    fn blank_lines_and_wrapping_ignored() {
        let seqs = parse_fasta(">x\n\nMK V\n\nLA\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].to_ascii(), "MKVLA");
    }

    #[test]
    fn headerless_body_gets_default_id() {
        let seqs = parse_fasta("MKV\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].id, "unnamed");
    }

    #[test]
    fn empty_record_kept() {
        let seqs = parse_fasta(">empty\n>full\nMK\n");
        assert_eq!(seqs.len(), 2);
        assert!(seqs[0].is_empty());
        assert_eq!(seqs[1].len(), 2);
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let original = vec![
            Sequence::from_bytes("a", b"MKVLAARNDCQEGH"),
            Sequence::from_bytes("b", b"WWYV"),
        ];
        let text = to_fasta(&original, 5);
        let parsed = parse_fasta(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].residues, original[0].residues);
        assert_eq!(parsed[1].residues, original[1].residues);
    }

    #[test]
    fn crlf_line_endings_are_stripped() {
        let seqs = parse_fasta(">x desc\r\nMKV\r\nLAA\r\n");
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].to_ascii(), "MKVLAA");
        assert_eq!(seqs[0].description, "desc");
    }

    #[test]
    fn width_one_wrapping() {
        let original = vec![Sequence::from_bytes("a", b"MKV")];
        let text = to_fasta(&original, 1);
        assert_eq!(text, ">a\nM\nK\nV\n");
        assert_eq!(parse_fasta(&text)[0].residues, original[0].residues);
    }

    #[test]
    fn roundtrip_no_wrap() {
        let original = vec![Sequence::from_bytes("a", b"MKV")];
        let parsed = parse_fasta(&to_fasta(&original, 0));
        assert_eq!(parsed[0].residues, original[0].residues);
    }

    #[test]
    fn strict_accepts_what_lenient_accepts_when_clean() {
        let text = ">a first\nMKV\nlaa\n>b\nARND*BZX\n";
        let strict = parse_fasta_strict(text).expect("clean input");
        let lenient = parse_fasta(text);
        assert_eq!(strict.len(), lenient.len());
        for (s, l) in strict.iter().zip(&lenient) {
            assert_eq!(s.id, l.id);
            assert_eq!(s.residues, l.residues);
        }
    }

    #[test]
    fn strict_rejects_empty_id_with_location() {
        // The lenient parser admits this record with an empty id.
        assert_eq!(parse_fasta(">\nMKV\n")[0].id, "");
        let err = parse_fasta_strict(">ok\nMKV\n>\nARND\n").expect_err("bare >");
        assert_eq!(err.record, 2);
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, FastaErrorKind::EmptyId));
        assert!(err.to_string().contains("record 2"));
        assert!(err.to_string().contains("line 3"));

        // A header that is only a description also has no id.
        let err = parse_fasta_strict("> described but unnamed\nMKV\n").expect_err("no id");
        assert!(matches!(err.kind, FastaErrorKind::EmptyId));
        assert_eq!(err.record, 1);
    }

    #[test]
    fn strict_rejects_invalid_residues_with_location() {
        for (text, bad, line) in [
            (">a\nMKU\n", b'U', 2),            // selenocysteine: lenient folds to X
            (">a\nMKV\n>b\nAR-ND\n", b'-', 4), // gap character
            (">a\nMK1\n", b'1', 2),            // digit
        ] {
            let err = parse_fasta_strict(text).expect_err("invalid residue");
            match err.kind {
                FastaErrorKind::InvalidResidue { byte } => assert_eq!(byte, bad),
                other => panic!("expected InvalidResidue, got {other:?}"),
            }
            assert_eq!(err.line, line, "input {text:?}");
            assert!(err.to_string().contains(&format!("line {line}")));
        }
    }

    #[test]
    fn strict_rejects_headerless_bodies() {
        let err = parse_fasta_strict("MKV\n").expect_err("no header");
        assert!(matches!(err.kind, FastaErrorKind::MissingHeader));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn strict_keeps_empty_records_and_blank_lines() {
        let seqs = parse_fasta_strict(">empty\n>full desc\n\nMK V\n").expect("valid");
        assert_eq!(seqs.len(), 2);
        assert!(seqs[0].is_empty());
        assert_eq!(seqs[1].to_ascii(), "MKV");
        assert_eq!(seqs[1].description, "desc");
    }
}
