//! Protein-sequence substrate for the cuBLASTP reproduction.
//!
//! This crate provides everything below the alignment algorithms:
//!
//! * [`alphabet`] — the 24-letter protein alphabet used by BLASTP scoring
//!   matrices (20 standard amino acids plus the ambiguity codes `B`, `Z`,
//!   `X` and the stop symbol `*`), with residue/letter conversions.
//! * [`sequence`] — owned encoded sequences with identifiers.
//! * [`fasta`] — minimal FASTA reading and writing.
//! * [`generate`] — synthetic database generation: residues are sampled
//!   from the Robinson–Robinson background frequencies and homologous
//!   regions (mutated copies of query segments) can be planted so the hit
//!   and extension statistics resemble real NCBI databases. This is the
//!   substitution for the paper's `swissprot` / `env_nr` inputs.
//! * [`db`] — an in-memory sequence database with the block partitioning
//!   used by the CPU–GPU overlap pipeline.

pub mod alphabet;
pub mod db;
pub mod fasta;
pub mod generate;
pub mod sequence;

pub use alphabet::{Residue, ALPHABET, ALPHABET_SIZE};
pub use db::{DbBlock, SequenceDb};
pub use fasta::{parse_fasta_strict, read_fasta_strict, FastaError, FastaErrorKind};
pub use generate::{DbPreset, DbSpec, SyntheticDb};
pub use sequence::Sequence;
