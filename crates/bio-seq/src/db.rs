//! In-memory sequence database with the block partitioning used by the
//! CPU–GPU overlap pipeline (paper Fig. 12: the database is processed in
//! blocks so hit detection / ungapped extension of block *n+1* on the GPU
//! overlaps gapped extension / traceback of block *n* on the CPU).

use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// An in-memory protein sequence database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceDb {
    name: String,
    sequences: Vec<Sequence>,
    total_residues: usize,
    max_length: usize,
}

/// A contiguous range of database sequences processed as one pipeline unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbBlock {
    /// Index of the block within the database partitioning.
    pub block_id: usize,
    /// First sequence index (inclusive).
    pub start: usize,
    /// One past the last sequence index.
    pub end: usize,
}

impl DbBlock {
    /// Number of sequences in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the block covers no sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl SequenceDb {
    /// Build a database from sequences.
    pub fn new(name: impl Into<String>, sequences: Vec<Sequence>) -> Self {
        let total_residues = sequences.iter().map(|s| s.len()).sum();
        let max_length = sequences.iter().map(|s| s.len()).max().unwrap_or(0);
        Self {
            name: name.into(),
            sequences,
            total_residues,
            max_length,
        }
    }

    /// Database name (used in reports and figure labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All sequences, in database order.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total residue count across all sequences (the "database size" used
    /// by Karlin–Altschul e-value computation).
    pub fn total_residues(&self) -> usize {
        self.total_residues
    }

    /// Length of the longest sequence.
    pub fn max_length(&self) -> usize {
        self.max_length
    }

    /// Mean sequence length, zero for an empty database.
    pub fn mean_length(&self) -> f64 {
        if self.sequences.is_empty() {
            0.0
        } else {
            self.total_residues as f64 / self.sequences.len() as f64
        }
    }

    /// Split the database into blocks of at most `block_size` sequences.
    ///
    /// The final block may be smaller. `block_size` of zero is treated as
    /// "one block for everything".
    pub fn blocks(&self, block_size: usize) -> Vec<DbBlock> {
        if self.sequences.is_empty() {
            return Vec::new();
        }
        let block_size = if block_size == 0 {
            self.sequences.len()
        } else {
            block_size
        };
        (0..self.sequences.len())
            .step_by(block_size)
            .enumerate()
            .map(|(block_id, start)| DbBlock {
                block_id,
                start,
                end: (start + block_size).min(self.sequences.len()),
            })
            .collect()
    }

    /// Borrow the sequences of one block.
    pub fn block_sequences(&self, block: DbBlock) -> &[Sequence] {
        &self.sequences[block.start..block.end]
    }

    /// Sequence indices sorted by descending length. The CUDA-BLASTP
    /// baseline sorts subjects by length to reduce coarse-grained load
    /// imbalance; providing the permutation here keeps that baseline honest
    /// about the cost of the reorder.
    pub fn indices_by_length_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.sequences.len()).collect();
        idx.sort_by(|&a, &b| {
            self.sequences[b]
                .len()
                .cmp(&self.sequences[a].len())
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db3() -> SequenceDb {
        SequenceDb::new(
            "t",
            vec![
                Sequence::from_bytes("a", b"MKVL"),
                Sequence::from_bytes("b", b"AR"),
                Sequence::from_bytes("c", b"ARNDCQ"),
            ],
        )
    }

    #[test]
    fn totals() {
        let db = db3();
        assert_eq!(db.len(), 3);
        assert_eq!(db.total_residues(), 12);
        assert_eq!(db.max_length(), 6);
        assert!((db.mean_length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn blocks_cover_everything_without_overlap() {
        let db = db3();
        let blocks = db.blocks(2);
        assert_eq!(blocks.len(), 2);
        assert_eq!((blocks[0].start, blocks[0].end), (0, 2));
        assert_eq!((blocks[1].start, blocks[1].end), (2, 3));
        assert_eq!(blocks[1].len(), 1);
        assert_eq!(db.block_sequences(blocks[1])[0].id, "c");
    }

    #[test]
    fn zero_block_size_means_single_block() {
        let db = db3();
        let blocks = db.blocks(0);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 3);
    }

    #[test]
    fn empty_db() {
        let db = SequenceDb::new("e", vec![]);
        assert!(db.is_empty());
        assert!(db.blocks(4).is_empty());
        assert_eq!(db.mean_length(), 0.0);
        assert_eq!(db.max_length(), 0);
    }

    #[test]
    fn length_sort_is_stable_descending() {
        let db = db3();
        assert_eq!(db.indices_by_length_desc(), vec![2, 0, 1]);
    }
}
