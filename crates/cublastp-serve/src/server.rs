//! The serving front-end: priority queues, worker pool, deadlines and
//! result streaming over a resident database.
//!
//! A [`Server`] owns one database (flattened to device layout once, via
//! [`DeviceDbCache`]) and a small pool of worker threads. [`Server::submit`]
//! is the admission gate — it runs the tenant rate limit, the degradation
//! ladder, and the bounded-cost admission check *on the caller's thread*
//! and returns either a [`ResponseHandle`] or a typed
//! [`SearchError::Overloaded`]. Admitted jobs carry a [`CancelToken`]
//! whose deadline clock starts at admission, so time spent queued counts
//! against the budget — a server that queues a request for its whole
//! deadline refuses it at the first checkpoint instead of wasting a full
//! search on a client that has already given up.
//!
//! Workers drain the two class queues by weighted round-robin
//! (`interactive_weight` interactive picks per bulk pick), with the first
//! `reserved_interactive_workers` threads dedicated to the interactive
//! class so a long bulk search can never occupy every lane. Results stream
//! back over the handle's channel: one [`Event::Block`] per database block
//! as its CPU tail completes, then exactly one [`Event::Done`]. **Every
//! admitted request terminates with a `Done`** — worker panics become
//! typed pipeline errors, shutdown drains the queues, and a dropped
//! handle just discards events.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::report::SearchReport;
use cublastp::error::{panic_message, PipelineError};
use cublastp::CancelToken;
use cublastp::{
    search_sharded_with_hooks, BlockProgress, CuBlastp, CuBlastpConfig, CuBlastpResult, DeviceDb,
    DeviceDbCache, GappedBackend, SearchError, SearchHooks, ShardedDb, ShardedOptions,
};
use gpu_sim::{DeviceConfig, FaultInjector, KernelWorkspace};

use cublastp_db::DbImage;

use crate::admission::{estimate_cost, Admission, AdmissionConfig, RateLimitConfig, RateLimiter};
use crate::controller::{DegradationLevel, LoadController};

/// One immutable database generation: a [`SequenceDb`] and its resident
/// device layout, stamped with a monotonically increasing id.
///
/// The server holds the *current* generation behind a mutex; every
/// admitted job clones the `Arc` at admission and carries it end-to-end,
/// so a [hot swap](Server::swap_db) never changes the database under a
/// running search. When the last job pinning an old generation finishes,
/// the `Arc` count reaches zero and the generation drops — for an
/// image-backed generation that is the moment its mapping is released
/// (observable via [`cublastp_db::unmap_count`]).
pub struct DbGeneration {
    /// Generation id, starting at 1 for the database the server was
    /// constructed with.
    pub id: u64,
    /// Host-side database (e-value statistics, subject ids).
    pub db: Arc<SequenceDb>,
    /// Device-resident layout (flattened or mapped from a `.cdb` image).
    pub dev_db: Arc<DeviceDb>,
    /// Sharded view of the same database when the server runs with
    /// `shards > 1`; jobs pinned to this generation route through the
    /// sharded engine (output identical to the flat path).
    pub sharded: Option<Arc<ShardedDb>>,
    /// Where the generation came from: `"inline"` for an uploaded
    /// [`SequenceDb`], otherwise the image source label.
    pub source: String,
}

/// Request priority class. Interactive requests get the weighted share of
/// worker picks and a reserved lane; bulk requests are the first to shed
/// under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: favored by scheduling, never shed by the ladder.
    Interactive,
    /// Throughput traffic: shed first when pressure crosses `shed_bulk_at`.
    Bulk,
}

impl Priority {
    /// Stable lowercase name for metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Bulk => "bulk",
        }
    }

    /// Index into per-class arrays (interactive first).
    pub(crate) fn index(self) -> usize {
        match self {
            Self::Interactive => 0,
            Self::Bulk => 1,
        }
    }
}

/// One search request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The protein query.
    pub query: Sequence,
    /// Scheduling class.
    pub priority: Priority,
    /// Tenant id for per-tenant rate limiting.
    pub tenant: String,
    /// Wall-clock budget from admission to completion; `None` uses the
    /// server's `default_deadline` (which may also be `None` = unbounded).
    pub deadline: Option<Duration>,
}

impl Request {
    /// An interactive request for `tenant` with no explicit deadline.
    pub fn interactive(query: Sequence, tenant: impl Into<String>) -> Self {
        Self {
            query,
            priority: Priority::Interactive,
            tenant: tenant.into(),
            deadline: None,
        }
    }

    /// A bulk request for `tenant` with no explicit deadline.
    pub fn bulk(query: Sequence, tenant: impl Into<String>) -> Self {
        Self {
            query,
            priority: Priority::Bulk,
            tenant: tenant.into(),
            deadline: None,
        }
    }

    /// Set the per-request deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// A streamed server event. Blocks arrive in pipeline order, then exactly
/// one `Done`.
#[derive(Debug)]
pub enum Event {
    /// One database block finished its CPU tail; `partial` holds that
    /// block's alignments (blocks never alias, so accumulating partials
    /// reproduces the final unranked hit set).
    Block {
        /// Database block index.
        block: u32,
        /// Total blocks in this search.
        blocks_total: u32,
        /// The block's hits.
        partial: SearchReport,
    },
    /// Terminal event: the full result or a typed error. Boxed because
    /// [`CuBlastpResult`] is large next to a `Block`.
    Done(Box<Result<ServeResult, SearchError>>),
}

/// Successful completion, with serving-side telemetry alongside the
/// search result.
#[derive(Debug)]
pub struct ServeResult {
    /// The search result (its `recovery.queue_wait_us` is filled in with
    /// the serving queue wait).
    pub result: CuBlastpResult,
    /// Time from admission to a worker picking the job up, ms.
    pub queue_wait_ms: f64,
    /// Time from pickup to completion, ms.
    pub service_ms: f64,
    /// True when the degradation ladder forced coarse (CPU) gapped
    /// placement for this request.
    pub degraded_placement: bool,
    /// Id of the database generation the request was pinned to at
    /// admission (and served on end-to-end, even across a hot swap).
    pub generation: u64,
}

/// Client-side handle for one admitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    /// Server-assigned request id (monotonic).
    pub id: u64,
    /// The class the request was admitted under.
    pub priority: Priority,
    rx: mpsc::Receiver<Event>,
}

impl ResponseHandle {
    /// Next streamed event, or `None` once the channel is exhausted
    /// (after `Done`, or if the server was dropped mid-request — which
    /// [`wait`](Self::wait) turns into a typed error).
    pub fn next_event(&self) -> Option<Event> {
        self.rx.recv().ok()
    }

    /// Non-blocking variant of [`next_event`](Self::next_event): `None`
    /// when no event is ready right now. Load generators poll many
    /// handles from one thread with this instead of parking a thread per
    /// request.
    pub fn try_event(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Drain events until the terminal `Done` and return it. Block events
    /// are discarded — use [`next_event`](Self::next_event) to consume
    /// them incrementally.
    pub fn wait(self) -> Result<ServeResult, SearchError> {
        while let Some(ev) = self.next_event() {
            if let Event::Done(res) = ev {
                return *res;
            }
        }
        Err(SearchError::from(PipelineError::ChannelClosed {
            side: "serve worker",
        }))
    }
}

/// Serving configuration. Defaults suit the tests and demo: two workers
/// with one reserved for interactive traffic, small bounded queues, and no
/// rate limit.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queues.
    pub workers: usize,
    /// Of those, how many serve *only* the interactive class. Must be less
    /// than `workers` (so bulk always has a lane) unless `workers == 1`.
    pub reserved_interactive_workers: usize,
    /// Queued requests allowed per priority class.
    pub queue_capacity: usize,
    /// Outstanding DP-cell budget across all admitted requests.
    pub cost_capacity: u64,
    /// Interactive picks per bulk pick when both queues are non-empty.
    pub interactive_weight: u32,
    /// Shards each database generation is partitioned into (1 = the flat
    /// single-device path). Sharded searches use cross-shard statistics,
    /// so results are bit-identical to the flat path.
    pub shards: usize,
    /// Simulated devices the sharded fleet schedule spans.
    pub devices: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Option<Duration>,
    /// Per-tenant token-bucket limits.
    pub tenant_rate: RateLimitConfig,
    /// Degradation-ladder thresholds.
    pub controller: LoadController,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            reserved_interactive_workers: 1,
            queue_capacity: 16,
            cost_capacity: 1 << 32,
            interactive_weight: 4,
            shards: 1,
            devices: 1,
            default_deadline: None,
            tenant_rate: RateLimitConfig::default(),
            controller: LoadController::default(),
        }
    }
}

impl ServeConfig {
    /// Validate the configuration; called by [`Server::new`].
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.workers == 0 {
            return Err(SearchError::config("serve: workers must be > 0"));
        }
        if self.workers > 1 && self.reserved_interactive_workers >= self.workers {
            return Err(SearchError::config(
                "serve: reserved_interactive_workers must leave at least one general worker",
            ));
        }
        if self.workers == 1 && self.reserved_interactive_workers != 0 {
            return Err(SearchError::config(
                "serve: a single worker cannot be reserved for one class",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(SearchError::config("serve: queue_capacity must be > 0"));
        }
        if self.interactive_weight == 0 {
            return Err(SearchError::config("serve: interactive_weight must be > 0"));
        }
        if self.shards == 0 {
            return Err(SearchError::config("serve: shards must be > 0"));
        }
        if self.devices == 0 {
            return Err(SearchError::config("serve: devices must be > 0"));
        }
        Ok(())
    }
}

/// An admitted job waiting in a class queue. `generation` is pinned at
/// admission: the search runs on it even if a swap lands while queued.
struct Job {
    query: Sequence,
    priority: Priority,
    cost: u64,
    cancel: CancelToken,
    enqueued: Instant,
    generation: Arc<DbGeneration>,
    tx: mpsc::Sender<Event>,
}

#[derive(Default)]
struct QueueState {
    queues: [std::collections::VecDeque<Job>; 2],
    /// Consecutive interactive picks since the last bulk pick (WRR state).
    interactive_run: u32,
    closed: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    admission: Admission,
    limiter: RateLimiter,
    current: Mutex<Arc<DbGeneration>>,
    params: SearchParams,
    search_cfg: CuBlastpConfig,
    device: DeviceConfig,
    injector: Option<Arc<FaultInjector>>,
    next_id: AtomicU64,
    next_generation: AtomicU64,
}

impl Shared {
    /// Publish the admission gauges the load controller reads.
    fn publish_gauges(&self) {
        let (cost, queued) = self.admission.snapshot();
        obs::gauge(
            "serve_queue_depth",
            &[("class", "interactive")],
            queued[0] as f64,
        );
        obs::gauge("serve_queue_depth", &[("class", "bulk")], queued[1] as f64);
        obs::gauge("serve_cost_outstanding", &[], cost as f64);
    }

    fn level(&self) -> DegradationLevel {
        self.cfg.controller.assess(obs::metrics())
    }

    /// Pin the current database generation.
    fn current(&self) -> Arc<DbGeneration> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically publish `gen` as the current generation. In-flight and
    /// queued jobs keep their pinned `Arc`; only future admissions see it.
    fn install(&self, generation: DbGeneration) -> u64 {
        let id = generation.id;
        let blocks = generation.dev_db.num_blocks() as f64;
        *self.current.lock().unwrap_or_else(|e| e.into_inner()) = Arc::new(generation);
        obs::gauge("serve_db_generation", &[], id as f64);
        obs::gauge("serve_db_blocks", &[], blocks);
        id
    }
}

/// The admission-controlled search service. See the module docs for the
/// lifecycle; construction uploads the database once and spawns the
/// worker pool, [`shutdown`](Server::shutdown) (or drop) drains it.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Build a server over `db`: validates both configs, arms the metrics
    /// registry (the load controller reads its own gauges back), flattens
    /// the database to device layout once, and spawns the workers.
    pub fn new(
        db: SequenceDb,
        params: SearchParams,
        search_cfg: CuBlastpConfig,
        device: DeviceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, SearchError> {
        Self::with_injector(db, params, search_cfg, device, cfg, None)
    }

    /// [`new`](Self::new) with a fault injector shared by every request —
    /// the chaos/fault-matrix entry point.
    pub fn with_injector(
        db: SequenceDb,
        params: SearchParams,
        search_cfg: CuBlastpConfig,
        device: DeviceConfig,
        cfg: ServeConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<Self, SearchError> {
        let cache = DeviceDbCache::new();
        let dev_db = cache.get(&db, search_cfg.db_block_size);
        Self::build(
            Arc::new(db),
            dev_db,
            "inline".to_string(),
            params,
            search_cfg,
            device,
            cfg,
            injector,
        )
    }

    /// Build a server over a validated `.cdb` image: the device layout is
    /// materialised zero-copy from the mapped arena — no flatten pass —
    /// and becomes generation 1. The image's stored block size must match
    /// `search_cfg.db_block_size`.
    pub fn from_image(
        img: &DbImage,
        params: SearchParams,
        search_cfg: CuBlastpConfig,
        device: DeviceConfig,
        cfg: ServeConfig,
    ) -> Result<Self, SearchError> {
        if img.block_size() != search_cfg.db_block_size {
            return Err(SearchError::config(format!(
                "serve: image was built at block size {}, config wants {}",
                img.block_size(),
                search_cfg.db_block_size
            )));
        }
        let dev_db = Arc::new(DeviceDb::from_image(img));
        Self::build(
            Arc::new(img.to_sequence_db()),
            dev_db,
            img.region().source().to_string(),
            params,
            search_cfg,
            device,
            cfg,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        db: Arc<SequenceDb>,
        dev_db: Arc<DeviceDb>,
        source: String,
        params: SearchParams,
        search_cfg: CuBlastpConfig,
        device: DeviceConfig,
        cfg: ServeConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<Self, SearchError> {
        cfg.validate()?;
        search_cfg.validate()?;
        let sharded = make_sharded(&db, cfg.shards, search_cfg.db_block_size);
        // The ladder reads gauges back out of the registry, so metrics
        // must be armed for the lifetime of the server (tracing keeps its
        // prior state).
        obs::arm(obs::tracing_enabled(), true);

        let shared = Arc::new(Shared {
            admission: Admission::new(AdmissionConfig {
                queue_capacity: cfg.queue_capacity,
                cost_capacity: cfg.cost_capacity,
            }),
            limiter: RateLimiter::new(cfg.tenant_rate),
            cfg,
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            current: Mutex::new(Arc::new(DbGeneration {
                id: 1,
                db,
                dev_db,
                sharded,
                source,
            })),
            params,
            search_cfg,
            device,
            injector,
            next_id: AtomicU64::new(1),
            next_generation: AtomicU64::new(2),
        });
        obs::gauge("serve_db_generation", &[], 1.0);
        obs::gauge(
            "serve_db_blocks",
            &[],
            shared.current().dev_db.num_blocks() as f64,
        );
        obs::gauge(
            "serve_queue_capacity",
            &[],
            shared.cfg.queue_capacity as f64,
        );
        obs::gauge("serve_cost_capacity", &[], shared.cfg.cost_capacity as f64);
        shared.publish_gauges();

        let workers = (0..shared.cfg.workers)
            .map(|w| {
                let sh = Arc::clone(&shared);
                let interactive_only = w < sh.cfg.reserved_interactive_workers;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&sh, interactive_only))
                    .map_err(|e| SearchError::config(format!("serve: spawn failed: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shared, workers })
    }

    /// Number of database blocks a search admitted now will run.
    pub fn num_blocks(&self) -> u32 {
        self.shared.current().dev_db.blocks().len() as u32
    }

    /// Id of the generation new admissions are pinned to.
    pub fn generation(&self) -> u64 {
        self.shared.current().id
    }

    /// Hot-swap the database: flatten `db` at the server's block size and
    /// atomically publish it as the next generation. Returns the new
    /// generation id. The swap is wait-free for traffic — in-flight and
    /// queued searches finish on the generation they pinned at admission;
    /// only admissions after the swap see the new database. The flatten
    /// runs on the caller's thread, outside every server lock.
    pub fn swap_db(&self, db: SequenceDb) -> Result<u64, SearchError> {
        let sh = &self.shared;
        let _span = obs::span("db_swap", "serve");
        let dev_db = Arc::new(DeviceDb::upload(&db, sh.search_cfg.db_block_size));
        let sharded = make_sharded(&db, sh.cfg.shards, sh.search_cfg.db_block_size);
        let id = sh.next_generation.fetch_add(1, Ordering::Relaxed);
        let id = sh.install(DbGeneration {
            id,
            db: Arc::new(db),
            dev_db,
            sharded,
            source: "inline".to_string(),
        });
        obs::counter("serve_swaps_total", &[("source", "inline")], 1);
        Ok(id)
    }

    /// Hot-swap to a validated `.cdb` image, zero-copy (no flatten pass).
    /// Same pinning semantics as [`swap_db`](Self::swap_db); additionally
    /// the *old* generation's mapping (if image-backed) is unmapped only
    /// when its refcount reaches zero — after the last search pinned to it
    /// completes. The image block size must match the server's.
    pub fn swap_image(&self, img: &DbImage) -> Result<u64, SearchError> {
        let sh = &self.shared;
        if img.block_size() != sh.search_cfg.db_block_size {
            return Err(SearchError::config(format!(
                "serve: image was built at block size {}, config wants {}",
                img.block_size(),
                sh.search_cfg.db_block_size
            )));
        }
        let _span = obs::span("db_swap", "serve");
        let dev_db = Arc::new(DeviceDb::from_image(img));
        let db = Arc::new(img.to_sequence_db());
        let sharded = make_sharded(&db, sh.cfg.shards, sh.search_cfg.db_block_size);
        let id = sh.next_generation.fetch_add(1, Ordering::Relaxed);
        let id = sh.install(DbGeneration {
            id,
            db,
            dev_db,
            sharded,
            source: img.region().source().to_string(),
        });
        obs::counter("serve_swaps_total", &[("source", "image")], 1);
        Ok(id)
    }

    /// Current degradation level as seen by the next submission.
    pub fn level(&self) -> DegradationLevel {
        self.shared.level()
    }

    /// Admit a request or refuse it with a typed error. Refusals:
    /// `Overloaded` (rate limit, ladder shed, or full budgets) with a
    /// backoff hint; `config`/`input` errors for a shut-down server or an
    /// empty query. Admission is ordered rate-limit → ladder → budgets so
    /// an abusive tenant is refused before it can influence global state.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, SearchError> {
        let sh = &self.shared;
        if sh.state.lock().unwrap_or_else(|e| e.into_inner()).closed {
            return Err(SearchError::config("serve: server is shut down"));
        }
        if request.query.is_empty() {
            return Err(SearchError::input("serve: empty query"));
        }
        let class = request.priority;

        if let Err(retry_after_ms) = sh.limiter.try_acquire(&request.tenant) {
            obs::counter(
                "serve_shed_total",
                &[("class", class.name()), ("reason", "rate_limit")],
                1,
            );
            return Err(SearchError::Overloaded { retry_after_ms });
        }

        let level = sh.level();
        if level >= DegradationLevel::ShedBulk && class == Priority::Bulk {
            obs::counter(
                "serve_shed_total",
                &[("class", class.name()), ("reason", "degraded")],
                1,
            );
            return Err(SearchError::Overloaded {
                retry_after_ms: sh.admission.backoff_hint(),
            });
        }

        // Pin the generation before the cost estimate so the cost refers
        // to the database the job will actually search.
        let generation = sh.current();
        let cost = estimate_cost(request.query.len(), generation.db.total_residues());
        if let Err(e) =
            sh.admission
                .try_admit(class, cost, level >= DegradationLevel::ShrinkBudgets)
        {
            obs::counter(
                "serve_shed_total",
                &[("class", class.name()), ("reason", "queue_full")],
                1,
            );
            return Err(e);
        }

        // The deadline clock starts here, at admission — queue time is
        // part of the client's wait and must count against the budget.
        let cancel = match request.deadline.or(sh.cfg.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        };
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.closed {
                // Lost the race with shutdown: refund and refuse.
                drop(st);
                sh.admission.dequeued(class);
                sh.admission.complete(cost, 0.1);
                sh.publish_gauges();
                return Err(SearchError::config("serve: server is shut down"));
            }
            st.queues[class.index()].push_back(Job {
                query: request.query,
                priority: class,
                cost,
                cancel,
                enqueued: Instant::now(),
                generation,
                tx,
            });
        }
        sh.cv.notify_all();
        obs::counter("serve_admitted_total", &[("class", class.name())], 1);
        sh.publish_gauges();
        Ok(ResponseHandle {
            id,
            priority: class,
            rx,
        })
    }

    /// Stop accepting new requests, drain everything already admitted,
    /// and join the workers. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.closed = true;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pick the next job for a worker, honoring the reserved lane and the
/// weighted round-robin between classes. Returns `None` when the worker
/// should exit (closed and nothing pickable).
fn pick_job(sh: &Shared, interactive_only: bool) -> Option<Job> {
    let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let has_i = !st.queues[0].is_empty();
        let has_b = !st.queues[1].is_empty() && !interactive_only;
        if has_i || has_b {
            let take_interactive = if has_i && has_b {
                if st.interactive_run < sh.cfg.interactive_weight {
                    st.interactive_run += 1;
                    true
                } else {
                    st.interactive_run = 0;
                    false
                }
            } else {
                has_i
            };
            let job = if take_interactive {
                st.queues[0].pop_front()
            } else {
                st.queues[1].pop_front()
            };
            drop(st);
            let job = job?; // non-empty by construction
            sh.admission.dequeued(job.priority);
            sh.publish_gauges();
            return Some(job);
        }
        if st.closed {
            return None;
        }
        st = sh.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Build the sharded view of a generation when the server is configured
/// with more than one shard; `None` keeps the flat single-device path.
fn make_sharded(db: &SequenceDb, shards: usize, block_size: usize) -> Option<Arc<ShardedDb>> {
    (shards > 1).then(|| Arc::new(ShardedDb::split(db, shards, block_size)))
}

fn worker_loop(sh: &Shared, interactive_only: bool) {
    // One scratch workspace per worker, reused across requests, so the
    // steady-state hot path allocates nothing (same pooling as the batch
    // drivers — but never shared between workers, which run concurrently).
    let workspace = Arc::new(KernelWorkspace::new());
    while let Some(job) = pick_job(sh, interactive_only) {
        process_job(sh, &workspace, job);
    }
}

fn process_job(sh: &Shared, workspace: &Arc<KernelWorkspace>, job: Job) {
    let class = job.priority;
    let queue_wait = job.enqueued.elapsed();
    let queue_wait_ms = queue_wait.as_secs_f64() * 1e3;
    obs::observe(
        "serve_queue_wait_ms",
        &[("class", class.name())],
        queue_wait_ms,
    );
    // The job's pinned generation, not the server's current one: a swap
    // that landed while this job was queued must not change its database.
    let generation = Arc::clone(&job.generation);
    let blocks_total = match &generation.sharded {
        // Sharded jobs stream one progress event per shard.
        Some(s) => s.num_shards() as u32,
        None => generation.dev_db.blocks().len() as u32,
    };

    // A request whose deadline expired while queued is refused before any
    // device work — this is the "server queued you to death" path.
    if job.cancel.check() {
        finish(
            sh,
            &job,
            queue_wait_ms,
            0.0,
            false,
            Err(SearchError::DeadlineExceeded {
                elapsed_ms: job.cancel.elapsed_ms(),
                blocks_completed: 0,
                blocks_total,
            }),
        );
        return;
    }

    // Re-assess the ladder at pickup: pressure may have crossed the
    // coarse-placement rung while this job was queued.
    let mut search_cfg = sh.search_cfg;
    let mut degraded_placement = false;
    if sh.level() >= DegradationLevel::CoarseOnly && search_cfg.gapped_backend == GappedBackend::Gpu
    {
        search_cfg.gapped_backend = GappedBackend::Cpu;
        degraded_placement = true;
        obs::counter("serve_coarse_placements_total", &[], 1);
    }

    let t_service = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let on_block = |p: BlockProgress<'_>| {
            obs::counter("serve_blocks_streamed_total", &[], 1);
            // A receiver that hung up just stops streaming; the search
            // itself still completes and settles the admission budget.
            let _ = job.tx.send(Event::Block {
                block: p.block,
                blocks_total: p.blocks_total,
                partial: p.partial.clone(),
            });
        };
        let hooks = SearchHooks {
            cancel: job.cancel.clone(),
            on_block: Some(&on_block),
        };
        match &generation.sharded {
            // Sharded generation: every shard with global statistics,
            // merged to the same report the flat path produces. Shards
            // are already resident; no request pays the upload.
            Some(sharded) => {
                let mut searcher =
                    sharded.searcher(job.query.clone(), sh.params, search_cfg, sh.device);
                searcher.workspace = Arc::clone(workspace);
                if let Some(inj) = &sh.injector {
                    searcher.injector = Arc::clone(inj);
                }
                let opts = ShardedOptions {
                    devices: sh.cfg.devices,
                    ..ShardedOptions::default()
                };
                search_sharded_with_hooks(&searcher, sharded, &opts, &hooks).map(|r| r.result)
            }
            None => {
                let mut searcher = CuBlastp::new(
                    job.query.clone(),
                    sh.params,
                    search_cfg,
                    sh.device,
                    &generation.db,
                );
                searcher.workspace = Arc::clone(workspace);
                if let Some(inj) = &sh.injector {
                    searcher.injector = Arc::clone(inj);
                }
                // The database is already resident; no request pays the
                // upload.
                searcher.search_resident_with_hooks(
                    &generation.db,
                    &generation.dev_db,
                    false,
                    &hooks,
                )
            }
        }
    }));
    let service_ms = t_service.elapsed().as_secs_f64() * 1e3;

    let result = match outcome {
        Ok(res) => res,
        Err(payload) => Err(SearchError::from(PipelineError::WorkerPanicked {
            side: "serve worker",
            payload: panic_message(payload.as_ref()),
        })),
    };
    finish(
        sh,
        &job,
        queue_wait_ms,
        service_ms,
        degraded_placement,
        result,
    );
}

/// Settle one job: release its admission cost, record telemetry, and send
/// the terminal `Done` event.
fn finish(
    sh: &Shared,
    job: &Job,
    queue_wait_ms: f64,
    service_ms: f64,
    degraded_placement: bool,
    result: Result<CuBlastpResult, SearchError>,
) {
    sh.admission.complete(job.cost, service_ms.max(0.1));
    sh.publish_gauges();
    let class = job.priority;
    let total_ms = queue_wait_ms + service_ms;
    obs::observe("serve_latency_ms", &[("class", class.name())], total_ms);

    let done = match result {
        Ok(mut r) => {
            r.recovery.queue_wait_us = (queue_wait_ms * 1e3) as u64;
            obs::counter(
                "serve_completed_total",
                &[("class", class.name()), ("outcome", "ok")],
                1,
            );
            Ok(ServeResult {
                result: r,
                queue_wait_ms,
                service_ms,
                degraded_placement,
                generation: job.generation.id,
            })
        }
        Err(e) => {
            if matches!(e, SearchError::DeadlineExceeded { .. }) {
                obs::counter("serve_deadline_total", &[("class", class.name())], 1);
            }
            obs::counter(
                "serve_completed_total",
                &[("class", class.name()), ("outcome", e.category())],
                1,
            );
            Err(e)
        }
    };
    let _ = job.tx.send(Event::Done(Box::new(done)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};

    /// The obs metrics registry is process-global and `cargo test` runs
    /// unit tests threaded, so every test that builds a `Server` (which
    /// arms metrics and publishes gauges) must hold this lock.
    /// (`obs::test_lock` is crate-private.)
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "serve-t",
            num_sequences: 120,
            mean_length: 130,
            homolog_fraction: 0.2,
            seed: 33,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    fn search_cfg() -> CuBlastpConfig {
        CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 2,
            warps_per_block: 2,
            cpu_threads: 1,
            ..Default::default()
        }
    }

    fn server(cfg: ServeConfig) -> (Server, Sequence) {
        let (q, db) = workload();
        let srv = Server::new(
            db,
            SearchParams::default(),
            search_cfg(),
            DeviceConfig::k20c(),
            cfg,
        )
        .expect("server config valid");
        (srv, q)
    }

    #[test]
    fn sharded_serve_matches_flat_serve() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, q) = server(ServeConfig::default());
        let flat = srv
            .submit(Request::interactive(q.clone(), "t0"))
            .expect("admitted")
            .wait()
            .expect("flat serve");
        drop(srv);

        let sharded_srv = {
            let (_, db) = workload();
            Server::new(
                db,
                SearchParams::default(),
                search_cfg(),
                DeviceConfig::k20c(),
                ServeConfig {
                    shards: 3,
                    devices: 2,
                    ..ServeConfig::default()
                },
            )
            .expect("sharded server config valid")
        };
        // Per-shard progress events: exactly one Block per shard, then Done.
        let handle = sharded_srv
            .submit(Request::interactive(q, "t0"))
            .expect("admitted");
        let mut blocks = 0u32;
        let out = loop {
            match handle.next_event().expect("event stream open") {
                Event::Block { blocks_total, .. } => {
                    assert_eq!(blocks_total, 3);
                    blocks += 1;
                }
                Event::Done(result) => break result.expect("sharded serve"),
            }
        };
        assert_eq!(blocks, 3);
        assert_eq!(
            out.result.report.identity_key(),
            flat.result.report.identity_key()
        );
        for (a, b) in out.result.report.hits.iter().zip(&flat.result.report.hits) {
            assert_eq!(a.evalue.to_bits(), b.evalue.to_bits());
            assert_eq!(a.bit_score.to_bits(), b.bit_score.to_bits());
        }
        assert!(ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ServeConfig {
            devices: 0,
            ..ServeConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn served_search_matches_direct_search() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, q) = server(ServeConfig::default());
        let (_, db) = workload();
        let direct = CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            search_cfg(),
            DeviceConfig::k20c(),
            &db,
        )
        .search(&db)
        .expect("direct search");

        let handle = srv.submit(Request::interactive(q, "t0")).expect("admitted");
        let out = handle.wait().expect("served search");
        assert_eq!(
            out.result.report.identity_key(),
            direct.report.identity_key()
        );
        assert!(out.queue_wait_ms >= 0.0 && out.service_ms > 0.0);
        assert!(!out.degraded_placement);
        // Queue wait is surfaced through the recovery report (satellite 1).
        assert_eq!(
            out.result.recovery.queue_wait_us,
            (out.queue_wait_ms * 1e3) as u64
        );
    }

    #[test]
    fn block_events_stream_in_order_then_done() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, q) = server(ServeConfig::default());
        let total = srv.num_blocks();
        assert!(total > 1, "workload must span multiple blocks");
        let handle = srv.submit(Request::interactive(q, "t0")).expect("admitted");
        let mut blocks = Vec::new();
        let mut done = None;
        while let Some(ev) = handle.next_event() {
            match ev {
                Event::Block {
                    block,
                    blocks_total,
                    ..
                } => {
                    assert_eq!(blocks_total, total);
                    blocks.push(block);
                }
                Event::Done(res) => {
                    done = Some(*res);
                    break;
                }
            }
        }
        assert_eq!(blocks, (0..total).collect::<Vec<_>>());
        assert!(done.expect("terminal event").is_ok());
    }

    #[test]
    fn zero_deadline_yields_typed_deadline_error() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, q) = server(ServeConfig::default());
        let handle = srv
            .submit(Request::interactive(q, "t0").with_deadline(Duration::ZERO))
            .expect("admission does not check deadlines");
        match handle.wait() {
            Err(SearchError::DeadlineExceeded {
                blocks_completed,
                blocks_total,
                ..
            }) => {
                assert_eq!(blocks_completed, 0);
                assert_eq!(blocks_total, srv.num_blocks());
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn shed_bulk_rung_refuses_bulk_but_not_interactive() {
        let _g = lock();
        obs::metrics().reset();
        let cfg = ServeConfig {
            // Threshold at zero pressure: permanently at ShedBulk.
            controller: LoadController {
                shed_bulk_at: 0.0,
                shrink_at: 2.0,
                coarse_at: 2.0,
            },
            ..Default::default()
        };
        let (srv, q) = server(cfg);
        let err = srv
            .submit(Request::bulk(q.clone(), "t0"))
            .expect_err("bulk must shed");
        match err {
            SearchError::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let ok = srv
            .submit(Request::interactive(q, "t0"))
            .expect("interactive admitted");
        assert!(ok.wait().is_ok());
    }

    #[test]
    fn tenant_rate_limit_refuses_with_backoff() {
        let _g = lock();
        obs::metrics().reset();
        let cfg = ServeConfig {
            tenant_rate: RateLimitConfig {
                rate_per_sec: 0.001, // one request per ~17 minutes
                burst: 1.0,
            },
            ..Default::default()
        };
        let (srv, q) = server(cfg);
        assert!(srv.submit(Request::interactive(q.clone(), "t0")).is_ok());
        let err = srv
            .submit(Request::interactive(q.clone(), "t0"))
            .expect_err("tenant t0 over its rate");
        assert_eq!(err.category(), "overloaded");
        // Another tenant has its own bucket.
        assert!(srv.submit(Request::interactive(q, "t1")).is_ok());
    }

    #[test]
    fn queue_capacity_sheds_with_typed_overload() {
        let _g = lock();
        obs::metrics().reset();
        // One worker, one queue slot: the third submission in a burst must
        // be refused (one running + one queued).
        let cfg = ServeConfig {
            workers: 1,
            reserved_interactive_workers: 0,
            queue_capacity: 1,
            ..Default::default()
        };
        let (srv, q) = server(cfg);
        let mut handles = Vec::new();
        let mut shed = 0;
        for _ in 0..6 {
            match srv.submit(Request::interactive(q.clone(), "t0")) {
                Ok(h) => handles.push(h),
                Err(SearchError::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    shed += 1;
                }
                Err(other) => panic!("expected Overloaded, got {other:?}"),
            }
        }
        assert!(shed > 0, "a 6-deep burst into a 1-slot queue must shed");
        // Every admitted request still terminates cleanly.
        for h in handles {
            h.wait().expect("admitted request completes");
        }
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let _g = lock();
        obs::metrics().reset();
        let (mut srv, q) = server(ServeConfig::default());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let class = if i % 2 == 0 {
                    Request::interactive(q.clone(), "t0")
                } else {
                    Request::bulk(q.clone(), "t1")
                };
                srv.submit(class).expect("admitted")
            })
            .collect();
        srv.shutdown();
        for h in handles {
            h.wait().expect("drained, not dropped");
        }
        // New submissions are refused after shutdown.
        let err = srv
            .submit(Request::interactive(q, "t0"))
            .expect_err("closed");
        assert_eq!(err.category(), "config");
    }

    /// A second, distinguishable database over the same query (different
    /// seed → different planted homologs, so results differ from
    /// `workload()`'s db).
    fn workload_b(q: &Sequence) -> SequenceDb {
        let spec = DbSpec {
            name: "serve-t-b",
            num_sequences: 120,
            mean_length: 130,
            homolog_fraction: 0.2,
            seed: 77,
        };
        generate_db(&spec, q).db
    }

    fn direct_key(q: &Sequence, db: &SequenceDb) -> Vec<(usize, i32, u32, u32, u32, u32)> {
        CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            search_cfg(),
            DeviceConfig::k20c(),
            db,
        )
        .search(db)
        .expect("direct search")
        .report
        .identity_key()
    }

    #[test]
    fn swap_pins_inflight_and_routes_new_admissions() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, q) = server(ServeConfig::default());
        assert_eq!(srv.generation(), 1);
        let (_, db_a) = workload();
        let db_b = workload_b(&q);
        let key_a = direct_key(&q, &db_a);
        let key_b = direct_key(&q, &db_b);
        assert_ne!(key_a, key_b, "the two generations must be distinguishable");

        // Admit against generation 1, swap, then admit against 2. The
        // pre-swap requests are queued or running when the swap lands.
        let before: Vec<_> = (0..3)
            .map(|_| {
                srv.submit(Request::interactive(q.clone(), "t0"))
                    .expect("admitted")
            })
            .collect();
        let new_gen = srv.swap_db(db_b).expect("swap");
        assert_eq!(new_gen, 2);
        assert_eq!(srv.generation(), 2);
        let after = srv
            .submit(Request::interactive(q.clone(), "t0"))
            .expect("admitted");

        for h in before {
            let out = h.wait().expect("pre-swap request completes");
            assert_eq!(out.generation, 1, "pinned at admission");
            assert_eq!(out.result.report.identity_key(), key_a);
        }
        let out = after.wait().expect("post-swap request completes");
        assert_eq!(out.generation, 2);
        assert_eq!(out.result.report.identity_key(), key_b);
    }

    #[test]
    fn image_server_and_swap_release_mapping_at_refcount_zero() {
        let _g = lock();
        obs::metrics().reset();
        let (q, db) = workload();
        let img = cublastp_db::DbImage::from_bytes(
            cublastp_db::build_to_vec(&db, search_cfg().db_block_size),
            "serve-img-a",
        )
        .expect("valid image");
        let srv = Server::from_image(
            &img,
            SearchParams::default(),
            search_cfg(),
            DeviceConfig::k20c(),
            ServeConfig::default(),
        )
        .expect("server from image");
        drop(img); // the generation keeps the mapping alive
        let key_a = direct_key(&q, &db);
        let h = srv
            .submit(Request::interactive(q.clone(), "t0"))
            .expect("admitted");
        let out = h.wait().expect("served from image");
        assert_eq!(out.generation, 1);
        assert_eq!(out.result.report.identity_key(), key_a);

        let unmaps_before = cublastp_db::unmap_count();
        let db_b = workload_b(&q);
        let img_b = cublastp_db::DbImage::from_bytes(
            cublastp_db::build_to_vec(&db_b, search_cfg().db_block_size),
            "serve-img-b",
        )
        .expect("valid image");
        srv.swap_image(&img_b).expect("swap to image b");
        drop(img_b);
        // Generation 1's mapping is released once nothing pins it: no job
        // holds it (the only request completed above) and the server now
        // points at generation 2. Workers may still be dropping the last
        // job, so poll briefly instead of asserting instantly.
        let deadline = Instant::now() + Duration::from_secs(2);
        while cublastp_db::unmap_count() < unmaps_before + 1 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(cublastp_db::unmap_count(), unmaps_before + 1);

        let out = srv
            .submit(Request::interactive(q.clone(), "t0"))
            .expect("admitted")
            .wait()
            .expect("served on generation 2");
        assert_eq!(out.generation, 2);
        assert_eq!(out.result.report.identity_key(), direct_key(&q, &db_b));
    }

    #[test]
    fn image_block_size_mismatch_is_a_config_error() {
        let _g = lock();
        obs::metrics().reset();
        let (q, db) = workload();
        let img = cublastp_db::DbImage::from_bytes(
            cublastp_db::build_to_vec(&db, 999),
            "serve-img-mismatch",
        )
        .expect("valid image");
        let err = match Server::from_image(
            &img,
            SearchParams::default(),
            search_cfg(),
            DeviceConfig::k20c(),
            ServeConfig::default(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("block size mismatch must be rejected"),
        };
        assert_eq!(err.category(), "config");
        let (srv, _) = server(ServeConfig::default());
        let err = srv.swap_image(&img).expect_err("swap mismatch");
        assert_eq!(err.category(), "config");
        drop(q);
    }

    #[test]
    fn empty_query_is_an_input_error() {
        let _g = lock();
        obs::metrics().reset();
        let (srv, _q) = server(ServeConfig::default());
        let empty = Sequence::from_residues("empty", Vec::new());
        let err = srv
            .submit(Request::interactive(empty, "t0"))
            .expect_err("empty query refused");
        assert_eq!(err.category(), "input");
    }

    #[test]
    fn config_validation_rejects_degenerate_pools() {
        for bad in [
            ServeConfig {
                workers: 0,
                ..Default::default()
            },
            ServeConfig {
                workers: 2,
                reserved_interactive_workers: 2,
                ..Default::default()
            },
            ServeConfig {
                workers: 1,
                reserved_interactive_workers: 1,
                ..Default::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            ServeConfig {
                interactive_weight: 0,
                ..Default::default()
            },
        ] {
            assert_eq!(bad.validate().expect_err("invalid").category(), "config");
        }
    }
}
