//! # cublastp-serve
//!
//! Overload-safe search-as-a-service over the cuBLASTP pipeline
//! (DESIGN.md §3.8). The library turns the single-shot
//! [`CuBlastp`](cublastp::CuBlastp) searcher into a bounded, deadline-aware
//! service with four load-safety mechanisms:
//!
//! * **Bounded admission** ([`admission`]): per-class queue caps plus a
//!   token budget in estimated DP cells. A refused request gets a typed
//!   [`SearchError::Overloaded`](cublastp::SearchError::Overloaded) with a
//!   `retry_after_ms` hint derived from the measured drain rate — clients
//!   back off instead of piling on.
//! * **Deadlines** ([`server`]): each request carries a
//!   [`CancelToken`](cublastp::CancelToken) whose clock starts at
//!   admission; the search polls it at every database-block boundary and
//!   returns
//!   [`SearchError::DeadlineExceeded`](cublastp::SearchError::DeadlineExceeded)
//!   with partial-phase telemetry rather than completing for a client
//!   that gave up.
//! * **Priority load-shedding** ([`controller`]): two classes
//!   (interactive / bulk) drained by weighted round-robin with a reserved
//!   interactive lane, plus per-tenant token-bucket rate limits. A
//!   stateless load controller maps queue and cost pressure to a
//!   degradation ladder: shed bulk → shrink admission budgets → coarse
//!   (CPU) gapped placement.
//! * **Result streaming**: one [`Event::Block`] per database block as its
//!   CPU tail completes, then exactly one [`Event::Done`] — every
//!   admitted request terminates with a typed result, never silently.
//!
//! ```
//! use bio_seq::generate::{generate_preset, make_query, DbPreset};
//! use blast_core::SearchParams;
//! use cublastp::CuBlastpConfig;
//! use cublastp_serve::{Request, ServeConfig, Server};
//! use gpu_sim::DeviceConfig;
//!
//! let query = make_query(127);
//! let db = generate_preset(DbPreset::SwissprotMini, &query).db;
//! let server = Server::new(
//!     db,
//!     SearchParams::default(),
//!     CuBlastpConfig::default(),
//!     DeviceConfig::k20c(),
//!     ServeConfig::default(),
//! )
//! .expect("valid config");
//! let handle = server.submit(Request::interactive(query, "tenant-a"))
//!     .expect("admitted");
//! let out = handle.wait().expect("search served");
//! println!("{} alignments after {:.2} ms queued + {:.2} ms service",
//!          out.result.report.hits.len(), out.queue_wait_ms, out.service_ms);
//! ```

pub mod admission;
pub mod controller;
pub mod server;

pub use admission::{estimate_cost, AdmissionConfig, RateLimitConfig};
pub use controller::{DegradationLevel, LoadController};
pub use server::{
    DbGeneration, Event, Priority, Request, ResponseHandle, ServeConfig, ServeResult, Server,
};
