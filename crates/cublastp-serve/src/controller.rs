//! The load controller: maps observed pressure to a degradation level.
//!
//! The controller is deliberately dumb — it reads four gauges the server
//! publishes into the [`obs`] metrics registry, computes a single scalar
//! *pressure* in `[0, 1]`, and maps it through three fixed thresholds to a
//! [`DegradationLevel`]. Keeping the policy stateless (pure function of
//! current gauges) means there is no hysteresis state to corrupt under
//! concurrent assessment, and the bench can reproduce any decision from a
//! metrics snapshot alone.
//!
//! The ladder, in escalation order (DESIGN.md §3.8):
//!
//! | level | trigger (pressure) | effect |
//! |---|---|---|
//! | `Normal` | < 0.60 | none |
//! | `ShedBulk` | ≥ 0.60 | bulk submissions refused with `Overloaded` |
//! | `ShrinkBudgets` | ≥ 0.80 | admission caps halved for everyone |
//! | `CoarseOnly` | ≥ 0.95 | gapped placement forced to the coarse CPU backend |
//!
//! Each level implies all the ones below it: at `CoarseOnly` bulk is shed
//! *and* budgets are shrunk *and* placement is coarse.

use obs::Registry;

/// Rung on the degradation ladder. `Ord` follows escalation order, so
/// `level >= DegradationLevel::ShedBulk` reads as "shedding bulk (or
/// worse)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Full service.
    Normal,
    /// Refuse new bulk-class submissions.
    ShedBulk,
    /// Additionally halve the admission queue and cost budgets.
    ShrinkBudgets,
    /// Additionally force gapped placement to the coarse CPU backend.
    CoarseOnly,
}

impl DegradationLevel {
    /// Stable lowercase name for metrics labels and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::Normal => "normal",
            Self::ShedBulk => "shed_bulk",
            Self::ShrinkBudgets => "shrink_budgets",
            Self::CoarseOnly => "coarse_only",
        }
    }
}

/// Pressure thresholds for the ladder. Defaults follow the table above;
/// the bench overrides them to exercise specific rungs.
#[derive(Debug, Clone, Copy)]
pub struct LoadController {
    /// Pressure at which bulk submissions are refused.
    pub shed_bulk_at: f64,
    /// Pressure at which admission budgets are halved.
    pub shrink_at: f64,
    /// Pressure at which gapped placement degrades to coarse.
    pub coarse_at: f64,
}

impl Default for LoadController {
    fn default() -> Self {
        Self {
            shed_bulk_at: 0.60,
            shrink_at: 0.80,
            coarse_at: 0.95,
        }
    }
}

impl LoadController {
    /// Compute current pressure from the server's published gauges:
    /// the worst of (queue occupancy fraction, cost budget fraction).
    /// Missing gauges read as zero pressure, so an unarmed registry
    /// degrades to "always Normal" rather than spurious shedding.
    pub fn pressure(&self, reg: &Registry) -> f64 {
        let queue_cap = reg.gauge_value("serve_queue_capacity", &[]).unwrap_or(0.0);
        let queued = reg
            .gauge_value("serve_queue_depth", &[("class", "interactive")])
            .unwrap_or(0.0)
            .max(
                reg.gauge_value("serve_queue_depth", &[("class", "bulk")])
                    .unwrap_or(0.0),
            );
        let queue_frac = if queue_cap > 0.0 {
            queued / queue_cap
        } else {
            0.0
        };

        let cost_cap = reg.gauge_value("serve_cost_capacity", &[]).unwrap_or(0.0);
        let cost = reg
            .gauge_value("serve_cost_outstanding", &[])
            .unwrap_or(0.0);
        let cost_frac = if cost_cap > 0.0 { cost / cost_cap } else { 0.0 };

        queue_frac.max(cost_frac).clamp(0.0, 1.0)
    }

    /// Map a pressure value to its ladder rung.
    pub fn level_for_pressure(&self, p: f64) -> DegradationLevel {
        if p >= self.coarse_at {
            DegradationLevel::CoarseOnly
        } else if p >= self.shrink_at {
            DegradationLevel::ShrinkBudgets
        } else if p >= self.shed_bulk_at {
            DegradationLevel::ShedBulk
        } else {
            DegradationLevel::Normal
        }
    }

    /// Read the gauges and return the current rung.
    pub fn assess(&self, reg: &Registry) -> DegradationLevel {
        self.level_for_pressure(self.pressure(reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(queued_i: f64, queued_b: f64, cap: f64, cost: f64, cost_cap: f64) -> Registry {
        let reg = Registry::new();
        reg.gauge_set("serve_queue_depth", &[("class", "interactive")], queued_i);
        reg.gauge_set("serve_queue_depth", &[("class", "bulk")], queued_b);
        reg.gauge_set("serve_queue_capacity", &[], cap);
        reg.gauge_set("serve_cost_outstanding", &[], cost);
        reg.gauge_set("serve_cost_capacity", &[], cost_cap);
        reg
    }

    #[test]
    fn levels_escalate_with_pressure() {
        let c = LoadController::default();
        assert_eq!(c.level_for_pressure(0.0), DegradationLevel::Normal);
        assert_eq!(c.level_for_pressure(0.59), DegradationLevel::Normal);
        assert_eq!(c.level_for_pressure(0.60), DegradationLevel::ShedBulk);
        assert_eq!(c.level_for_pressure(0.80), DegradationLevel::ShrinkBudgets);
        assert_eq!(c.level_for_pressure(0.95), DegradationLevel::CoarseOnly);
        assert_eq!(c.level_for_pressure(1.0), DegradationLevel::CoarseOnly);
        // Ord follows escalation.
        assert!(DegradationLevel::CoarseOnly > DegradationLevel::ShedBulk);
        assert!(DegradationLevel::ShedBulk > DegradationLevel::Normal);
    }

    #[test]
    fn pressure_is_worst_of_queue_and_cost() {
        let c = LoadController::default();
        // Queue pressure dominates: 8/10 queued, cost near-idle.
        let reg = reg_with(8.0, 2.0, 10.0, 10.0, 1000.0);
        assert!((c.pressure(&reg) - 0.8).abs() < 1e-9);
        // Cost pressure dominates: queues empty, budget nearly spent.
        let reg = reg_with(0.0, 0.0, 10.0, 960.0, 1000.0);
        assert!((c.pressure(&reg) - 0.96).abs() < 1e-9);
        assert_eq!(c.assess(&reg), DegradationLevel::CoarseOnly);
    }

    #[test]
    fn missing_gauges_read_as_no_pressure() {
        let c = LoadController::default();
        let reg = Registry::new();
        assert_eq!(c.pressure(&reg), 0.0);
        assert_eq!(c.assess(&reg), DegradationLevel::Normal);
    }

    #[test]
    fn level_names_are_stable() {
        assert_eq!(DegradationLevel::Normal.name(), "normal");
        assert_eq!(DegradationLevel::CoarseOnly.name(), "coarse_only");
    }
}
