//! Bounded admission: the token-cost model, per-class queue caps, and
//! per-tenant rate limits (DESIGN.md §3.8).
//!
//! Admission answers one question — *can this request enter the system
//! without pushing it into unbounded queueing?* — with two budgets:
//!
//! * **queue depth**, per priority class, so a burst cannot stack more
//!   requests than the workers can drain within a deadline; and
//! * **outstanding cost**, a token budget in estimated DP cells
//!   (`query_len × database residues`), so a few giant queries cannot
//!   occupy the same nominal queue slots as many small ones while
//!   representing 100× the work.
//!
//! A refused request gets a typed
//! [`SearchError::Overloaded`] whose
//! `retry_after_ms` comes from the measured drain rate: outstanding
//! work divided by an EWMA of cells retired per millisecond, clamped to a
//! sane client-backoff window. Nothing here sleeps or blocks beyond a
//! mutex — admission is a pure bookkeeping gate.

use cublastp::SearchError;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::server::Priority;

/// Estimated work of one request, in DP cells: query length times total
/// database residues. This over-counts (only seeds that survive the hit
/// phase reach the DP), but consistently so — relative cost between a
/// 127-residue interactive query and a 1054-residue bulk one is right,
/// which is what budget arithmetic needs.
pub fn estimate_cost(query_len: usize, db_residues: usize) -> u64 {
    (query_len.max(1) as u64).saturating_mul(db_residues.max(1) as u64)
}

/// Static admission budgets (see [`ServeConfig`](crate::ServeConfig)).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queued requests allowed per priority class.
    pub queue_capacity: usize,
    /// Outstanding (admitted but unfinished) cost budget, in DP cells.
    pub cost_capacity: u64,
}

#[derive(Debug, Default)]
struct AdmissionState {
    outstanding_cost: u64,
    queued: [usize; 2],
    /// EWMA drain rate in cells per millisecond (0 until first completion).
    drain_rate: f64,
}

/// The admission gate: bounded queues + outstanding-cost budget.
#[derive(Debug)]
pub(crate) struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<AdmissionState>,
}

/// Clamp for the suggested client backoff.
const RETRY_AFTER_MIN_MS: u64 = 10;
const RETRY_AFTER_MAX_MS: u64 = 5_000;

impl Admission {
    pub(crate) fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(AdmissionState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to admit a request of `cost` cells into `class`. Under budget
    /// shrink (degradation level ≥ ShrinkBudgets) both caps are halved, so
    /// the system sheds harder as pressure rises. On refusal returns the
    /// typed overload error with the drain-rate-derived backoff hint.
    pub(crate) fn try_admit(
        &self,
        class: Priority,
        cost: u64,
        shrink: bool,
    ) -> Result<(), SearchError> {
        let mut st = self.lock();
        let queue_cap = if shrink {
            (self.cfg.queue_capacity / 2).max(1)
        } else {
            self.cfg.queue_capacity
        };
        let cost_cap = if shrink {
            (self.cfg.cost_capacity / 2).max(1)
        } else {
            self.cfg.cost_capacity
        };
        let over_queue = st.queued[class.index()] >= queue_cap;
        let over_cost = st.outstanding_cost.saturating_add(cost) > cost_cap;
        if over_queue || over_cost {
            return Err(SearchError::Overloaded {
                retry_after_ms: Self::retry_after_ms(&st),
            });
        }
        st.outstanding_cost += cost;
        st.queued[class.index()] += 1;
        Ok(())
    }

    /// A worker dequeued a request of `class` (it still holds its cost).
    pub(crate) fn dequeued(&self, class: Priority) {
        let mut st = self.lock();
        st.queued[class.index()] = st.queued[class.index()].saturating_sub(1);
    }

    /// A request finished (result or typed error): release its cost and
    /// fold its service time into the drain-rate estimate.
    pub(crate) fn complete(&self, cost: u64, service_ms: f64) {
        let mut st = self.lock();
        st.outstanding_cost = st.outstanding_cost.saturating_sub(cost);
        let inst = cost as f64 / service_ms.max(0.1);
        st.drain_rate = if st.drain_rate == 0.0 {
            inst
        } else {
            0.8 * st.drain_rate + 0.2 * inst
        };
    }

    /// Snapshot for gauge publication: (outstanding cost, queued per
    /// class).
    pub(crate) fn snapshot(&self) -> (u64, [usize; 2]) {
        let st = self.lock();
        (st.outstanding_cost, st.queued)
    }

    /// The backoff hint for refusals decided outside the admission check
    /// (ladder sheds), from the same drain-rate estimate.
    pub(crate) fn backoff_hint(&self) -> u64 {
        Self::retry_after_ms(&self.lock())
    }

    /// Suggested client backoff: how long until the outstanding work
    /// drains at the measured rate. Before any completion the drain rate
    /// is unknown, so back off proportionally to queue depth instead.
    fn retry_after_ms(st: &AdmissionState) -> u64 {
        let ms = if st.drain_rate > 0.0 {
            (st.outstanding_cost as f64 / st.drain_rate) as u64
        } else {
            100 + 50 * (st.queued[0] + st.queued[1]) as u64
        };
        ms.clamp(RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS)
    }
}

/// Per-tenant token-bucket rate limit. `rate_per_sec` of
/// [`f64::INFINITY`] disables limiting entirely (the default).
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Sustained requests per second per tenant.
    pub rate_per_sec: f64,
    /// Burst allowance (bucket depth) per tenant.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: f64::INFINITY,
            burst: 1.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token buckets keyed by tenant id.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    cfg: RateLimitConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    pub(crate) fn new(cfg: RateLimitConfig) -> Self {
        Self {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Take one token for `tenant`; on refusal returns the milliseconds
    /// until the next token accrues (the `retry_after_ms` hint).
    pub(crate) fn try_acquire(&self, tenant: &str) -> Result<(), u64> {
        if self.cfg.rate_per_sec.is_infinite() {
            return Ok(());
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.cfg.burst,
            last: now,
        });
        let dt = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.cfg.rate_per_sec).min(self.cfg.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let need = (1.0 - bucket.tokens) / self.cfg.rate_per_sec * 1e3;
            Err((need.ceil() as u64).clamp(1, RETRY_AFTER_MAX_MS))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(queue: usize, cost: u64) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: queue,
            cost_capacity: cost,
        }
    }

    #[test]
    fn cost_model_scales_with_query_and_database() {
        assert_eq!(estimate_cost(100, 1000), 100_000);
        assert!(estimate_cost(517, 1000) > estimate_cost(127, 1000));
        // Degenerate inputs never produce a zero-cost request.
        assert!(estimate_cost(0, 0) >= 1);
    }

    #[test]
    fn queue_capacity_bounds_each_class_independently() {
        let adm = Admission::new(cfg(2, u64::MAX));
        assert!(adm.try_admit(Priority::Interactive, 1, false).is_ok());
        assert!(adm.try_admit(Priority::Interactive, 1, false).is_ok());
        let err = adm
            .try_admit(Priority::Interactive, 1, false)
            .expect_err("third interactive must be refused");
        assert_eq!(err.category(), "overloaded");
        // The bulk class still has its own headroom.
        assert!(adm.try_admit(Priority::Bulk, 1, false).is_ok());
        // Draining a slot re-opens the class.
        adm.dequeued(Priority::Interactive);
        assert!(adm.try_admit(Priority::Interactive, 1, false).is_ok());
    }

    #[test]
    fn cost_budget_refuses_before_queue_depth_does() {
        let adm = Admission::new(cfg(100, 1000));
        assert!(adm.try_admit(Priority::Bulk, 800, false).is_ok());
        let err = adm
            .try_admit(Priority::Bulk, 300, false)
            .expect_err("over cost budget");
        match err {
            SearchError::Overloaded { retry_after_ms } => {
                assert!((RETRY_AFTER_MIN_MS..=RETRY_AFTER_MAX_MS).contains(&retry_after_ms));
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        // Completion releases the cost.
        adm.complete(800, 5.0);
        assert!(adm.try_admit(Priority::Bulk, 300, false).is_ok());
    }

    #[test]
    fn shrink_halves_both_budgets() {
        let adm = Admission::new(cfg(4, 1000));
        assert!(adm.try_admit(Priority::Bulk, 400, true).is_ok());
        // 400 + 200 > 500 (half of 1000): refused under shrink, admitted
        // at full budget.
        assert!(adm.try_admit(Priority::Bulk, 200, true).is_err());
        assert!(adm.try_admit(Priority::Bulk, 200, false).is_ok());
        // Queue side: 2 already queued = half of 4.
        assert!(adm.try_admit(Priority::Bulk, 1, true).is_err());
    }

    #[test]
    fn retry_after_tracks_the_measured_drain_rate() {
        let adm = Admission::new(cfg(2, 10_000));
        // Teach the EWMA: 1000 cells retired per ms.
        adm.try_admit(Priority::Bulk, 5000, false).expect("admit");
        adm.dequeued(Priority::Bulk);
        adm.complete(5000, 5.0);
        adm.try_admit(Priority::Bulk, 5000, false).expect("admit");
        adm.try_admit(Priority::Bulk, 5000, false)
            .expect("admit 2nd cost-wise");
        let err = adm
            .try_admit(Priority::Bulk, 5000, false)
            .expect_err("queue full");
        match err {
            SearchError::Overloaded { retry_after_ms } => {
                // 10_000 outstanding / 1000 cells-per-ms = 10 ms.
                assert!(retry_after_ms <= 100, "got {retry_after_ms}");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }

    #[test]
    fn rate_limiter_enforces_burst_then_refills() {
        let rl = RateLimiter::new(RateLimitConfig {
            rate_per_sec: 1000.0,
            burst: 2.0,
        });
        assert!(rl.try_acquire("t0").is_ok());
        assert!(rl.try_acquire("t0").is_ok());
        // Tenants are independent.
        assert!(rl.try_acquire("t1").is_ok());
        match rl.try_acquire("t0") {
            Ok(()) => {} // a slow test runner may have refilled already
            Err(ms) => assert!(ms >= 1),
        }
        // At 1000/s a token accrues within a few ms.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(rl.try_acquire("t0").is_ok());
    }

    #[test]
    fn infinite_rate_never_refuses() {
        let rl = RateLimiter::new(RateLimitConfig::default());
        for _ in 0..10_000 {
            assert!(rl.try_acquire("t").is_ok());
        }
    }
}
