//! A malformed `BENCH_SCALE` must abort the bench binaries with exit
//! code 2 before any work runs — never silently fall back to the
//! full-size workload (the failure mode this guards against: a typo in a
//! CI variable runs the unscaled benchmark and the perf gate compares
//! apples to oranges).

use std::process::Command;

fn run_with_scale(exe: &str, scale: &str) -> std::process::Output {
    Command::new(exe)
        .env("BENCH_SCALE", scale)
        // Keep the failing runs cheap and out of the repo root.
        .current_dir(std::env::temp_dir())
        .output()
        .expect("binary runs")
}

#[test]
fn hotpath_rejects_malformed_bench_scale() {
    for bad in ["O.25", "0", "-1", "nan", ""] {
        let out = run_with_scale(env!("CARGO_BIN_EXE_hotpath"), bad);
        assert_eq!(out.status.code(), Some(2), "BENCH_SCALE={bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("BENCH_SCALE"), "{err}");
        assert!(out.stdout.is_empty(), "must fail before any output");
    }
}

#[test]
fn throughput_rejects_malformed_bench_scale() {
    let out = run_with_scale(env!("CARGO_BIN_EXE_throughput"), "fast");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("BENCH_SCALE"));
}

#[test]
fn perf_gate_usage_error_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .arg("--frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn perf_gate_passes_and_fails_end_to_end() {
    let dir = std::env::temp_dir().join(format!("perf_gate_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let meas = dir.join("meas.json");
    std::fs::write(
        &base,
        "{\"phase_medians\": {\"db\": {\"hit_detection\": 1.0}}}",
    )
    .unwrap();
    std::fs::write(
        &meas,
        "{\"phase_medians\": {\"db\": {\"hit_detection\": 1.05}}}",
    )
    .unwrap();
    let run = |tol: &str| {
        Command::new(env!("CARGO_BIN_EXE_perf_gate"))
            .args([
                "--baseline",
                base.to_str().unwrap(),
                "--measured",
                meas.to_str().unwrap(),
                "--tolerance",
                tol,
            ])
            .output()
            .expect("binary runs")
    };
    // +5% regression: inside the default-ish tolerance, outside a tight one.
    let ok = run("0.15");
    assert_eq!(ok.status.code(), Some(0), "{:?}", ok);
    assert!(String::from_utf8_lossy(&ok.stdout).contains("PASS"));
    let tight = run("0.01");
    assert_eq!(tight.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&tight.stdout).contains("FAIL"));
    std::fs::remove_dir_all(&dir).ok();
}
