//! Stats-invariance contract of the flat-arena rework.
//!
//! The arena pipeline reorganized host data structures and switched the
//! functional sort to radix, but the simulated cost model is untouched:
//! for every kernel of the hit path, `KernelStats` must be *bit-identical*
//! to the pre-arena code (kept verbatim in `bench::legacy`). This is what
//! lets every figure binary keep reporting exactly the seed's numbers.

use bench::legacy;
use bench::runners::figure_config;
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::{Dfa, Matrix, Pssm, SearchParams};
use cublastp::binning::binning_kernel;
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::reorder::{assemble_kernel, filter_kernel, sort_kernel};
use gpu_sim::{DeviceConfig, KernelWorkspace};

fn assert_stats_identical(preset: DbPreset) {
    // Keep the test quick: a small slice of the preset exercises every
    // kernel with thousands of hits, which is plenty to catch any
    // divergence in the per-access accounting.
    std::env::set_var("BENCH_SCALE", "0.05");
    let device = DeviceConfig::k20c();
    let params = SearchParams::default();
    let cfg = figure_config();
    let window = params.two_hit_window as i64;
    let q = query(517);
    let m = Matrix::blosum62();
    let dq = DeviceQuery::upload(Dfa::build(&q, &m, params.threshold), Pssm::build(&q, &m));
    let db = database(preset, &q);
    let ws = KernelWorkspace::new();

    let mut blocks_checked = 0usize;
    for b in db.blocks(cfg.db_block_size) {
        let dev_block = DeviceDbBlock::upload(db.block_sequences(b), b.start);
        let (legacy_hits, [l_bin, l_asm, l_sort, l_fil]) =
            legacy::hit_path(&device, &cfg, &dq, &dev_block, window);

        let (binned, a_bin) = binning_kernel(&device, &cfg, &dq, &dev_block, &ws);
        let (mut asm, a_asm) = assemble_kernel(&device, &cfg, binned, &ws);
        let a_sort = sort_kernel(&device, &mut asm, &ws);
        let (filtered, a_fil) = filter_kernel(&device, &cfg, &asm, window, &ws);

        assert_eq!(l_bin, a_bin, "hit_detection stats diverged");
        assert_eq!(l_asm, a_asm, "hit_assembling stats diverged");
        assert_eq!(l_sort, a_sort, "hit_sorting stats diverged");
        assert_eq!(l_fil, a_fil, "hit_filtering stats diverged");
        assert_eq!(legacy_hits, filtered.hits, "surviving hits diverged");
        assert!(filtered.before > 0, "workload produced no hits");

        asm.recycle(&ws);
        filtered.recycle(&ws);
        blocks_checked += 1;
    }
    assert!(blocks_checked > 0, "preset produced no database blocks");
}

#[test]
fn swissprot_stats_bit_identical() {
    assert_stats_identical(DbPreset::SwissprotMini);
}

#[test]
fn env_nr_stats_bit_identical() {
    assert_stats_identical(DbPreset::EnvNrMini);
}
