//! Criterion benchmarks of the simulated fine-grained kernels: host-side
//! cost of driving the SIMT simulator through the paper's five kernels
//! and the three extension strategies.

use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::{Dfa, Matrix, Pssm, SearchParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cublastp::binning::binning_kernel;
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::extension::extension_kernel;
use cublastp::gpu_phase::run_gpu_phase;
use cublastp::reorder::{assemble_kernel, filter_kernel, sort_kernel};
use cublastp::{CuBlastpConfig, ExtensionStrategy};
use gpu_sim::{DeviceConfig, FaultCtx, FaultInjector, KernelWorkspace};

fn setup(seqs: usize) -> (DeviceQuery, DeviceDbBlock, SearchParams) {
    let q = make_query(517);
    let spec = DbSpec {
        name: "bench",
        num_sequences: seqs,
        mean_length: 220,
        homolog_fraction: 0.03,
        seed: 5,
    };
    let db = generate_db(&spec, &q).db;
    let m = Matrix::blosum62();
    let p = SearchParams::default();
    let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
    (dq, DeviceDbBlock::upload(db.sequences(), 0), p)
}

fn bench_binning(c: &mut Criterion) {
    let (dq, db, _) = setup(400);
    let device = DeviceConfig::k20c();
    let ws = KernelWorkspace::new();
    let mut g = c.benchmark_group("binning_kernel");
    for bins in [32usize, 128, 512] {
        let cfg = CuBlastpConfig {
            num_bins: bins,
            ..CuBlastpConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(bins), &cfg, |b, cfg| {
            b.iter(|| {
                let (binned, _) = binning_kernel(&device, cfg, &dq, &db, &ws);
                let hits = binned.total_hits;
                binned.recycle(&ws);
                hits
            });
        });
    }
    g.finish();
}

fn bench_reorder(c: &mut Criterion) {
    let (dq, db, p) = setup(400);
    let device = DeviceConfig::k20c();
    let cfg = CuBlastpConfig::default();
    let ws = KernelWorkspace::new();
    c.bench_function("assemble_sort_filter", |b| {
        b.iter(|| {
            let (binned, _) = binning_kernel(&device, &cfg, &dq, &db, &ws);
            let (mut asm, _) = assemble_kernel(&device, &cfg, binned, &ws);
            sort_kernel(&device, &mut asm, &ws);
            let (f, _) = filter_kernel(&device, &cfg, &asm, p.two_hit_window as i64, &ws);
            let n = f.hits.len();
            asm.recycle(&ws);
            f.recycle(&ws);
            n
        });
    });
}

fn bench_extension_strategies(c: &mut Criterion) {
    let (dq, db, p) = setup(400);
    let device = DeviceConfig::k20c();
    let cfg0 = CuBlastpConfig::default();
    let ws = KernelWorkspace::new();
    let (binned, _) = binning_kernel(&device, &cfg0, &dq, &db, &ws);
    let (mut asm, _) = assemble_kernel(&device, &cfg0, binned, &ws);
    sort_kernel(&device, &mut asm, &ws);
    let (filtered, _) = filter_kernel(&device, &cfg0, &asm, p.two_hit_window as i64, &ws);

    let mut g = c.benchmark_group("extension_strategy");
    for (label, strategy) in [
        ("diagonal", ExtensionStrategy::Diagonal),
        ("hit", ExtensionStrategy::Hit),
        ("window", ExtensionStrategy::Window),
    ] {
        let cfg = CuBlastpConfig {
            extension: strategy,
            ..CuBlastpConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                extension_kernel(&device, &cfg, &dq, &db, &filtered, &p)
                    .extensions
                    .len()
            });
        });
    }
    g.finish();
}

fn bench_full_gpu_phase(c: &mut Criterion) {
    let (dq, db, p) = setup(400);
    let device = DeviceConfig::k20c();
    let cfg = CuBlastpConfig::default();
    let ws = KernelWorkspace::new();
    let injector = FaultInjector::none();
    c.bench_function("gpu_phase_400seqs", |b| {
        b.iter(|| {
            run_gpu_phase(
                &device,
                &cfg,
                &dq,
                &db,
                &p,
                &ws,
                &injector,
                FaultCtx::default(),
            )
            .expect("no faults armed")
            .counts
            .extensions
        });
    });
}

criterion_group! {
    name = benches;
    // Ten samples per benchmark: the simulator is deterministic and the
    // host may be a single shared core, so large sample counts buy noise
    // reduction the workload does not need.
    config = Criterion::default().sample_size(10);
    targets = bench_binning,
    bench_reorder,
    bench_extension_strategies,
    bench_full_gpu_phase
}
criterion_main!(benches);
