//! Criterion benchmarks of the end-to-end pipelines: host wall-clock of a
//! whole search under each system (the figure binaries report *modelled*
//! device time; this measures how fast the reproduction itself runs).

use bench::runners::{
    figure_config, run_cublastp, run_cuda_blastp, run_fsa_blast, run_gpu_blastp, run_ncbi_blast,
};
use bio_seq::generate::{generate_db, make_query, DbSpec};
use blast_core::SearchParams;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipelines(c: &mut Criterion) {
    let q = make_query(127);
    let spec = DbSpec {
        name: "pipe",
        num_sequences: 300,
        mean_length: 200,
        homolog_fraction: 0.03,
        seed: 17,
    };
    let db = generate_db(&spec, &q).db;
    let p = SearchParams::default();

    let mut g = c.benchmark_group("end_to_end_search");
    g.sample_size(10);
    g.bench_function("fsa_blast", |b| b.iter(|| run_fsa_blast(&q, &db, p).hits));
    g.bench_function("ncbi_blast_4t", |b| {
        b.iter(|| run_ncbi_blast(&q, &db, p, 4).hits)
    });
    g.bench_function("cublastp", |b| {
        b.iter(|| run_cublastp(&q, &db, p, figure_config()).hits)
    });
    g.bench_function("cuda_blastp", |b| {
        b.iter(|| run_cuda_blastp(&q, &db, p).hits)
    });
    g.bench_function("gpu_blastp", |b| b.iter(|| run_gpu_blastp(&q, &db, p).hits));
    g.finish();
}

fn bench_overlap_modes(c: &mut Criterion) {
    let q = make_query(127);
    let spec = DbSpec {
        name: "ovl",
        num_sequences: 400,
        mean_length: 180,
        homolog_fraction: 0.03,
        seed: 19,
    };
    let db = generate_db(&spec, &q).db;
    let p = SearchParams::default();

    let mut g = c.benchmark_group("pipeline_overlap_host");
    g.sample_size(10);
    for overlap in [false, true] {
        let cfg = cublastp::CuBlastpConfig {
            overlap,
            db_block_size: 100,
            ..figure_config()
        };
        g.bench_function(if overlap { "overlapped" } else { "serial" }, |b| {
            b.iter(|| run_cublastp(&q, &db, p, cfg).hits)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Ten samples per benchmark: the simulator is deterministic and the
    // host may be a single shared core, so large sample counts buy noise
    // reduction the workload does not need.
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines, bench_overlap_modes
}
criterion_main!(benches);
