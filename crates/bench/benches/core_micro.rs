//! Criterion micro-benchmarks of the core BLAST machinery: the costs
//! behind the paper's phase breakdown (Fig. 11) at the component level.

use bio_seq::generate::make_query;
use blast_core::{Dfa, Matrix, Pssm, SearchParams, WordNeighborhood};
use blast_cpu::gapped::extend_gapped;
use blast_cpu::hit::{scan_subject, DiagonalScratch, HitStats};
use blast_cpu::traceback::traceback;
use blast_cpu::ungapped::{extend, UngappedExt};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_neighborhood(c: &mut Criterion) {
    let m = Matrix::blosum62();
    let mut g = c.benchmark_group("word_neighborhood_build");
    for len in [127usize, 517, 1054] {
        let q = make_query(len);
        g.bench_with_input(BenchmarkId::from_parameter(len), &q, |b, q| {
            b.iter(|| WordNeighborhood::build(q, &m, 11));
        });
    }
    g.finish();
}

fn bench_pssm(c: &mut Criterion) {
    let m = Matrix::blosum62();
    let q = make_query(517);
    c.bench_function("pssm_build_517", |b| b.iter(|| Pssm::build(&q, &m)));
}

fn bench_dfa_scan(c: &mut Criterion) {
    let m = Matrix::blosum62();
    let q = make_query(517);
    let dfa = Dfa::build(&q, &m, 11);
    let subject = make_query(2000);
    let mut g = c.benchmark_group("dfa_scan");
    g.throughput(Throughput::Elements(subject.len() as u64));
    g.bench_function("query517_subject2000", |b| {
        b.iter(|| {
            let mut n = 0u64;
            dfa.scan(subject.residues(), |_, _| n += 1);
            n
        });
    });
    g.finish();
}

fn bench_hit_detection(c: &mut Criterion) {
    let m = Matrix::blosum62();
    let q = make_query(517);
    let dfa = Dfa::build(&q, &m, 11);
    let pssm = Pssm::build(&q, &m);
    let subject = make_query(2000);
    let p = SearchParams::default();
    c.bench_function("scan_subject_two_hit_517x2000", |b| {
        let mut scratch = DiagonalScratch::new(q.len() + subject.len() + 1);
        let mut out = Vec::new();
        let mut stats = HitStats::default();
        b.iter(|| {
            out.clear();
            scan_subject(
                &dfa,
                &pssm,
                subject.residues(),
                0,
                p.two_hit_window as i64,
                p.xdrop_ungapped,
                &mut scratch,
                &mut out,
                &mut stats,
            );
            out.len()
        });
    });
}

fn bench_extensions(c: &mut Criterion) {
    let m = Matrix::blosum62();
    let q = make_query(517);
    let pssm = Pssm::build(&q, &m);
    // Subject embedding the query: extensions run long (worst case).
    let mut subj = make_query(300).residues().to_vec();
    subj.extend_from_slice(q.residues());
    subj.extend(make_query(200).residues().iter());
    let p = SearchParams::default();

    c.bench_function("ungapped_extend_homolog", |b| {
        b.iter(|| extend(&pssm, &subj, 0, 250, 550, p.xdrop_ungapped));
    });

    let seed = UngappedExt {
        seq_id: 0,
        q_start: 200,
        s_start: 500,
        len: 100,
        score: 300,
    };
    c.bench_function("gapped_extend_homolog", |b| {
        b.iter(|| extend_gapped(&pssm, &subj, &seed, &p));
    });

    let g = extend_gapped(&pssm, &subj, &seed, &p);
    c.bench_function("traceback_homolog", |b| {
        b.iter(|| traceback(&pssm, q.residues(), &subj, &g, &p));
    });
}

criterion_group! {
    name = benches;
    // Ten samples per benchmark: the simulator is deterministic and the
    // host may be a single shared core, so large sample counts buy noise
    // reduction the workload does not need.
    config = Criterion::default().sample_size(10);
    targets = bench_neighborhood,
    bench_pssm,
    bench_dfa_scan,
    bench_hit_detection,
    bench_extensions
}
criterion_main!(benches);
