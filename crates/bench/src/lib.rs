//! Figure-reproduction harness.
//!
//! One binary per figure of the paper's evaluation (§4) lives in
//! `src/bin/`; this library holds what they share: the canonical
//! workloads (the three queries and two database presets of §4), runner
//! helpers that execute each pipeline and collect the numbers, and a
//! plain-text table printer so every binary emits the same row/series
//! format EXPERIMENTS.md records.
//!
//! Scale: the env var `BENCH_SCALE` (default `1.0`) multiplies the preset
//! database sizes, so `BENCH_SCALE=0.1 cargo run -p bench --bin fig18`
//! gives a quick smoke run and the default reproduces the EXPERIMENTS.md
//! numbers exactly.

pub mod gate;
pub mod legacy;
pub mod obsenv;
pub mod runners;
pub mod table;
pub mod workloads;

pub use runners::{run_cublastp, run_cuda_blastp, run_fsa_blast, run_gpu_blastp, run_ncbi_blast};
pub use table::print_table;
pub use workloads::{bench_scale, database, parse_bench_scale, query, QUERY_LENGTHS};
