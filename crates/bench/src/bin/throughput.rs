//! Query-stream throughput: the NGS-style workload the paper's
//! introduction motivates — many queries against one database.
//!
//! Sweeps batch sizes over both database presets and reports modelled
//! queries/sec for three drivers:
//!
//! * **serial** — each query runs standalone: re-uploads the database,
//!   drains the pipeline, pays its own setup.
//! * **batched** — `search_batch`: the database is flattened once and
//!   stays device-resident; the pipeline chains across query boundaries.
//! * **parallel** — `search_batch_parallel`: additionally runs query
//!   setup (DFA/PSSM build) and searches concurrently on the shared CPU
//!   pool, so setup overlaps earlier queries' device work.
//! * **grouped** — `search_batch_with` in `SeedMode::Grouped`: queries
//!   are packed into index rounds and each database block is seeded once
//!   per round instead of once per query (see `bench --bin
//!   grouped_seeding` for the seeding-cost sweep).
//!
//! The flatten counter verifies residency: one batch flattens the
//! database once per block, independent of batch size. Results go to
//! stdout (table) and `BENCH_throughput.json` at the repo root.

use bench::obsenv;
use bench::table::{fmt, print_table};
use bench::{bench_scale, database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{
    flatten_count, search_batch, search_batch_parallel, search_batch_with, BatchOptions,
    CuBlastpConfig, SeedMode,
};
use gpu_sim::DeviceConfig;

const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Modelled host: 8 CPU threads (the throughput deployment the batch
/// engine targets; figure configs keep the paper's quad-core).
const CPU_THREADS: usize = 8;

struct Row {
    batch: usize,
    serial_qps: f64,
    batched_qps: f64,
    parallel_qps: f64,
    grouped_qps: f64,
    speedup: f64,
    flattens: u64,
    db_blocks: usize,
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let device = DeviceConfig::k20c();
    let params = SearchParams::default();
    let cfg = CuBlastpConfig {
        cpu_threads: CPU_THREADS,
        ..CuBlastpConfig::default()
    };
    let queries: Vec<_> = (0..*BATCH_SIZES.last().unwrap())
        .map(|i| query(96 + 13 * (i % 24)))
        .collect();

    let mut sections: Vec<(String, Vec<Row>)> = Vec::new();
    let mut medians: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let db = database(preset, &queries[0]);
        let mut rows = Vec::new();
        for batch in BATCH_SIZES {
            let qs = &queries[..batch];
            let s = search_batch(qs, params, cfg, device, &db);
            let before = flatten_count();
            let p = search_batch_parallel(qs, params, cfg, device, &db);
            let flattens = flatten_count() - before;
            let g = search_batch_with(
                qs,
                params,
                cfg,
                device,
                &db,
                BatchOptions {
                    seed_mode: SeedMode::Grouped,
                    ..Default::default()
                },
            );
            let db_blocks = s.per_query[0]
                .as_ref()
                .expect("fault-free batch")
                .block_timings
                .len();
            rows.push(Row {
                batch,
                // Serial baseline and speedup come from the parallel run's
                // own standalone model, so the comparison shares one set
                // of measured CPU times.
                serial_qps: batch as f64 * 1e3 / p.unbatched_ms,
                batched_qps: s.queries_per_sec(),
                parallel_qps: p.queries_per_sec(),
                grouped_qps: g.queries_per_sec(),
                speedup: p.unbatched_ms / p.batch_ms,
                flattens,
                db_blocks,
            });
            // Perf-gate medians from the largest batch: per-query
            // deterministic simulated/modelled times (host wall-clock is
            // reported in the sweep sections but never gated).
            if batch == *BATCH_SIZES.last().unwrap() {
                let results: Vec<_> = s.per_query.iter().flatten().collect();
                let med = |f: &dyn Fn(&cublastp::CuBlastpResult) -> f64| {
                    let mut xs: Vec<f64> = results.iter().map(|r| f(r)).collect();
                    obsenv::median(&mut xs)
                };
                let mut phases: Vec<(String, f64)> = vec![
                    ("gpu_ms".to_string(), med(&|r| r.timing.gpu_ms)),
                    ("h2d_ms".to_string(), med(&|r| r.timing.h2d_ms)),
                    ("d2h_ms".to_string(), med(&|r| r.timing.d2h_ms)),
                ];
                // Per-kernel simulated time, merged across each query's
                // blocks (kernel order is the pipeline order).
                if let Some(first) = results.first() {
                    for (ki, k) in first.kernels.iter().enumerate() {
                        let mut xs: Vec<f64> = results
                            .iter()
                            .filter_map(|r| r.kernels.get(ki))
                            .map(|k| k.time_ms(&device))
                            .collect();
                        phases.push((k.name.clone(), obsenv::median(&mut xs)));
                    }
                }
                medians.push((preset.spec().name.to_string(), phases));
            }
        }
        sections.push((preset.spec().name.to_string(), rows));
    }

    for (name, rows) in &sections {
        print_table(
            &format!("Query-stream throughput — {name} (modelled queries/sec, {CPU_THREADS} CPU threads)"),
            &["batch", "serial", "batched", "parallel", "grouped", "speedup", "flattens"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.batch.to_string(),
                        fmt(r.serial_qps),
                        fmt(r.batched_qps),
                        fmt(r.parallel_qps),
                        fmt(r.grouped_qps),
                        format!("{:.2}x", r.speedup),
                        format!("{} ({} blocks)", r.flattens, r.db_blocks),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    let json = render_json(&sections, &medians, scale);
    let path = "BENCH_throughput.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
}

fn render_json(
    sections: &[(String, Vec<Row>)],
    medians: &[(String, Vec<(String, f64)>)],
    scale: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"cpu_threads\": {CPU_THREADS},\n"));
    out.push_str("  \"phase_medians\": {\n");
    for (pi, (name, phases)) in medians.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{"));
        for (ki, (phase, ms)) in phases.iter().enumerate() {
            out.push_str(&format!(
                "\"{phase}\": {ms:.6}{}",
                if ki + 1 < phases.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 < medians.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (pi, (name, rows)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"db\": \"{name}\",\n"));
        out.push_str("      \"sweep\": [\n");
        for (ri, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"batch\": {}, \"serial_qps\": {:.2}, \"batched_qps\": {:.2}, \
                 \"parallel_qps\": {:.2}, \"grouped_qps\": {:.2}, \
                 \"speedup_parallel_vs_serial\": {:.2}, \
                 \"flattens\": {}, \"db_blocks\": {}}}{}\n",
                r.batch,
                r.serial_qps,
                r.batched_qps,
                r.parallel_qps,
                r.grouped_qps,
                r.speedup,
                r.flattens,
                r.db_blocks,
                if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
