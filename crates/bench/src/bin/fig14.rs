//! Fig. 14 — Execution time of the fine-grained kernels as a function of
//! the number of bins per warp (query517 × swissprot).
//!
//! The paper's claims: hit sorting and hit filtering keep improving with
//! more bins (shorter segments → fewer merge passes), but hit detection
//! degrades past 128 bins because the per-warp `top` arrays consume
//! shared memory and depress occupancy; 128 is the sweet spot overall.

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::CuBlastpConfig;
use gpu_sim::DeviceConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::SwissprotMini, &q);
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    let mut rows = Vec::new();
    for bins in [32usize, 64, 128, 256, 512] {
        let cfg = CuBlastpConfig {
            num_bins: bins,
            ..figure_config()
        };
        let (r, _) = run_cublastp_detailed(&q, &db, params, cfg);
        let k = |name: &str| r.kernel(name).map(|k| k.time_ms(&device)).unwrap_or(0.0);
        let detection = k("hit_detection");
        let sorting = k("hit_sorting");
        let filtering = k("hit_filtering");
        let total: f64 = r.kernels.iter().map(|k| k.time_ms(&device)).sum();
        rows.push(vec![
            bins.to_string(),
            fmt(detection),
            fmt(sorting),
            fmt(filtering),
            fmt(total),
            fmt(r
                .kernel("hit_detection")
                .map(|k| k.occupancy)
                .unwrap_or(0.0)),
        ]);
    }
    print_table(
        "Fig. 14 — Kernel time vs bins per warp, query517 × swissprot_mini (ms)",
        &[
            "bins/warp",
            "hit detection",
            "hit sorting",
            "hit filtering",
            "total kernels",
            "detection occupancy",
        ],
        &rows,
    );
}
