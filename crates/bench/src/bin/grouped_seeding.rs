//! Grouped-seeding amortization: the cost ISSUE the grouped engine
//! exists to attack — per-query seeding work that re-reads every
//! database block once per query.
//!
//! Sweeps batch size over both database presets, running the same batch
//! through the per-query and grouped seeding paths. For every cell the
//! two paths must produce bit-identical per-query reports (checked via
//! `identity_key`); the grouped path's telemetry then gives the
//! amortized seeding cost in simulated milliseconds per database block
//! per query. The sweep asserts that cost decreases monotonically with
//! batch size and is at least 2x lower at batch 16 than at batch 1
//! (grouped-vs-grouped — batch 1 is a singleton round paying the full
//! pass alone). Violations abort with exit code 1, so CI's perf-gate
//! job cannot silently pass a regressed grouping engine.
//!
//! Note the baseline deliberately is the singleton *grouped* round, not
//! the per-query DFA kernel: a single grouped pass probes a hashed slot
//! table through the read-only cache, which at high occupancy costs more
//! per hit than the per-query automaton — the engine wins by amortizing
//! that pass across members, not by beating the DFA one-on-one (see
//! DESIGN.md §3.6). Results go to stdout (table) and
//! `BENCH_grouped_seeding.json` at the repo root.

use bench::obsenv;
use bench::table::{fmt, print_table};
use bench::{bench_scale, database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{search_batch_with, BatchOptions, CuBlastpConfig, SeedMode};
use gpu_sim::DeviceConfig;

const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// Required amortization at the largest batch size vs the singleton
/// round (the ISSUE's acceptance threshold).
const MIN_AMORTIZATION: f64 = 2.0;

struct Row {
    batch: usize,
    rounds: usize,
    occupancy: f64,
    index_kib: f64,
    seeding_ms: f64,
    amortized: f64,
    amortization: f64,
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let device = DeviceConfig::k20c();
    let params = SearchParams::default();
    let cfg = CuBlastpConfig::default();
    // Moderate query lengths (48..=78): the regime where a group's
    // combined neighborhood still fits one index round at the default
    // budget, so batch 16 is a single 16-member round.
    let queries: Vec<_> = (0..*BATCH_SIZES.last().unwrap())
        .map(|i| query(48 + 2 * i))
        .collect();

    let mut failures = 0usize;
    let mut sections: Vec<(String, Vec<Row>)> = Vec::new();
    let mut medians: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let db = database(preset, &queries[0]);
        let name = preset.spec().name.to_string();
        let mut rows = Vec::new();
        for batch in BATCH_SIZES {
            let qs = &queries[..batch];
            let baseline = search_batch_with(qs, params, cfg, device, &db, BatchOptions::default());
            let grouped = search_batch_with(
                qs,
                params,
                cfg,
                device,
                &db,
                BatchOptions {
                    seed_mode: SeedMode::Grouped,
                    ..Default::default()
                },
            );
            for (qi, (b, g)) in baseline
                .per_query
                .iter()
                .zip(grouped.per_query.iter())
                .enumerate()
            {
                let (b, g) = match (b, g) {
                    (Ok(b), Ok(g)) => (b, g),
                    _ => {
                        eprintln!("error: {name} batch {batch} query {qi}: search failed");
                        failures += 1;
                        continue;
                    }
                };
                if b.report.identity_key() != g.report.identity_key() {
                    eprintln!(
                        "error: {name} batch {batch} query {qi}: grouped output \
                         diverges from per-query seeding"
                    );
                    failures += 1;
                }
            }
            let Some(report) = grouped.grouped.as_ref() else {
                eprintln!("error: {name} batch {batch}: grouped run returned no telemetry");
                failures += 1;
                continue;
            };
            if report.queries_covered() != batch {
                eprintln!(
                    "error: {name} batch {batch}: rounds cover {} queries",
                    report.queries_covered()
                );
                failures += 1;
            }
            let occupancy = if report.rounds.is_empty() {
                0.0
            } else {
                report.rounds.iter().map(|r| r.occupancy).sum::<f64>() / report.rounds.len() as f64
            };
            let index_bytes: u64 = report.rounds.iter().map(|r| r.index_upload_bytes).sum();
            rows.push(Row {
                batch,
                rounds: report.rounds.len(),
                occupancy,
                index_kib: index_bytes as f64 / 1024.0,
                seeding_ms: report.total_seeding_ms(),
                amortized: report.seeding_ms_per_block_query(),
                amortization: 1.0, // filled against the batch-1 row below
            });
        }

        let base = rows.first().map(|r| r.amortized).unwrap_or(0.0);
        for r in &mut rows {
            r.amortization = if r.amortized > 0.0 {
                base / r.amortized
            } else {
                0.0
            };
        }
        for pair in rows.windows(2) {
            if pair[1].amortized > pair[0].amortized {
                eprintln!(
                    "error: {name}: amortized seeding cost rose from {:.6} ms \
                     (batch {}) to {:.6} ms (batch {})",
                    pair[0].amortized, pair[0].batch, pair[1].amortized, pair[1].batch
                );
                failures += 1;
            }
        }
        if let Some(last) = rows.last() {
            if last.amortization < MIN_AMORTIZATION {
                eprintln!(
                    "error: {name}: batch {} amortizes seeding only {:.2}x vs \
                     batch 1 (need >= {MIN_AMORTIZATION}x)",
                    last.batch, last.amortization
                );
                failures += 1;
            }
        }

        let phases: Vec<(String, f64)> = rows
            .iter()
            .map(|r| (format!("amortized_b{}", r.batch), r.amortized))
            .collect();
        medians.push((name.clone(), phases));
        sections.push((name, rows));
    }

    for (name, rows) in &sections {
        print_table(
            &format!("Grouped seeding amortization — {name} (simulated ms, k20c)"),
            &[
                "batch",
                "rounds",
                "occupancy",
                "index KiB",
                "seeding ms",
                "ms/block/query",
                "vs batch 1",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.batch.to_string(),
                        r.rounds.to_string(),
                        format!("{:.3}", r.occupancy),
                        fmt(r.index_kib),
                        fmt(r.seeding_ms),
                        format!("{:.5}", r.amortized),
                        format!("{:.2}x", r.amortization),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    let json = render_json(&sections, &medians, scale);
    let path = "BENCH_grouped_seeding.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
    if failures > 0 {
        eprintln!("error: {failures} grouped-seeding check(s) failed");
        std::process::exit(1);
    }
}

fn render_json(
    sections: &[(String, Vec<Row>)],
    medians: &[(String, Vec<(String, f64)>)],
    scale: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"grouped_seeding\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"phase_medians\": {\n");
    for (pi, (name, phases)) in medians.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{"));
        for (ki, (phase, ms)) in phases.iter().enumerate() {
            out.push_str(&format!(
                "\"{phase}\": {ms:.6}{}",
                if ki + 1 < phases.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 < medians.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (pi, (name, rows)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"db\": \"{name}\",\n"));
        out.push_str("      \"sweep\": [\n");
        for (ri, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"batch\": {}, \"rounds\": {}, \"occupancy\": {:.4}, \
                 \"index_kib\": {:.2}, \"seeding_ms\": {:.4}, \
                 \"seeding_ms_per_block_query\": {:.6}, \
                 \"amortization_vs_batch1\": {:.3}}}{}\n",
                r.batch,
                r.rounds,
                r.occupancy,
                r.index_kib,
                r.seeding_ms,
                r.amortized,
                r.amortization,
                if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
