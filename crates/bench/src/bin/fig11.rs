//! Fig. 11 — Time breakdown for query517 on the swissprot database:
//! FSA-BLAST vs cuBLASTP with 1 CPU thread vs cuBLASTP with 4 CPU threads.
//!
//! The paper's claims to reproduce: FSA-BLAST spends ~80 % in hit
//! detection + ungapped extension; the fine-grained GPU kernels shrink
//! that share dramatically, making gapped extension and traceback the new
//! bottleneck; adding CPU threads then shrinks those.

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, pct, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use blast_cpu::search::{search_sequential, SearchEngine};
use cublastp::CuBlastpConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::SwissprotMini, &q);
    let params = SearchParams::default();

    let mut rows: Vec<Vec<String>> = Vec::new();

    // FSA-BLAST.
    let engine = SearchEngine::new(q.clone(), params, &db);
    let fsa = search_sequential(&engine, &db);
    let t = &fsa.times;
    let total = t.total().as_secs_f64() * 1e3;
    rows.push(vec![
        "FSA-BLAST".into(),
        fmt(t.hit_ungapped.as_secs_f64() * 1e3),
        fmt(t.gapped.as_secs_f64() * 1e3),
        fmt(t.traceback.as_secs_f64() * 1e3),
        fmt(t.other.as_secs_f64() * 1e3),
        fmt(total),
        pct(t.hit_ungapped.as_secs_f64() * 1e3 / total),
        pct(t.gapped.as_secs_f64() * 1e3 / total),
        pct(t.traceback.as_secs_f64() * 1e3 / total),
    ]);

    // cuBLASTP with 1 and 4 CPU threads (no overlap: the figure shows the
    // phase costs themselves).
    for threads in [1usize, 4] {
        let cfg = CuBlastpConfig {
            cpu_threads: threads,
            overlap: false,
            ..figure_config()
        };
        let (r, _) = run_cublastp_detailed(&q, &db, params, cfg);
        let ti = &r.timing;
        let total =
            ti.gpu_ms + ti.gapped_ms + ti.traceback_ms + ti.other_ms + ti.h2d_ms + ti.d2h_ms;
        rows.push(vec![
            format!("cuBLASTP w/{threads}CPU"),
            fmt(ti.gpu_ms),
            fmt(ti.gapped_ms),
            fmt(ti.traceback_ms),
            fmt(ti.other_ms + ti.h2d_ms + ti.d2h_ms),
            fmt(total),
            pct(ti.gpu_ms / total),
            pct(ti.gapped_ms / total),
            pct(ti.traceback_ms / total),
        ]);
    }

    print_table(
        "Fig. 11 — Time breakdown, query517 × swissprot_mini (ms)",
        &[
            "system",
            "hit+ungapped",
            "gapped",
            "traceback",
            "other",
            "total",
            "%hit+ung",
            "%gapped",
            "%traceback",
        ],
        &rows,
    );
}
