//! `perf_gate` — the CI perf-regression gate.
//!
//! Compares a bench run's `phase_medians` (deterministic simulated times)
//! against a committed baseline:
//!
//! ```text
//! perf_gate --baseline ci/baselines/hotpath.json \
//!           --measured BENCH_hotpath.json [--tolerance 0.15]
//! perf_gate --baseline ci/baselines/hotpath.json \
//!           --measured BENCH_hotpath.json --update
//! ```
//!
//! Exit codes: 0 gate passed, 1 gate failed (regression or missing
//! phase), 2 usage / I/O / parse error. `--update` copies the measured
//! report over the baseline instead of comparing (for refreshing
//! committed baselines after an intentional change).

use bench::gate;
use std::process::ExitCode;

struct Opts {
    baseline: String,
    measured: String,
    tolerance: f64,
    update: bool,
}

const USAGE: &str =
    "usage: perf_gate --baseline <file> --measured <file> [--tolerance <frac>] [--update]";

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut baseline = None;
    let mut measured = None;
    let mut tolerance = 0.15;
    let mut update = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(argv.next().ok_or("--baseline needs a value")?),
            "--measured" => measured = Some(argv.next().ok_or("--measured needs a value")?),
            "--tolerance" => {
                let raw = argv.next().ok_or("--tolerance needs a value")?;
                tolerance = raw
                    .parse()
                    .map_err(|_| format!("--tolerance {raw:?} is not a number"))?;
                if !(0.0..10.0).contains(&tolerance) {
                    return Err(format!("--tolerance {raw:?} out of range [0, 10)"));
                }
            }
            "--update" => update = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(Opts {
        baseline: baseline.ok_or("missing --baseline <file>")?,
        measured: measured.ok_or("missing --measured <file>")?,
        tolerance,
        update,
    })
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let measured = match std::fs::read_to_string(&opts.measured) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.measured);
            return ExitCode::from(2);
        }
    };
    if opts.update {
        // Refuse to promote a report the gate could never check.
        if let Err(e) = gate::compare(&measured, &measured, opts.tolerance) {
            eprintln!("error: refusing to update baseline: {e}");
            return ExitCode::from(2);
        }
        if let Some(dir) = std::path::Path::new(&opts.baseline).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        return match std::fs::write(&opts.baseline, &measured) {
            Ok(()) => {
                println!("baseline updated: {}", opts.baseline);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {}: {e}", opts.baseline);
                ExitCode::from(2)
            }
        };
    }
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.baseline);
            return ExitCode::from(2);
        }
    };
    match gate::compare(&baseline, &measured, opts.tolerance) {
        Ok(c) => {
            print!("{}", gate::render(&c, opts.tolerance));
            if c.passed() {
                println!("perf gate: PASS ({} vs {})", opts.measured, opts.baseline);
                ExitCode::SUCCESS
            } else {
                println!("perf gate: FAIL ({} vs {})", opts.measured, opts.baseline);
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
