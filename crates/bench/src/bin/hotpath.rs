//! Host wall-clock of the hit path — flat arena vs the pre-arena code.
//!
//! The simulator's cost model is deterministic, so the arena rework's
//! *simulated* figures are bit-identical by contract (held in
//! `tests/hotpath_stats.rs`). What the rework actually buys is host time:
//! the simulator is driven by real host code, and the ragged
//! `Vec<Vec<u64>>` bins, Mutex collectors and flatten-concat copies of
//! the old path were pure overhead. This binary measures that directly:
//! hit detection → assembling → sorting → filtering over every database
//! block, legacy vs arena, at batch sizes 1 and 16 (the batch amortizes
//! the workspace's cold allocations exactly as `search_batch` does).
//!
//! Both paths must produce identical surviving hits — asserted per block.
//! Results go to stdout and `BENCH_hotpath.json`.

use bench::legacy;
use bench::obsenv;
use bench::runners::figure_config;
use bench::table::print_table;
use bench::{bench_scale, database, query};
use bio_seq::generate::DbPreset;
use blast_core::{Dfa, Matrix, Pssm, SearchParams};
use cublastp::binning::binning_kernel;
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::reorder::{assemble_kernel, filter_kernel, sort_kernel};
use cublastp::CuBlastpConfig;
use gpu_sim::{DeviceConfig, KernelWorkspace};
use std::time::Instant;

const BATCHES: [usize; 2] = [1, 16];
/// Timed repetitions per cell; the best run is reported (the host may be
/// a shared core, and the minimum is the least noisy location estimate
/// for a deterministic workload).
const REPS: usize = 3;
/// Repetitions for the observability A/B; more than [`REPS`] because the
/// quantity under test (a disarmed span's cost, one relaxed atomic load)
/// is far below the run-to-run noise floor and needs a tight minimum.
const AB_REPS: usize = 9;

struct Row {
    batch: usize,
    legacy_ms: f64,
    arena_ms: f64,
    speedup: f64,
}

fn legacy_batch(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    dq: &DeviceQuery,
    blocks: &[DeviceDbBlock],
    window: i64,
    batch: usize,
) -> (f64, u64) {
    let t0 = Instant::now();
    let mut survivors = 0u64;
    for _ in 0..batch {
        for block in blocks {
            let (binned, _) = legacy::binning_kernel(device, cfg, dq, block);
            let (mut asm, _) = legacy::assemble_kernel(device, cfg, binned);
            legacy::sort_kernel(device, &mut asm);
            let (filtered, _) = legacy::filter_kernel(device, cfg, &asm, window);
            survivors += filtered.hits.len() as u64;
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, survivors)
}

fn arena_batch(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    dq: &DeviceQuery,
    blocks: &[DeviceDbBlock],
    window: i64,
    batch: usize,
) -> (f64, u64) {
    let ws = KernelWorkspace::new();
    let t0 = Instant::now();
    let mut survivors = 0u64;
    for _ in 0..batch {
        for block in blocks {
            let (binned, _) = binning_kernel(device, cfg, dq, block, &ws);
            let (mut asm, _) = assemble_kernel(device, cfg, binned, &ws);
            sort_kernel(device, &mut asm, &ws);
            let (filtered, _) = filter_kernel(device, cfg, &asm, window, &ws);
            survivors += filtered.hits.len() as u64;
            asm.recycle(&ws);
            filtered.recycle(&ws);
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, survivors)
}

/// The arena batch with the same per-kernel span instrumentation the
/// search pipeline carries — the A/B subject for the disarmed-overhead
/// contract (a disarmed span must cost one relaxed atomic load).
fn arena_batch_spanned(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    dq: &DeviceQuery,
    blocks: &[DeviceDbBlock],
    window: i64,
    batch: usize,
) -> (f64, u64) {
    let ws = KernelWorkspace::new();
    let t0 = Instant::now();
    let mut survivors = 0u64;
    for _ in 0..batch {
        for (bi, block) in blocks.iter().enumerate() {
            let bi = bi as u32;
            let mut s = obs::span("hit_detection", "kernel").with_block(bi);
            let (binned, k) = binning_kernel(device, cfg, dq, block, &ws);
            s.set_arg("sim_ms", k.time_ms(device));
            drop(s);
            let mut s = obs::span("hit_assembling", "kernel").with_block(bi);
            let (mut asm, k) = assemble_kernel(device, cfg, binned, &ws);
            s.set_arg("sim_ms", k.time_ms(device));
            drop(s);
            let mut s = obs::span("hit_sorting", "kernel").with_block(bi);
            let k = sort_kernel(device, &mut asm, &ws);
            s.set_arg("sim_ms", k.time_ms(device));
            drop(s);
            let mut s = obs::span("hit_filtering", "kernel").with_block(bi);
            let (filtered, k) = filter_kernel(device, cfg, &asm, window, &ws);
            s.set_arg("sim_ms", k.time_ms(device));
            drop(s);
            survivors += filtered.hits.len() as u64;
            asm.recycle(&ws);
            filtered.recycle(&ws);
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, survivors)
}

struct ObsRow {
    preset: String,
    plain_ms: f64,
    disarmed_ms: f64,
    armed_ms: f64,
    overhead_pct: f64,
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let device = DeviceConfig::k20c();
    let params = SearchParams::default();
    let cfg = figure_config();
    let window = params.two_hit_window as i64;
    let q = query(517);
    let m = Matrix::blosum62();
    let dq = DeviceQuery::upload(Dfa::build(&q, &m, params.threshold), Pssm::build(&q, &m));

    let mut sections: Vec<(String, Vec<Row>)> = Vec::new();
    let mut medians: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    let mut obs_rows: Vec<ObsRow> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let db = database(preset, &q);
        let blocks: Vec<DeviceDbBlock> = db
            .blocks(cfg.db_block_size)
            .into_iter()
            .map(|b| DeviceDbBlock::upload(db.block_sequences(b), b.start))
            .collect();

        // Functional identity: both paths keep exactly the same hits.
        // The same pass collects per-block simulated kernel times for the
        // perf-gate medians (deterministic for a given BENCH_SCALE).
        let ws = KernelWorkspace::new();
        let mut sim: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for block in &blocks {
            let (legacy_hits, _) = legacy::hit_path(&device, &cfg, &dq, block, window);
            let (binned, k0) = binning_kernel(&device, &cfg, &dq, block, &ws);
            let (mut asm, k1) = assemble_kernel(&device, &cfg, binned, &ws);
            let k2 = sort_kernel(&device, &mut asm, &ws);
            let (filtered, k3) = filter_kernel(&device, &cfg, &asm, window, &ws);
            assert_eq!(
                legacy_hits, filtered.hits,
                "arena path must keep exactly the legacy survivors"
            );
            asm.recycle(&ws);
            filtered.recycle(&ws);
            for (acc, k) in sim.iter_mut().zip([&k0, &k1, &k2, &k3]) {
                acc.push(k.time_ms(&device));
            }
        }
        medians.push((
            preset.spec().name.to_string(),
            [
                "hit_detection",
                "hit_assembling",
                "hit_sorting",
                "hit_filtering",
            ]
            .into_iter()
            .zip(sim.iter_mut().map(|xs| obsenv::median(xs)))
            .collect(),
        ));

        let mut rows = Vec::new();
        for batch in BATCHES {
            let mut legacy_ms = f64::INFINITY;
            let mut arena_ms = f64::INFINITY;
            for _ in 0..REPS {
                let (lms, ln) = legacy_batch(&device, &cfg, &dq, &blocks, window, batch);
                let (ams, an) = arena_batch(&device, &cfg, &dq, &blocks, window, batch);
                assert_eq!(ln, an, "survivor counts must match");
                legacy_ms = legacy_ms.min(lms);
                arena_ms = arena_ms.min(ams);
            }
            rows.push(Row {
                batch,
                legacy_ms,
                arena_ms,
                speedup: legacy_ms / arena_ms,
            });
        }

        // Observability A/B at the largest batch: the plain loop (no
        // spans compiled in), the instrumented loop disarmed, and the
        // instrumented loop fully armed. Disarmed-vs-plain is the
        // overhead contract; armed is informational. The three variants
        // are interleaved within each rep so slow drift (thermal, cache
        // pressure) hits all of them alike, and best-of filters the rest.
        let ab_batch = *BATCHES.last().unwrap();
        let was_tracing = obs::tracing_enabled();
        let was_metrics = obs::metrics_enabled();
        let mut plain_ms = f64::INFINITY;
        let mut disarmed_ms = f64::INFINITY;
        let mut armed_ms = f64::INFINITY;
        let mut paired_pct: Vec<f64> = Vec::new();
        obs::disarm();
        // One untimed warmup so the first timed variant does not absorb
        // the cold caches left by the preceding sweep.
        let _ = arena_batch(&device, &cfg, &dq, &blocks, window, ab_batch);
        for _ in 0..AB_REPS {
            obs::disarm();
            let (p_ms, _) = arena_batch(&device, &cfg, &dq, &blocks, window, ab_batch);
            plain_ms = plain_ms.min(p_ms);
            let (d_ms, _) = arena_batch_spanned(&device, &cfg, &dq, &blocks, window, ab_batch);
            disarmed_ms = disarmed_ms.min(d_ms);
            paired_pct.push(100.0 * (d_ms - p_ms) / p_ms);
            obs::arm(true, true);
            let (a_ms, _) = arena_batch_spanned(&device, &cfg, &dq, &blocks, window, ab_batch);
            armed_ms = armed_ms.min(a_ms);
        }
        // Restore the env-requested state. The armed runs' spans stay in
        // the trace buffer, so a TRACE_OUT trace shows the A/B itself;
        // without TRACE_OUT the buffer is dropped below.
        obs::arm(was_tracing, was_metrics);
        if !was_tracing {
            obs::take_trace();
        }
        // Two noise-robust views of the same question: the gap between
        // the noise floors (best-of minimums), cross-checked against the
        // median of per-rep paired ratios (drift-cancelling). Report the
        // smaller in magnitude — both estimate a cost that is truly one
        // relaxed atomic load per span, nanoseconds against a
        // hundreds-of-ms workload, so any large reading is noise.
        let floor_pct = 100.0 * (disarmed_ms - plain_ms) / plain_ms;
        let paired = obsenv::median(&mut paired_pct);
        let overhead_pct = if floor_pct.abs() <= paired.abs() {
            floor_pct
        } else {
            paired
        };
        obs_rows.push(ObsRow {
            preset: preset.spec().name.to_string(),
            plain_ms,
            disarmed_ms,
            armed_ms,
            overhead_pct,
        });

        sections.push((preset.spec().name.to_string(), rows));
    }

    for (name, rows) in &sections {
        print_table(
            &format!("Hit-path host wall-clock — query517 × {name} (ms, best of {REPS})"),
            &["batch", "legacy", "arena", "speedup"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.batch.to_string(),
                        format!("{:.2}", r.legacy_ms),
                        format!("{:.2}", r.arena_ms),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    print_table(
        &format!(
            "Observability overhead — arena hit path, batch {} (ms, best of {AB_REPS})",
            BATCHES.last().unwrap()
        ),
        &["db", "plain", "disarmed", "armed", "disarmed overhead"],
        &obs_rows
            .iter()
            .map(|r| {
                vec![
                    r.preset.clone(),
                    format!("{:.2}", r.plain_ms),
                    format!("{:.2}", r.disarmed_ms),
                    format!("{:.2}", r.armed_ms),
                    format!("{:+.2}%", r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json = render_json(&sections, &medians, &obs_rows, scale);
    let path = "BENCH_hotpath.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
}

fn render_json(
    sections: &[(String, Vec<Row>)],
    medians: &[(String, Vec<(&'static str, f64)>)],
    obs_rows: &[ObsRow],
    scale: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str("  \"query\": 517,\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"kernels\": \"hit_detection..hit_filtering\",\n");
    out.push_str("  \"phase_medians\": {\n");
    for (pi, (name, kernels)) in medians.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{"));
        for (ki, (kernel, ms)) in kernels.iter().enumerate() {
            out.push_str(&format!(
                "\"{kernel}\": {ms:.6}{}",
                if ki + 1 < kernels.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 < medians.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"obs_overhead\": [\n");
    for (ri, r) in obs_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"db\": \"{}\", \"plain_ms\": {:.3}, \"disarmed_ms\": {:.3}, \
             \"armed_ms\": {:.3}, \"disarmed_overhead_pct\": {:.3}}}{}\n",
            r.preset,
            r.plain_ms,
            r.disarmed_ms,
            r.armed_ms,
            r.overhead_pct,
            if ri + 1 < obs_rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"presets\": [\n");
    for (pi, (name, rows)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"db\": \"{name}\",\n"));
        out.push_str("      \"sweep\": [\n");
        for (ri, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"batch\": {}, \"legacy_ms\": {:.3}, \"arena_ms\": {:.3}, \
                 \"speedup\": {:.3}}}{}\n",
                r.batch,
                r.legacy_ms,
                r.arena_ms,
                r.speedup,
                if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
