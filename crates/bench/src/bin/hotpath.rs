//! Host wall-clock of the hit path — flat arena vs the pre-arena code.
//!
//! The simulator's cost model is deterministic, so the arena rework's
//! *simulated* figures are bit-identical by contract (held in
//! `tests/hotpath_stats.rs`). What the rework actually buys is host time:
//! the simulator is driven by real host code, and the ragged
//! `Vec<Vec<u64>>` bins, Mutex collectors and flatten-concat copies of
//! the old path were pure overhead. This binary measures that directly:
//! hit detection → assembling → sorting → filtering over every database
//! block, legacy vs arena, at batch sizes 1 and 16 (the batch amortizes
//! the workspace's cold allocations exactly as `search_batch` does).
//!
//! Both paths must produce identical surviving hits — asserted per block.
//! Results go to stdout and `BENCH_hotpath.json`.

use bench::legacy;
use bench::runners::figure_config;
use bench::table::print_table;
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::{Dfa, Matrix, Pssm, SearchParams};
use cublastp::binning::binning_kernel;
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::reorder::{assemble_kernel, filter_kernel, sort_kernel};
use cublastp::CuBlastpConfig;
use gpu_sim::{DeviceConfig, KernelWorkspace};
use std::time::Instant;

const BATCHES: [usize; 2] = [1, 16];
/// Timed repetitions per cell; the best run is reported (the host may be
/// a shared core, and the minimum is the least noisy location estimate
/// for a deterministic workload).
const REPS: usize = 3;

struct Row {
    batch: usize,
    legacy_ms: f64,
    arena_ms: f64,
    speedup: f64,
}

fn legacy_batch(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    dq: &DeviceQuery,
    blocks: &[DeviceDbBlock],
    window: i64,
    batch: usize,
) -> (f64, u64) {
    let t0 = Instant::now();
    let mut survivors = 0u64;
    for _ in 0..batch {
        for block in blocks {
            let (binned, _) = legacy::binning_kernel(device, cfg, dq, block);
            let (mut asm, _) = legacy::assemble_kernel(device, cfg, binned);
            legacy::sort_kernel(device, &mut asm);
            let (filtered, _) = legacy::filter_kernel(device, cfg, &asm, window);
            survivors += filtered.hits.len() as u64;
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, survivors)
}

fn arena_batch(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    dq: &DeviceQuery,
    blocks: &[DeviceDbBlock],
    window: i64,
    batch: usize,
) -> (f64, u64) {
    let ws = KernelWorkspace::new();
    let t0 = Instant::now();
    let mut survivors = 0u64;
    for _ in 0..batch {
        for block in blocks {
            let (binned, _) = binning_kernel(device, cfg, dq, block, &ws);
            let (mut asm, _) = assemble_kernel(device, cfg, binned, &ws);
            sort_kernel(device, &mut asm, &ws);
            let (filtered, _) = filter_kernel(device, cfg, &asm, window, &ws);
            survivors += filtered.hits.len() as u64;
            asm.recycle(&ws);
            filtered.recycle(&ws);
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, survivors)
}

fn main() {
    let device = DeviceConfig::k20c();
    let params = SearchParams::default();
    let cfg = figure_config();
    let window = params.two_hit_window as i64;
    let q = query(517);
    let m = Matrix::blosum62();
    let dq = DeviceQuery::upload(Dfa::build(&q, &m, params.threshold), Pssm::build(&q, &m));

    let mut sections: Vec<(String, Vec<Row>)> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let db = database(preset, &q);
        let blocks: Vec<DeviceDbBlock> = db
            .blocks(cfg.db_block_size)
            .into_iter()
            .map(|b| DeviceDbBlock::upload(db.block_sequences(b), b.start))
            .collect();

        // Functional identity: both paths keep exactly the same hits.
        let ws = KernelWorkspace::new();
        for block in &blocks {
            let (legacy_hits, _) = legacy::hit_path(&device, &cfg, &dq, block, window);
            let (binned, _) = binning_kernel(&device, &cfg, &dq, block, &ws);
            let (mut asm, _) = assemble_kernel(&device, &cfg, binned, &ws);
            sort_kernel(&device, &mut asm, &ws);
            let (filtered, _) = filter_kernel(&device, &cfg, &asm, window, &ws);
            assert_eq!(
                legacy_hits, filtered.hits,
                "arena path must keep exactly the legacy survivors"
            );
            asm.recycle(&ws);
            filtered.recycle(&ws);
        }

        let mut rows = Vec::new();
        for batch in BATCHES {
            let mut legacy_ms = f64::INFINITY;
            let mut arena_ms = f64::INFINITY;
            for _ in 0..REPS {
                let (lms, ln) = legacy_batch(&device, &cfg, &dq, &blocks, window, batch);
                let (ams, an) = arena_batch(&device, &cfg, &dq, &blocks, window, batch);
                assert_eq!(ln, an, "survivor counts must match");
                legacy_ms = legacy_ms.min(lms);
                arena_ms = arena_ms.min(ams);
            }
            rows.push(Row {
                batch,
                legacy_ms,
                arena_ms,
                speedup: legacy_ms / arena_ms,
            });
        }
        sections.push((preset.spec().name.to_string(), rows));
    }

    for (name, rows) in &sections {
        print_table(
            &format!("Hit-path host wall-clock — query517 × {name} (ms, best of {REPS})"),
            &["batch", "legacy", "arena", "speedup"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.batch.to_string(),
                        format!("{:.2}", r.legacy_ms),
                        format!("{:.2}", r.arena_ms),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    let json = render_json(&sections);
    let path = "BENCH_hotpath.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn render_json(sections: &[(String, Vec<Row>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str("  \"query\": 517,\n");
    out.push_str("  \"kernels\": \"hit_detection..hit_filtering\",\n");
    out.push_str("  \"presets\": [\n");
    for (pi, (name, rows)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"db\": \"{name}\",\n"));
        out.push_str("      \"sweep\": [\n");
        for (ri, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"batch\": {}, \"legacy_ms\": {:.3}, \"arena_ms\": {:.3}, \
                 \"speedup\": {:.3}}}{}\n",
                r.batch,
                r.legacy_ms,
                r.arena_ms,
                r.speedup,
                if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
