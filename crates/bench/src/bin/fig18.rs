//! Fig. 18 — Speedup of cuBLASTP over FSA-BLAST (a–b), NCBI-BLAST with
//! four threads (c–d), CUDA-BLASTP (e–f) and GPU-BLASTP (g–h), for both
//! the critical phases (hit detection + ungapped extension) and overall
//! performance, across the three queries and both databases.
//!
//! Expected shape (paper): vs FSA-BLAST up to 7.9× critical / 6× overall;
//! vs NCBI-BLAST(4t) up to 3.1× / 3.4×; vs CUDA-BLASTP up to 2.9× / 2.8×;
//! vs GPU-BLASTP up to 1.6× / 1.9×. Absolute ratios depend on the
//! simulator's cycle calibration; orderings and rough magnitudes are the
//! reproduction target.

use bench::runners::{
    figure_config, run_cublastp, run_cuda_blastp, run_fsa_blast, run_gpu_blastp, run_ncbi_blast,
};
use bench::table::{fmt, print_table};
use bench::{database, query, QUERY_LENGTHS};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;

fn main() {
    let params = SearchParams::default();
    let presets = [DbPreset::SwissprotMini, DbPreset::EnvNrMini];

    // Collect every system's numbers per (query, db).
    struct Cell {
        critical: Vec<f64>, // [fsa, ncbi, cuda, gpub] / cublastp
        overall: Vec<f64>,
    }
    let mut cells: Vec<(String, String, Cell)> = Vec::new();

    // CPU-side times are wall-clock and noisy on small hosts: take the
    // per-field median of three runs per system.
    fn median3(runs: Vec<bench::runners::RunSummary>) -> bench::runners::RunSummary {
        let field = |get: &dyn Fn(&bench::runners::RunSummary) -> f64| {
            let mut vals: Vec<f64> = runs.iter().map(get).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals[1]
        };
        let mut out = runs[0].clone();
        out.critical_ms = field(&|r| r.critical_ms);
        out.overall_ms = field(&|r| r.overall_ms);
        out
    }

    for preset in presets {
        for len in QUERY_LENGTHS {
            let q = query(len);
            let db = database(preset, &q);
            let rep = |f: &dyn Fn() -> bench::runners::RunSummary| median3(vec![f(), f(), f()]);
            let cu = rep(&|| run_cublastp(&q, &db, params, figure_config()));
            let others = [
                rep(&|| run_fsa_blast(&q, &db, params)),
                rep(&|| run_ncbi_blast(&q, &db, params, 4)),
                rep(&|| run_cuda_blastp(&q, &db, params)),
                rep(&|| run_gpu_blastp(&q, &db, params)),
            ];
            for o in &others {
                assert_eq!(
                    o.identity,
                    cu.identity,
                    "{} output differs from cuBLASTP on query{len} × {}",
                    o.name,
                    preset.name()
                );
            }
            cells.push((
                format!("query{len}"),
                preset.name().to_string(),
                Cell {
                    critical: others
                        .iter()
                        .map(|o| o.critical_ms / cu.critical_ms)
                        .collect(),
                    overall: others
                        .iter()
                        .map(|o| o.overall_ms / cu.overall_ms)
                        .collect(),
                },
            ));
            eprintln!("done: query{len} × {}", preset.name());
        }
    }

    let panels = [
        ("(a/b) vs FSA-BLAST", 0usize),
        ("(c/d) vs NCBI-BLAST(4t)", 1),
        ("(e/f) vs CUDA-BLASTP", 2),
        ("(g/h) vs GPU-BLASTP", 3),
    ];
    for (label, idx) in panels {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|(qn, dbn, c)| {
                vec![
                    qn.clone(),
                    dbn.clone(),
                    fmt(c.critical[idx]),
                    fmt(c.overall[idx]),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 18 {label} — speedup of cuBLASTP (×)"),
            &["query", "database", "critical phases", "overall"],
            &rows,
        );
    }
}
