//! Fig. 13 — Strong scaling of gapped extension and alignment with
//! traceback on the multicore CPU (§3.6), for query517 on swissprot.
//!
//! The reproduction environment may expose a single core (the reference
//! container does), so the multicore wall-clock comes from the calibrated
//! scaling model in `blast_cpu::search::modeled_parallel_speedup` applied
//! to a *measured* single-thread CPU-phase time; the threaded
//! implementation itself is real and its output is verified identical at
//! every thread count by the equivalence tests. On a genuine multicore
//! host the model tracks the measured curve (paper: ≈ 1 / 1.8 / 3.3).

use bench::runners::figure_config;
use bench::table::{fmt, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig};
use gpu_sim::DeviceConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::SwissprotMini, &q);
    let params = SearchParams::default();

    // Measure the serial CPU phase (median of 5 runs).
    let cfg = CuBlastpConfig {
        cpu_threads: 1,
        overlap: false,
        ..figure_config()
    };
    let searcher = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db);
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            searcher
                .search(&db)
                .expect("fault-free search")
                .timing
                .cpu_wall_ms
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let base = samples[2];

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let speedup = blast_cpu::search::modeled_parallel_speedup(threads);
        rows.push(vec![threads.to_string(), fmt(base / speedup), fmt(speedup)]);
    }
    print_table(
        "Fig. 13 — Strong scaling of gapped extension + traceback, query517 × swissprot_mini",
        &["threads", "cpu phase (ms)", "speedup"],
        &rows,
    );
    println!("(paper measures ≈ 1 / 1.8 / 3.3 on a quad-core Sandy Bridge)");
}
