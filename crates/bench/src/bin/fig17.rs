//! Fig. 17 — Kernel execution time with and without routing the DFA
//! query-position lists through the Kepler read-only cache (§3.5,
//! Fig. 10): hierarchical buffering must always help.

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, pct, print_table};
use bench::{database, query, QUERY_LENGTHS};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::CuBlastpConfig;
use gpu_sim::DeviceConfig;

fn main() {
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    let mut rows = Vec::new();
    for len in QUERY_LENGTHS {
        let q = query(len);
        let db = database(DbPreset::SwissprotMini, &q);
        let mut cells = vec![format!("query{len}")];
        let mut hit_rate = String::new();
        for cache in [false, true] {
            let cfg = CuBlastpConfig {
                use_readonly_cache: cache,
                ..figure_config()
            };
            let (r, _) = run_cublastp_detailed(&q, &db, params, cfg);
            let total: f64 = r.kernels.iter().map(|k| k.time_ms(&device)).sum();
            cells.push(fmt(total));
            if cache {
                hit_rate = pct(r
                    .kernel("hit_detection")
                    .map(|k| k.rocache_hit_rate())
                    .unwrap_or(0.0));
            }
        }
        cells.push(hit_rate);
        rows.push(cells);
    }
    print_table(
        "Fig. 17 — Total kernel time without / with the read-only cache (ms)",
        &["query", "without cache", "with cache", "cache hit rate"],
        &rows,
    );
}
