//! `cold_start` — time-to-first-search from a persistent database image.
//!
//! The deployment question behind DESIGN.md §3.9: a service restarts (or
//! a new replica boots) and must start answering searches. Without a
//! persistent format it regenerates the database and flattens it into
//! device layout; with one it maps a prebuilt `.cdb` image and installs
//! the stored layout directly, no flatten pass. This bench measures both
//! cold paths on both presets and asserts, not just reports:
//!
//! 1. **Image load beats regenerate-and-flatten** — the mapped cold
//!    start's median wall-clock is strictly below the regenerate path's.
//! 2. **Zero flatten passes** — loading and searching the image never
//!    runs the flatten loop (`cublastp::flatten_count` is unchanged).
//! 3. **Bit-identical results** — a search on the mapped generation has
//!    the same [`identity_key`](blast_core) as one on the flattened copy.
//! 4. **No steady-state tax** — once resident, searching the mapped
//!    layout stays within ±15% of the owned layout's median wall-clock
//!    (re-measured on violation: a genuine tax is reproducible, a CI
//!    noise spike is not).
//!
//! The committed gate (`ci/baselines/cold_start.json`) covers the four
//! violation counters (all baseline 0 — any violation regresses the
//! gate); raw millisecond numbers vary with the host and stay
//! informational.

use bench::{bench_scale, obsenv, query};
use bio_seq::generate::{generate_db, DbPreset};
use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig, DeviceDb};
use cublastp_db::DbImage;
use gpu_sim::DeviceConfig;
use std::sync::Arc;
use std::time::Instant;

/// Timed samples per measurement (median reported).
const SAMPLES: usize = 5;
/// Re-measurements allowed before a wall-clock violation counts.
const RETRIES: usize = 2;
/// Steady-state tolerance: mapped vs owned search median.
const STEADY_TOLERANCE: f64 = 0.15;

struct PresetRow {
    name: &'static str,
    regen_flatten_ms: f64,
    image_load_ms: f64,
    image_bytes: usize,
    steady_owned_ms: f64,
    steady_mapped_ms: f64,
    map_slower_violation: f64,
    flatten_passes: f64,
    result_mismatch: f64,
    steady_state_violation: f64,
}

fn median_of<T>(mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let mut samples = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let (ms, v) = f();
        samples.push(ms);
        last = Some(v);
    }
    (obsenv::median(&mut samples), last.expect("SAMPLES > 0"))
}

fn run_preset(preset: DbPreset, q: &Sequence, dir: &std::path::Path) -> PresetRow {
    let name = preset.spec().name;
    let spec = preset.spec().scaled(bench_scale());
    let cfg = CuBlastpConfig::default();
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    // The prebuilt image a restarting replica would map (built once,
    // outside every timed window — build cost is paid at deploy time).
    let db = generate_db(&spec, q).db;
    let path = dir.join(format!("{name}.cdb"));
    let built = match cublastp_db::build_to_file(&db, cfg.db_block_size, &path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cold_start: {name}: image build failed: {e}");
            std::process::exit(2);
        }
    };

    // Cold path A: regenerate the database and flatten it to device layout.
    let (mut regen_flatten_ms, owned_dev) = median_of(|| {
        let t0 = Instant::now();
        let db = generate_db(&spec, q).db;
        let dev = DeviceDb::upload(&db, cfg.db_block_size);
        (t0.elapsed().as_secs_f64() * 1e3, dev)
    });

    // Cold path B: map the image and install the stored layout directly.
    let flattens_before = cublastp::flatten_count();
    let (mut image_load_ms, (img, mapped_dev)) = median_of(|| {
        let t0 = Instant::now();
        let img = match DbImage::open(&path) {
            Ok(img) => img,
            Err(e) => {
                eprintln!("cold_start: {name}: image load failed: {e}");
                std::process::exit(2);
            }
        };
        let dev = DeviceDb::from_image(&img);
        (t0.elapsed().as_secs_f64() * 1e3, (img, dev))
    });

    // Property 1, with re-measurement: a real loss is reproducible.
    let mut map_slower_violation = 0.0;
    for attempt in 0..=RETRIES {
        if image_load_ms < regen_flatten_ms {
            break;
        }
        eprintln!(
            "cold_start: {name}: image load {image_load_ms:.2} ms did not beat \
             regenerate+flatten {regen_flatten_ms:.2} ms (attempt {})",
            attempt + 1
        );
        if attempt == RETRIES {
            map_slower_violation = 1.0;
            break;
        }
        (regen_flatten_ms, _) = median_of(|| {
            let t0 = Instant::now();
            let db = generate_db(&spec, q).db;
            let dev = DeviceDb::upload(&db, cfg.db_block_size);
            (t0.elapsed().as_secs_f64() * 1e3, dev)
        });
        (image_load_ms, _) = median_of(|| {
            let t0 = Instant::now();
            let img = DbImage::open(&path).expect("image validated above");
            let dev = DeviceDb::from_image(&img);
            (t0.elapsed().as_secs_f64() * 1e3, (img, dev))
        });
    }

    // Property 3: searches on the two layouts are bit-identical.
    let host_db = img.to_sequence_db();
    let owned_dev = Arc::new(owned_dev);
    let mapped_dev = Arc::new(mapped_dev);
    let search = |db: &SequenceDb, dev: &Arc<DeviceDb>| {
        let searcher = CuBlastp::new(q.clone(), params, cfg, device, db);
        match searcher.search_resident(db, dev, false) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cold_start: {name}: search failed: {e}");
                std::process::exit(4);
            }
        }
    };
    let owned_report = search(&db, &owned_dev).report;
    let mapped_report = search(&host_db, &mapped_dev).report;
    let result_mismatch = f64::from(owned_report.identity_key() != mapped_report.identity_key());
    if result_mismatch > 0.0 {
        eprintln!("cold_start: {name}: mapped search diverged from flattened search");
    }

    // Property 2: the whole mapped lifecycle ran zero flatten passes.
    let flatten_passes = (cublastp::flatten_count() - flattens_before) as f64;
    if flatten_passes > 0.0 {
        eprintln!("cold_start: {name}: image path ran {flatten_passes} flatten pass(es)");
    }

    // Property 4: steady-state parity, re-measured on violation.
    let steady = |db: &SequenceDb, dev: &Arc<DeviceDb>| {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            search(db, dev);
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        obsenv::median(&mut samples)
    };
    let mut steady_owned_ms = steady(&db, &owned_dev);
    let mut steady_mapped_ms = steady(&host_db, &mapped_dev);
    let mut steady_state_violation = 0.0;
    for attempt in 0..=RETRIES {
        let ratio = steady_mapped_ms / steady_owned_ms.max(1e-9);
        if (1.0 - STEADY_TOLERANCE..=1.0 + STEADY_TOLERANCE).contains(&ratio) {
            break;
        }
        eprintln!(
            "cold_start: {name}: steady-state mapped/owned ratio {ratio:.3} outside \
             ±{STEADY_TOLERANCE} (attempt {})",
            attempt + 1
        );
        if attempt == RETRIES {
            steady_state_violation = 1.0;
            break;
        }
        steady_owned_ms = steady(&db, &owned_dev);
        steady_mapped_ms = steady(&host_db, &mapped_dev);
    }

    std::fs::remove_file(&path).ok();
    PresetRow {
        name,
        regen_flatten_ms,
        image_load_ms,
        image_bytes: built.bytes,
        steady_owned_ms,
        steady_mapped_ms,
        map_slower_violation,
        flatten_passes,
        result_mismatch,
        steady_state_violation,
    }
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let q = query(254);
    let dir = std::env::temp_dir().join(format!("cublastp_cold_start_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cold_start: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }

    let rows: Vec<PresetRow> = [DbPreset::SwissprotMini, DbPreset::EnvNrMini]
        .into_iter()
        .map(|preset| run_preset(preset, &q, &dir))
        .collect();
    std::fs::remove_dir_all(&dir).ok();

    bench::print_table(
        "Cold start — regenerate+flatten vs mapped image (median of 5)",
        &[
            "preset",
            "regen+flatten ms",
            "image load ms",
            "speedup",
            "image MiB",
            "steady owned ms",
            "steady mapped ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.2}", r.regen_flatten_ms),
                    format!("{:.2}", r.image_load_ms),
                    format!("{:.1}x", r.regen_flatten_ms / r.image_load_ms.max(1e-9)),
                    format!("{:.2}", r.image_bytes as f64 / (1 << 20) as f64),
                    format!("{:.2}", r.steady_owned_ms),
                    format!("{:.2}", r.steady_mapped_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let violations: f64 = rows
        .iter()
        .map(|r| {
            r.map_slower_violation + r.flatten_passes + r.result_mismatch + r.steady_state_violation
        })
        .sum();

    let json = render_json(&rows, scale);
    let path = "BENCH_cold_start.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
    if violations > 0.0 {
        eprintln!("cold_start: {violations} acceptance violation(s)");
        std::process::exit(1);
    }
}

fn render_json(rows: &[PresetRow], scale: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"cold_start\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    // Gated numbers: violation counters only, all baseline 0 — any
    // violation regresses the gate. Raw milliseconds vary with the host
    // and stay informational below.
    out.push_str("  \"phase_medians\": {\n");
    out.push_str("    \"cold_start\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {{\"map_slower_violation\": {:.1}, \"flatten_passes\": {:.1}, \
             \"result_mismatch\": {:.1}, \"steady_state_violation\": {:.1}}}{}\n",
            r.name,
            r.map_slower_violation,
            r.flatten_passes,
            r.result_mismatch,
            r.steady_state_violation,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"regen_flatten_ms\": {:.4}, \"image_load_ms\": {:.4}, \
             \"image_bytes\": {}, \"steady_owned_ms\": {:.4}, \"steady_mapped_ms\": {:.4}}}{}\n",
            r.name,
            r.regen_flatten_ms,
            r.image_load_ms,
            r.image_bytes,
            r.steady_owned_ms,
            r.steady_mapped_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
