//! Fig. 15 — Kernel execution time with the PSS matrix vs the BLOSUM62
//! scoring matrix, for the three query lengths on swissprot (§3.5).
//!
//! The paper's claims: PSSM wins for query127 (fits easily in shared
//! memory, one lookup per position); BLOSUM62 wins for query517 and
//! query1054 (the PSSM either strangles occupancy or spills to global
//! memory).

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, print_table};
use bench::{database, query, QUERY_LENGTHS};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{CuBlastpConfig, ScoringMode};
use gpu_sim::DeviceConfig;

fn main() {
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    let mut rows = Vec::new();
    for len in QUERY_LENGTHS {
        let q = query(len);
        let db = database(DbPreset::SwissprotMini, &q);
        let mut times = Vec::new();
        for scoring in [ScoringMode::Pssm, ScoringMode::Blosum62] {
            let cfg = CuBlastpConfig {
                scoring,
                ..figure_config()
            };
            let (r, _) = run_cublastp_detailed(&q, &db, params, cfg);
            let total: f64 = r.kernels.iter().map(|k| k.time_ms(&device)).sum();
            times.push(total);
        }
        let improvement = times[0] / times[1] - 1.0;
        rows.push(vec![
            format!("query{len}"),
            fmt(times[0]),
            fmt(times[1]),
            format!("{:+.0}%", improvement * 100.0),
        ]);
    }
    print_table(
        "Fig. 15 — Total kernel time: PSS matrix vs BLOSUM62 in shared memory (ms)",
        &["query", "PSS matrix", "BLOSUM62", "BLOSUM62 improvement"],
        &rows,
    );
    println!("(paper: −24% for query127, +50% for query517, +237% for query1054)");
}
