//! Future-work experiment (§6) — GPU-cluster strong scaling.
//!
//! The paper predicts that on GPU clusters "the result sorting, merging,
//! and ranking from multiple nodes could become a time-consuming step,
//! which in turn, would be the performance bottleneck". This harness
//! shards `env_nr_mini` across 1–32 simulated nodes, runs the full
//! cuBLASTP pipeline per shard (output stays identical to single-node),
//! and reports where the merge/rank phase starts to dominate.

use bench::runners::figure_config;
use bench::table::{fmt, pct, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{search_cluster, ClusterConfig, CuBlastp};
use gpu_sim::DeviceConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::EnvNrMini, &q);
    let params = SearchParams::default();
    let searcher = CuBlastp::new(q, params, figure_config(), DeviceConfig::k20c(), &db);

    // A merge-heavy configuration: report caps in the hundreds of
    // thousands stress ranking exactly as large-database mpiBLAST runs do.
    let cluster_base = ClusterConfig::default();

    let single = searcher.search(&db).expect("fault-free search");
    let base_ms = single.timing.total_ms();

    let mut rows = Vec::new();
    let mut reference = None;
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let r = search_cluster(
            &searcher,
            &db,
            &ClusterConfig {
                nodes,
                ..cluster_base
            },
        )
        .expect("fault-free cluster search");
        let key = r.report.identity_key();
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k, "cluster output changed at {nodes} nodes"),
        }
        rows.push(vec![
            nodes.to_string(),
            fmt(r.search_ms),
            fmt(r.merge_ms),
            fmt(r.total_ms()),
            fmt(base_ms / r.total_ms()),
            pct(r.merge_share()),
        ]);
    }
    print_table(
        "§6 future work — cluster strong scaling, query517 × env_nr_mini",
        &[
            "nodes",
            "search (ms)",
            "merge+rank (ms)",
            "total (ms)",
            "speedup",
            "merge share",
        ],
        &rows,
    );
    println!(
        "Search scales with nodes; the reduction-tree merge grows with node count and \
         result volume — the bottleneck the paper anticipates for GPU clusters."
    );

    // At NR scale each node contributes orders of magnitude more records;
    // project the merge phase alone against the measured 32-node search
    // phase to locate the crossover the paper warns about.
    let search_32 = rows.last().expect("rows populated")[1].clone();
    let mut proj = Vec::new();
    for per_node in [1_000usize, 10_000, 100_000, 1_000_000] {
        let merge =
            cublastp::cluster::merge_tree_ms(&vec![per_node; 32], &cluster_base, 10 * per_node);
        proj.push(vec![format!("{per_node}"), fmt(merge)]);
    }
    print_table(
        "Projected 32-node merge cost vs records per node (search phase ≈ the measured value above)",
        &["records/node", "merge+rank (ms)"],
        &proj,
    );
    println!("(32-node search phase measured above: {search_32} ms — merge overtakes it beyond ~10^3 records/node; NR-scale searches sit orders of magnitude past that)");
}
