//! `cluster_scaling` — multi-device strong scaling of the sharded engine.
//!
//! The paper's §6 future work asks how the fine-grained pipeline scales
//! when the database is segmented across devices. This harness drives the
//! *real* sharded engine (DESIGN.md §3.10) — not an analytic model: it
//! shards `env_nr_mini` into [`SHARDS`] shards, runs a batch of
//! [`QUERY_LENS`] queries through [`search_sharded_batch`] (one measured
//! (query × shard) work item each, cross-shard statistics), then
//! re-simulates the same measured items across device counts via
//! [`ShardedBatchOutcome::reschedule`] — identical work, deterministic
//! schedules, no re-search. It asserts, not just reports:
//!
//! 1. **Bit-identical output** — every query's merged sharded report has
//!    the same identity key and e-value bits as a flat single-DB search.
//! 2. **≥2× makespan speedup at 4 devices** over the single-device
//!    schedule of the same items.
//! 3. **≥0.6 scaling efficiency at 8 devices** (speedup / devices).
//! 4. **No failed queries** under the fault-free run.
//!
//! The committed gate (`ci/baselines/cluster_scaling.json`) covers the
//! violation counters (all baseline 0); the scaling curve itself varies
//! with the modelled costs and stays informational.

use bench::workloads::bench_scale;
use bench::{database, obsenv, print_table, query};
use bio_seq::generate::DbPreset;
use bio_seq::Sequence;
use blast_core::SearchParams;
use cublastp::{
    search_sharded_batch, CuBlastp, CuBlastpConfig, ShardedBatchOptions, ShardedBatchOutcome,
    ShardedDb,
};
use gpu_sim::DeviceConfig;

/// Shards the database is partitioned into.
const SHARDS: usize = 8;
/// Device counts the scaling curve sweeps (re-simulated, same items).
const DEVICES: [usize; 4] = [1, 2, 4, 8];
/// Query lengths of the batch — 8 queries × 8 shards = 64 work items.
const QUERY_LENS: [usize; 8] = [127, 254, 387, 517, 213, 298, 451, 166];
/// Re-measurements allowed before a scaling violation counts.
const RETRIES: usize = 2;
/// Acceptance floor: makespan speedup at 4 devices.
const MIN_SPEEDUP_4DEV: f64 = 2.0;
/// Acceptance floor: scaling efficiency at 8 devices.
const MIN_EFFICIENCY_8DEV: f64 = 0.6;

struct Violations {
    speedup_4dev_below_2x: f64,
    efficiency_8dev_below_0p6: f64,
    identity_mismatch: f64,
    query_failures: f64,
}

fn run_batch(
    queries: &[Sequence],
    params: SearchParams,
    cfg: CuBlastpConfig,
    sharded: &ShardedDb,
) -> ShardedBatchOutcome {
    search_sharded_batch(
        queries,
        params,
        cfg,
        DeviceConfig::k20c(),
        sharded,
        &ShardedBatchOptions::default(),
    )
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let params = SearchParams::default();
    let cfg = CuBlastpConfig::default();
    let queries: Vec<Sequence> = QUERY_LENS.iter().map(|&len| query(len)).collect();
    let db = database(DbPreset::EnvNrMini, &queries[0]);
    let preset = DbPreset::EnvNrMini.spec().name;
    let sharded = ShardedDb::split(&db, SHARDS, cfg.db_block_size);

    // Property 1: sharded output is bit-identical to flat single-DB
    // searches (identity key and e-value bits), every query.
    let mut outcome = run_batch(&queries, params, cfg, &sharded);
    let mut identity_mismatch = 0.0;
    let mut query_failures = 0.0;
    for (q, result) in queries.iter().zip(&outcome.per_query) {
        match result {
            Ok(r) => {
                let flat = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db)
                    .search(&db)
                    .expect("fault-free flat search");
                if r.report.identity_key() != flat.report.identity_key()
                    || r.report.hits.iter().zip(&flat.report.hits).any(|(a, b)| {
                        a.evalue.to_bits() != b.evalue.to_bits()
                            || a.bit_score.to_bits() != b.bit_score.to_bits()
                    })
                {
                    eprintln!(
                        "cluster_scaling: sharded output diverged from flat search \
                         (query len {})",
                        q.len()
                    );
                    identity_mismatch += 1.0;
                }
            }
            Err(e) => {
                eprintln!("cluster_scaling: query failed under sharding: {e}");
                query_failures += 1.0;
            }
        }
    }

    // Properties 2 and 3, with re-measurement: the schedule is a pure
    // function of the measured item costs, so a genuine scaling loss
    // reproduces while a host-noise cost wobble does not.
    let mut speedup_4dev_below_2x = 0.0;
    let mut efficiency_8dev_below_0p6 = 0.0;
    for attempt in 0..=RETRIES {
        let s4 = outcome.single_device_ms / outcome.reschedule(4).makespan_ms.max(1e-9);
        let e8 = outcome.reschedule(8).efficiency(outcome.single_device_ms);
        if s4 >= MIN_SPEEDUP_4DEV && e8 >= MIN_EFFICIENCY_8DEV {
            break;
        }
        eprintln!(
            "cluster_scaling: speedup(4)={s4:.2} (floor {MIN_SPEEDUP_4DEV}), \
             efficiency(8)={e8:.2} (floor {MIN_EFFICIENCY_8DEV}) — attempt {}",
            attempt + 1
        );
        if attempt == RETRIES {
            speedup_4dev_below_2x = f64::from(s4 < MIN_SPEEDUP_4DEV);
            efficiency_8dev_below_0p6 = f64::from(e8 < MIN_EFFICIENCY_8DEV);
            break;
        }
        outcome = run_batch(&queries, params, cfg, &sharded);
    }

    // The scaling curve: same measured items, re-simulated per count.
    let mut curve = Vec::new();
    for d in DEVICES {
        let s = outcome.reschedule(d);
        curve.push((
            d,
            s.makespan_ms,
            outcome.single_device_ms / s.makespan_ms.max(1e-9),
            s.efficiency(outcome.single_device_ms),
            s.total_steals(),
        ));
    }
    print_table(
        &format!(
            "§3.10 sharded fleet strong scaling — {} queries × {SHARDS} shards, {preset}",
            queries.len()
        ),
        &[
            "devices",
            "makespan (ms)",
            "speedup",
            "efficiency",
            "steals",
        ],
        &curve
            .iter()
            .map(|(d, mk, sp, eff, st)| {
                vec![
                    d.to_string(),
                    format!("{mk:.3}"),
                    format!("{sp:.2}x"),
                    format!("{eff:.2}"),
                    st.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "Work items are measured once ({} items, {:.3} ms single-device) and \
         rescheduled deterministically per device count (seed {:#x}).",
        outcome.item_costs.len(),
        outcome.single_device_ms,
        outcome.seed,
    );

    let v = Violations {
        speedup_4dev_below_2x,
        efficiency_8dev_below_0p6,
        identity_mismatch,
        query_failures,
    };
    let json = render_json(&v, &curve, &outcome, preset, scale);
    let path = "BENCH_cluster_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
    let total = v.speedup_4dev_below_2x
        + v.efficiency_8dev_below_0p6
        + v.identity_mismatch
        + v.query_failures;
    if total > 0.0 {
        eprintln!("cluster_scaling: {total} acceptance violation(s)");
        std::process::exit(1);
    }
}

fn render_json(
    v: &Violations,
    curve: &[(usize, f64, f64, f64, u64)],
    outcome: &ShardedBatchOutcome,
    preset: &str,
    scale: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"cluster_scaling\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    // Gated numbers: violation counters only, all baseline 0 — any
    // violation regresses the gate. The curve varies with modelled costs
    // and stays informational below.
    out.push_str("  \"phase_medians\": {\n");
    out.push_str("    \"cluster_scaling\": {\n");
    out.push_str(&format!(
        "      \"{preset}\": {{\"speedup_4dev_below_2x\": {:.1}, \
         \"efficiency_8dev_below_0p6\": {:.1}, \"identity_mismatch\": {:.1}, \
         \"query_failures\": {:.1}}}\n",
        v.speedup_4dev_below_2x, v.efficiency_8dev_below_0p6, v.identity_mismatch, v.query_failures,
    ));
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"single_device_ms\": {:.4},\n",
        outcome.single_device_ms
    ));
    out.push_str(&format!("  \"items\": {},\n", outcome.item_costs.len()));
    out.push_str("  \"curve\": [\n");
    for (i, (d, mk, sp, eff, st)) in curve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"devices\": {d}, \"makespan_ms\": {mk:.4}, \"speedup\": {sp:.4}, \
             \"efficiency\": {eff:.4}, \"steals\": {st}}}{}\n",
            if i + 1 < curve.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
