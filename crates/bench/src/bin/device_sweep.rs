//! Device-sensitivity study: does the fine-grained advantage survive on
//! other Kepler-family parts?
//!
//! The paper measures one chip (Tesla K20c). A reproduction on a
//! simulator can ask the robustness question directly: re-run the
//! cuBLASTP-vs-coarse comparison on a bigger part (K40: more SMs, more
//! bandwidth) and a consumer part (GTX 680-class: fewer SMs, less
//! bandwidth, no read-only data cache) and check that the fine-grained
//! win is a property of the *algorithm*, not of one device's balance.

use baselines::CudaBlastp;
use bench::runners::figure_config;
use bench::table::{fmt, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{CuBlastp, CuBlastpConfig};
use gpu_sim::DeviceConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::SwissprotMini, &q);
    let params = SearchParams::default();

    let devices = [
        ("GTX 680-class", DeviceConfig::gtx680()),
        ("Tesla K20c (paper)", DeviceConfig::k20c()),
        ("Tesla K40", DeviceConfig::k40()),
    ];

    let mut rows = Vec::new();
    let mut reference = None;
    for (name, device) in devices {
        // The GTX part has no read-only cache — the config must not
        // pretend otherwise.
        let cfg = CuBlastpConfig {
            use_readonly_cache: device.readonly_cache_bytes > 0,
            ..figure_config()
        };
        let cu = CuBlastp::new(q.clone(), params, cfg, device, &db)
            .search(&db)
            .expect("fault-free search");
        let coarse = CudaBlastp::new(q.clone(), params, device, &db).search(&db);
        assert_eq!(cu.report.identity_key(), coarse.report.identity_key());
        let key = cu.report.identity_key();
        match &reference {
            None => reference = Some(key),
            Some(k) => assert_eq!(&key, k, "device changed the BLAST output!"),
        }
        rows.push(vec![
            name.to_string(),
            fmt(cu.timing.gpu_ms),
            fmt(coarse.timing.gpu_ms),
            fmt(coarse.timing.gpu_ms / cu.timing.gpu_ms),
        ]);
    }
    print_table(
        "Device sweep — critical phases, query517 × swissprot_mini (ms)",
        &[
            "device",
            "cuBLASTP kernels",
            "CUDA-BLASTP fused",
            "fine-grained speedup",
        ],
        &rows,
    );
    println!(
        "The fine-grained advantage holds on every part (and the BLAST output is \
         identical everywhere — device choice is a performance knob only)."
    );
}
