//! Emit the bench workloads as FASTA files, so shell-level jobs — CI's
//! grouped-vs-per-query equivalence job — can drive the CLI over the
//! same preset databases the bench binaries use. Respects `BENCH_SCALE`
//! like every other bench entry point.
//!
//! ```text
//! genfasta --preset <swissprot_mini|env_nr_mini> --queries <n> --out-dir <dir>
//! ```
//!
//! Writes `<dir>/queries.fasta` (`n` queries, lengths 48, 50, 52, … —
//! the grouped-seeding sweep's regime) and `<dir>/db.fasta` (the preset
//! database with homologies planted against the first query).

use bench::{database, query};
use bio_seq::fasta::to_fasta;
use bio_seq::generate::DbPreset;
use std::process::exit;

const USAGE: &str =
    "usage: genfasta --preset <swissprot_mini|env_nr_mini> --queries <n> --out-dir <dir>";

fn main() {
    let mut preset = None;
    let mut queries = 16usize;
    let mut out_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--preset" => {
                let name = value("--preset");
                preset = Some(match name.as_str() {
                    "swissprot_mini" => DbPreset::SwissprotMini,
                    "env_nr_mini" => DbPreset::EnvNrMini,
                    other => {
                        eprintln!("error: unknown preset {other:?}\n{USAGE}");
                        exit(2);
                    }
                });
            }
            "--queries" => {
                queries = value("--queries").parse().unwrap_or_else(|e| {
                    eprintln!("error: --queries: {e}\n{USAGE}");
                    exit(2);
                });
            }
            "--out-dir" => out_dir = Some(value("--out-dir")),
            other => {
                eprintln!("error: unknown option {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }
    let (Some(preset), Some(out_dir)) = (preset, out_dir) else {
        eprintln!("error: --preset and --out-dir are required\n{USAGE}");
        exit(2);
    };

    let qs: Vec<_> = (0..queries).map(|i| query(48 + 2 * i)).collect();
    let db = database(preset, &qs[0]);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: create {out_dir}: {e}");
        exit(2);
    }
    for (name, seqs) in [("queries.fasta", &qs[..]), ("db.fasta", db.sequences())] {
        let path = format!("{out_dir}/{name}");
        match std::fs::write(&path, to_fasta(seqs, 70)) {
            Ok(()) => println!("wrote {path} ({} records)", seqs.len()),
            Err(e) => {
                eprintln!("error: write {path}: {e}");
                exit(2);
            }
        }
    }
}
