//! Ablation — low-complexity masking and the two-hit filter.
//!
//! Real queries carry compositionally biased runs that flood hit
//! detection with clustered spurious hits; BLAST soft-masks them before
//! seeding (SEG). This ablation plants low-complexity runs into the
//! query, then measures how masking changes hit volume, filter survival,
//! and the GPU critical-phase time — the mechanism behind the survival-
//! ratio gap documented in EXPERIMENTS.md.

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, pct, print_table};
use bench::workloads::bench_scale;
use bio_seq::generate::{generate_db, make_query_with_low_complexity, DbPreset};
use blast_core::SearchParams;

fn main() {
    let mut rows = Vec::new();
    for runs in [0usize, 4, 12] {
        let q = make_query_with_low_complexity(517, runs);
        let spec = DbPreset::SwissprotMini.spec().scaled(bench_scale());
        let db = generate_db(&spec, &q).db;
        for mask in [false, true] {
            let params = SearchParams {
                mask_low_complexity: mask,
                ..SearchParams::default()
            };
            let (r, s) = run_cublastp_detailed(&q, &db, params, figure_config());
            rows.push(vec![
                format!("{runs} LC runs"),
                if mask { "on" } else { "off" }.to_string(),
                r.counts.hits.to_string(),
                pct(r.counts.survival_ratio()),
                fmt(s.critical_ms),
                r.report.hits.len().to_string(),
            ]);
        }
    }
    print_table(
        "Ablation — SEG masking vs hit volume / filter survival / kernel time (query517lc × swissprot_mini)",
        &["query bias", "masking", "hits", "survival", "critical (ms)", "reported"],
        &rows,
    );
    println!(
        "Masked seeding removes the biased regions' clustered hits: with 12 planted runs \
         it halves hit volume and critical-phase time while keeping ~93% of reported \
         alignments — the reason real BLASTP masks before seeding."
    );
}
