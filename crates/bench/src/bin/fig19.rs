//! Fig. 19 — Profiling cuBLASTP against CUDA-BLASTP and GPU-BLASTP for
//! query517 on env_nr: (a) global-load efficiency, (b) divergence
//! overhead, (c) achieved occupancy — per kernel — and (d) the breakdown
//! of cuBLASTP's overall execution time with overlap.
//!
//! The paper's claims: the fine-grained kernels reach 25–81 % load
//! efficiency vs 5.2 % / 11.5 % for the fused coarse kernels, with far
//! lower divergence and higher occupancy; transfers and CPU phases are
//! largely hidden by the Fig. 12 pipeline.

use baselines::{CudaBlastp, GpuBlastp};
use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, pct, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use gpu_sim::DeviceConfig;

fn main() {
    let q = query(517);
    let db = database(DbPreset::EnvNrMini, &q);
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();

    let (cu, _) = run_cublastp_detailed(&q, &db, params, figure_config());
    let cuda = CudaBlastp::new(q.clone(), params, device, &db).search(&db);
    let mut gpub_searcher = GpuBlastp::new(q.clone(), params, device, &db);
    gpub_searcher.total_warps = (db.len() / 160).clamp(8, 104);
    let gpub = gpub_searcher.search(&db);

    // (a)–(c): per-kernel metrics.
    let mut rows = Vec::new();
    for k in &cu.kernels {
        rows.push(vec![
            format!("cuBLASTP::{}", k.name),
            pct(k.global_load_efficiency()),
            pct(k.divergence_overhead()),
            pct(k.occupancy),
        ]);
    }
    for (label, k) in [
        ("CUDA-BLASTP::fused", &cuda.kernel),
        ("GPU-BLASTP::fused", &gpub.kernel),
    ] {
        rows.push(vec![
            label.to_string(),
            pct(k.global_load_efficiency()),
            pct(k.divergence_overhead()),
            pct(k.occupancy),
        ]);
    }
    print_table(
        "Fig. 19(a–c) — Per-kernel profile, query517 × env_nr_mini",
        &[
            "kernel",
            "load efficiency",
            "divergence overhead",
            "occupancy",
        ],
        &rows,
    );

    // (d): cuBLASTP overall breakdown.
    let t = &cu.timing;
    let serial_total = t.gpu_ms + t.h2d_ms + t.d2h_ms + t.cpu_wall_ms + t.other_ms;
    let mut rows = Vec::new();
    let mut push = |label: &str, ms: f64| {
        rows.push(vec![label.to_string(), fmt(ms), pct(ms / serial_total)]);
    };
    for k in &cu.kernels {
        push(&k.name, k.time_ms(&device));
    }
    push("data transfer (H2D+D2H)", t.h2d_ms + t.d2h_ms);
    push("gapped extension (CPU)", t.gapped_ms);
    push("final alignment (CPU)", t.traceback_ms);
    push("other", t.other_ms);
    print_table(
        "Fig. 19(d) — cuBLASTP time breakdown, query517 × env_nr_mini (ms, % of serial)",
        &["stage", "time (ms)", "share"],
        &rows,
    );
    println!(
        "serial pipeline: {} ms; overlapped (Fig. 12): {} ms; hidden by overlap: {}",
        fmt(t.serial_ms + t.other_ms),
        fmt(t.overlapped_ms + t.other_ms),
        pct(cu.pipeline.saving()),
    );
}
