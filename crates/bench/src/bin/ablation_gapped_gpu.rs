//! Ablation — gapped-extension placement: CPU tail vs coarse GPU kernel
//! vs the fine-grained device backend (§3.6 / DESIGN.md §3.7).
//!
//! The paper rejects offloading gapped extension to the GPU
//! (CUDA-BLASTP's design), arguing the CPU would idle, the irregular DP
//! diverges badly as a coarse kernel, and published GPU ports had to
//! modify the DP for performance. This harness measures all three ends
//! of that trade-off with bit-identical output and an unmodified DP:
//!
//! * **A — CPU gapped + overlap** (the paper's choice, `--gapped-backend
//!   cpu`): gapped extension + traceback on the host pool, hidden behind
//!   the next block's kernels.
//! * **B — coarse kernel** (the rejected port): one lane per gapped
//!   seed, whole-band per-lane sweeps, divergence bounded by the slowest
//!   seed of each warp.
//! * **C — fine kernel** (`--gapped-backend gpu`): one warp per seed,
//!   anti-diagonal wavefronts, SaLoBa work packing, constant-memory
//!   interval traceback.
//!
//! The harness asserts C beats B on modelled gapped-phase time on every
//! preset (the fine decomposition is the point), and that all three
//! designs report identical hits. Deterministic simulated times go to
//! `BENCH_gapped_gpu.json` for the CI perf gate
//! (`ci/baselines/gapped_gpu.json`); the CPU design's measured times are
//! printed for context but excluded from the gate (host wall-clock is
//! noisy).

use bench::obsenv;
use bench::runners::figure_config;
use bench::table::{fmt, pct, print_table};
use bench::{bench_scale, database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use blast_cpu::report::{PhaseTimes, SearchReport};
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::gapped_gpu::gapped_kernel;
use cublastp::gpu_phase::run_gpu_phase;
use cublastp::{CuBlastp, GappedBackend};
use gpu_sim::{DeviceConfig, KernelWorkspace};
use std::time::Instant;

struct Row {
    design: String,
    gpu_ms: f64,
    gapped_ms: f64,
    cpu_ms: f64,
    transfer_ms: f64,
    total_ms: f64,
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();
    let cfg = figure_config();

    let mut failures = 0usize;
    let mut sections: Vec<(String, Vec<Row>)> = Vec::new();
    let mut medians: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let q = query(517);
        let db = database(preset, &q);
        let name = preset.spec().name.to_string();

        // Design A (the paper's): CPU gapped + traceback, overlapped.
        let searcher = CuBlastp::new(q.clone(), params, cfg, device, &db);
        let a = searcher.search(&db).expect("fault-free search");

        // Design B (rejected): gapped extension as a coarse GPU kernel,
        // traceback on the CPU, no overlap (the GPU is busy with gapped
        // work, so the block pipeline has nothing to hide the CPU behind).
        let dq = DeviceQuery::upload(searcher.engine.dfa.clone(), searcher.engine.pssm.clone());
        let mut b_gpu_ms = 0.0f64;
        let mut b_gapped_gpu_ms = 0.0f64;
        let mut b_cpu_ms = 0.0f64;
        let mut b_transfer_ms = 0.0f64;
        let mut b_report = SearchReport::default();
        let mut gapped_divergence = 0.0f64;
        let ws = KernelWorkspace::new();
        for block in db.blocks(cfg.db_block_size) {
            let seqs = db.block_sequences(block);
            let dev_block = DeviceDbBlock::upload(seqs, block.start);
            b_transfer_ms += device.transfer_ms(dev_block.upload_bytes());
            let out = run_gpu_phase(
                &device,
                &cfg,
                &dq,
                &dev_block,
                &params,
                &ws,
                &gpu_sim::FaultInjector::none(),
                gpu_sim::FaultCtx::default(),
            )
            .expect("no faults armed");
            b_gpu_ms += out.gpu_ms(&device);
            let (gapped_by_seq, k_gapped) = gapped_kernel(
                &device,
                &cfg,
                &dq,
                &dev_block,
                &out.extensions,
                &params,
                searcher.engine.cutoffs.gapped_trigger,
            );
            b_gapped_gpu_ms += k_gapped.time_ms(&device);
            gapped_divergence = gapped_divergence.max(k_gapped.divergence_overhead());
            b_transfer_ms += device.transfer_ms(out.download_bytes);
            let t0 = Instant::now();
            let mut times = PhaseTimes::default();
            for (local, gapped) in gapped_by_seq.iter().enumerate() {
                if gapped.is_empty() {
                    continue;
                }
                let idx = block.start + local;
                searcher.engine.finish_subject_from_gapped(
                    idx,
                    &db.sequences()[idx],
                    gapped,
                    &mut b_report,
                    Some(&mut times),
                );
            }
            b_cpu_ms += t0.elapsed().as_secs_f64() * 1e3;
        }
        b_report.finalize(params.max_reported);
        // Fairness: design B threads its traceback exactly as A does.
        let b_cpu_ms = b_cpu_ms / blast_cpu::search::modeled_parallel_speedup(cfg.cpu_threads);
        let b_total = b_gpu_ms + b_gapped_gpu_ms + b_transfer_ms + b_cpu_ms;

        // Design C: the fine-grained device backend inside the pipeline.
        let fine_cfg = cublastp::CuBlastpConfig {
            gapped_backend: GappedBackend::Gpu,
            ..cfg
        };
        let fine_searcher = CuBlastp::new(q.clone(), params, fine_cfg, device, &db);
        let c = fine_searcher.search(&db).expect("fault-free search");
        let c_fine_ms = c
            .kernel("gapped_extension_fine")
            .map(|k| k.time_ms(&device))
            .unwrap_or(0.0);

        for (label, key) in [
            ("coarse", b_report.identity_key()),
            ("fine", { c.report.identity_key() }),
        ] {
            if key != a.report.identity_key() {
                eprintln!("error: {name}: {label} design diverges from the CPU tail");
                failures += 1;
            }
        }
        if c_fine_ms >= b_gapped_gpu_ms {
            eprintln!(
                "error: {name}: fine gapped kernel ({c_fine_ms:.4} ms) must beat the \
                 coarse port ({b_gapped_gpu_ms:.4} ms) on modelled gapped-phase time"
            );
            failures += 1;
        }

        let rows = vec![
            Row {
                design: "CPU gapped + overlap (paper)".into(),
                gpu_ms: a.timing.gpu_ms,
                gapped_ms: a.timing.gapped_ms + a.timing.traceback_ms,
                cpu_ms: a.timing.cpu_wall_ms,
                transfer_ms: a.timing.h2d_ms + a.timing.d2h_ms,
                total_ms: a.timing.total_ms(),
            },
            Row {
                design: "coarse GPU kernel (rejected)".into(),
                gpu_ms: b_gpu_ms,
                gapped_ms: b_gapped_gpu_ms,
                cpu_ms: b_cpu_ms,
                transfer_ms: b_transfer_ms,
                total_ms: b_total,
            },
            Row {
                design: "fine device backend (§3.7)".into(),
                // gpu_ms includes the fine kernel; split it out as the
                // gapped-phase column for the apples-to-apples view.
                gpu_ms: c.timing.gpu_ms - c_fine_ms,
                gapped_ms: c_fine_ms,
                cpu_ms: c.timing.cpu_wall_ms,
                transfer_ms: c.timing.h2d_ms + c.timing.d2h_ms,
                total_ms: c.timing.total_ms(),
            },
        ];
        println!(
            "{name}: coarse divergence {} vs fine 0% by construction; fine/coarse \
             gapped-phase ratio {:.3}",
            pct(gapped_divergence),
            if b_gapped_gpu_ms > 0.0 {
                c_fine_ms / b_gapped_gpu_ms
            } else {
                0.0
            },
        );
        // Gate only the deterministic simulated quantities (measured CPU
        // wall-clock is noisy across hosts).
        medians.push((
            name.clone(),
            vec![
                ("coarse_kernel_ms".to_string(), b_gapped_gpu_ms),
                ("fine_kernel_ms".to_string(), c_fine_ms),
                ("fine_d2h_ms".to_string(), c.timing.d2h_ms),
            ],
        ));
        sections.push((name, rows));
    }

    for (name, rows) in &sections {
        print_table(
            &format!("Ablation — gapped placement, query517 × {name} (ms)"),
            &[
                "design",
                "other GPU kernels",
                "gapped phase",
                "CPU tail",
                "transfers",
                "total",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.design.clone(),
                        fmt(r.gpu_ms),
                        fmt(r.gapped_ms),
                        fmt(r.cpu_ms),
                        fmt(r.transfer_ms),
                        fmt(r.total_ms),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "Reading the trade-off: the coarse port serializes the irregular banded DP \
         one lane per seed; the fine backend's warp-per-seed wavefronts remove the \
         intra-warp divergence and coalesce the band traffic, which is why it must \
         beat the coarse port above. Whether it also beats the paper's CPU tail \
         depends on the CPU:GPU cost ratio of the host — the CPU rows are measured, \
         not simulated. All three designs report identical hits; cuBLASTP defaults \
         to the paper's."
    );

    let json = render_json(&sections, &medians, scale);
    let path = "BENCH_gapped_gpu.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
    if failures > 0 {
        eprintln!("error: {failures} gapped-ablation check(s) failed");
        std::process::exit(1);
    }
}

fn render_json(
    sections: &[(String, Vec<Row>)],
    medians: &[(String, Vec<(String, f64)>)],
    scale: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"gapped_gpu\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"phase_medians\": {\n");
    for (pi, (name, phases)) in medians.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{"));
        for (ki, (phase, ms)) in phases.iter().enumerate() {
            out.push_str(&format!(
                "\"{phase}\": {ms:.6}{}",
                if ki + 1 < phases.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if pi + 1 < medians.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (pi, (name, rows)) in sections.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"db\": \"{name}\",\n"));
        out.push_str("      \"designs\": [\n");
        for (ri, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"design\": \"{}\", \"gpu_ms\": {:.4}, \"gapped_ms\": {:.4}, \
                 \"cpu_ms\": {:.4}, \"transfer_ms\": {:.4}, \"total_ms\": {:.4}}}{}\n",
                r.design,
                r.gpu_ms,
                r.gapped_ms,
                r.cpu_ms,
                r.transfer_ms,
                r.total_ms,
                if ri + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
