//! Ablation — gapped extension on GPU vs on CPU with overlap (§3.6).
//!
//! The paper rejects offloading gapped extension to the GPU
//! (CUDA-BLASTP's design), arguing the CPU would idle, the irregular DP
//! diverges badly as a coarse kernel, and published GPU ports had to
//! modify the DP for performance. This harness implements the rejected
//! design (bit-identical output, no modified DP) and measures both ends
//! of the trade-off. Where the balance lands depends on the CPU:GPU cost
//! ratio — see the commentary the binary prints and EXPERIMENTS.md.

use bench::runners::figure_config;
use bench::table::{fmt, pct, print_table};
use bench::{database, query};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use blast_cpu::report::{PhaseTimes, SearchReport};
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::gapped_gpu::gapped_kernel;
use cublastp::gpu_phase::run_gpu_phase;
use cublastp::CuBlastp;
use gpu_sim::{DeviceConfig, KernelWorkspace};
use std::time::Instant;

fn main() {
    let q = query(517);
    let db = database(DbPreset::SwissprotMini, &q);
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();
    let cfg = figure_config();

    // Design A (the paper's): CPU gapped + traceback, overlapped.
    let searcher = CuBlastp::new(q.clone(), params, cfg, device, &db);
    let a = searcher.search(&db).expect("fault-free search");
    let a_total = a.timing.total_ms();

    // Design B (rejected): gapped extension as a GPU kernel, traceback on
    // one CPU thread, no overlap (the GPU is busy with gapped work, so
    // the block pipeline has nothing to hide the CPU behind).
    let dq = DeviceQuery::upload(searcher.engine.dfa.clone(), searcher.engine.pssm.clone());
    let mut b_gpu_ms = 0.0f64;
    let mut b_gapped_gpu_ms = 0.0f64;
    let mut b_cpu_ms = 0.0f64;
    let mut b_transfer_ms = 0.0f64;
    let mut report = SearchReport::default();
    let mut gapped_divergence = 0.0f64;
    let ws = KernelWorkspace::new();
    for block in db.blocks(cfg.db_block_size) {
        let seqs = db.block_sequences(block);
        let dev_block = DeviceDbBlock::upload(seqs, block.start);
        b_transfer_ms += device.transfer_ms(dev_block.upload_bytes());
        let out = run_gpu_phase(
            &device,
            &cfg,
            &dq,
            &dev_block,
            &params,
            &ws,
            &gpu_sim::FaultInjector::none(),
            gpu_sim::FaultCtx::default(),
        )
        .expect("no faults armed");
        b_gpu_ms += out.gpu_ms(&device);
        let (gapped_by_seq, k_gapped) = gapped_kernel(
            &device,
            &cfg,
            &dq,
            &dev_block,
            &out.extensions,
            &params,
            searcher.engine.cutoffs.gapped_trigger,
        );
        b_gapped_gpu_ms += k_gapped.time_ms(&device);
        gapped_divergence = gapped_divergence.max(k_gapped.divergence_overhead());
        b_transfer_ms += device.transfer_ms(out.download_bytes);
        let t0 = Instant::now();
        let mut times = PhaseTimes::default();
        for (local, gapped) in gapped_by_seq.iter().enumerate() {
            if gapped.is_empty() {
                continue;
            }
            let idx = block.start + local;
            searcher.engine.finish_subject_from_gapped(
                idx,
                &db.sequences()[idx],
                gapped,
                &mut report,
                Some(&mut times),
            );
        }
        b_cpu_ms += t0.elapsed().as_secs_f64() * 1e3;
    }
    report.finalize(params.max_reported);
    // Fairness: design B threads its traceback exactly as design A does.
    let b_cpu_ms = b_cpu_ms / blast_cpu::search::modeled_parallel_speedup(cfg.cpu_threads);
    let b_total = b_gpu_ms + b_gapped_gpu_ms + b_transfer_ms + b_cpu_ms;

    assert_eq!(
        report.identity_key(),
        a.report.identity_key(),
        "both designs must produce identical output"
    );

    print_table(
        "Ablation §3.6 — gapped extension placement, query517 × swissprot_mini (ms)",
        &[
            "design",
            "GPU kernels",
            "gapped",
            "traceback+CPU",
            "transfers",
            "total",
        ],
        &[
            vec![
                "CPU gapped + overlap (paper)".into(),
                fmt(a.timing.gpu_ms),
                fmt(a.timing.gapped_ms),
                fmt(a.timing.traceback_ms),
                fmt(a.timing.h2d_ms + a.timing.d2h_ms),
                fmt(a_total),
            ],
            vec![
                "GPU gapped kernel (rejected)".into(),
                fmt(b_gpu_ms),
                fmt(b_gapped_gpu_ms),
                fmt(b_cpu_ms),
                fmt(b_transfer_ms),
                fmt(b_total),
            ],
        ],
    );
    println!(
        "GPU gapped kernel divergence overhead: {} — the irregular banded DP serializes \
         badly as a coarse kernel. Identical output on both designs.",
        pct(gapped_divergence)
    );
    println!(
        "Reading the trade-off: in this reproduction the CPU phases are relatively heavier \
         than in the paper's testbed, so raw totals can favour the GPU kernel despite its \
         {} divergence. The paper's choice rests on its regime — CPU gapped+traceback small \
         enough to hide entirely behind the next block's GPU kernels (their Fig. 19d) — \
         plus keeping the exact, unmodified DP and leaving the GPU free for the critical \
         phases. Both designs are available; cuBLASTP defaults to the paper's.",
        pct(gapped_divergence)
    );
}
