//! §3.3 claim — "only 5 % to 11 % of the hits from the hit-detection
//! phase are passed to ungapped extension": survival ratio of the hit
//! filter for every (query, database) pair, plus the hit-based strategy's
//! redundancy (the cost the filter avoids).

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{pct, print_table};
use bench::{database, query, QUERY_LENGTHS};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;

fn main() {
    let params = SearchParams::default();
    let mut rows = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        for len in QUERY_LENGTHS {
            let q = query(len);
            let db = database(preset, &q);
            let (r, _) = run_cublastp_detailed(&q, &db, params, figure_config());
            rows.push(vec![
                format!("query{len}"),
                preset.name().to_string(),
                r.counts.hits.to_string(),
                r.counts.filtered.to_string(),
                pct(r.counts.survival_ratio()),
                r.counts.extensions.to_string(),
            ]);
        }
    }
    print_table(
        "§3.3 — Hit-filter survival ratio (paper: 5–11 %)",
        &[
            "query",
            "database",
            "hits",
            "filtered",
            "survival",
            "extensions",
        ],
        &rows,
    );
}
