//! CPU-stage SIMD speedup — scalar vs runtime-dispatched vector kernels.
//!
//! The gapped x-drop extension and the ungapped two-hit walk carry SIMD
//! inner loops (`blast_cpu::simd`) selected at runtime (AVX2 → SSE4.1 →
//! scalar). Their outputs are bit-identical to the scalar reference by
//! contract, so what the vectorization buys is pure host time. This
//! binary measures it directly: the same seed set (collected once per
//! database preset) is pushed through the gapped phase and the traceback
//! phase twice — once forced scalar, once at the detected ISA — and both
//! passes must produce identical extensions and alignments.
//!
//! DP throughput is reported as cells/second from the monotone
//! [`blast_cpu::gapped::dp_cells`] counter, whose value is a pure
//! function of the inputs (the band evolution is ISA-independent). Those
//! counts — not wall-clock — feed the `phase_medians` section the perf
//! gate checks, so the gate watches the *work done* (band growth,
//! alignment ops, surviving alignments), deterministic for a given
//! `BENCH_SCALE`; wall-clock stays in the informational sections.
//!
//! Results go to stdout and `BENCH_cpusimd.json`.

use bench::obsenv;
use bench::table::print_table;
use bench::{bench_scale, database, query};
use bio_seq::generate::DbPreset;
use bio_seq::{Sequence, SequenceDb};
use blast_cpu::gapped::{dp_cells, gapped_phase_subject, GappedExt};
use blast_cpu::hit::{scan_subject_mode, DiagonalScratch, HitStats};
use blast_cpu::report::Alignment;
use blast_cpu::search::SearchEngine;
use blast_cpu::simd::{self, IsaLevel};
use blast_cpu::traceback::traceback;
use blast_cpu::UngappedExt;
use std::time::Instant;

/// Timed repetitions per pass; the best run is reported (deterministic
/// workload, so the minimum is the least-noisy location estimate).
const REPS: usize = 3;

/// Seeds for one subject that reached the two-hit trigger.
struct SubjectSeeds {
    index: usize,
    ungapped: Vec<UngappedExt>,
}

/// One timed pass over every seeded subject at the currently forced ISA:
/// full gapped phase, then traceback of everything above the report
/// cutoff. Returns the outputs (for the bit-identity assertion) plus the
/// wall-clock of each phase and the DP cells the gapped phase touched.
struct PassOut {
    gapped: Vec<Vec<GappedExt>>,
    alignments: Vec<Alignment>,
    gapped_ms: f64,
    traceback_ms: f64,
    cells: u64,
}

fn run_pass(engine: &SearchEngine, db: &SequenceDb, seeds: &[SubjectSeeds]) -> PassOut {
    let c0 = dp_cells();
    let t0 = Instant::now();
    let mut gapped: Vec<Vec<GappedExt>> = Vec::with_capacity(seeds.len());
    for s in seeds {
        gapped.push(gapped_phase_subject(
            &engine.pssm,
            db.sequences()[s.index].residues(),
            &s.ungapped,
            &engine.params,
            engine.cutoffs.gapped_trigger,
        ));
    }
    let gapped_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cells = dp_cells() - c0;

    let t1 = Instant::now();
    let mut alignments = Vec::new();
    for (s, exts) in seeds.iter().zip(&gapped) {
        let subject = db.sequences()[s.index].residues();
        for g in exts {
            if g.score < engine.cutoffs.report_cutoff {
                continue;
            }
            alignments.push(traceback(
                &engine.pssm,
                engine.query.residues(),
                subject,
                g,
                &engine.params,
            ));
        }
    }
    let traceback_ms = t1.elapsed().as_secs_f64() * 1e3;
    PassOut {
        gapped,
        alignments,
        gapped_ms,
        traceback_ms,
        cells,
    }
}

/// Best-of-[`REPS`] pass at a forced ISA level. The outputs of every rep
/// are identical (asserted), so only the first rep's are kept.
fn best_pass(
    level: Option<IsaLevel>,
    engine: &SearchEngine,
    db: &SequenceDb,
    seeds: &[SubjectSeeds],
) -> PassOut {
    simd::force_level(level);
    let mut best = run_pass(engine, db, seeds);
    for _ in 1..REPS {
        let rep = run_pass(engine, db, seeds);
        assert_eq!(rep.cells, best.cells, "DP cell count must be deterministic");
        best.gapped_ms = best.gapped_ms.min(rep.gapped_ms);
        best.traceback_ms = best.traceback_ms.min(rep.traceback_ms);
    }
    simd::force_level(None);
    best
}

struct Row {
    preset: String,
    cells: u64,
    scalar_gapped_ms: f64,
    simd_gapped_ms: f64,
    scalar_stage_ms: f64,
    simd_stage_ms: f64,
    traceback_ops: u64,
    alignments: u64,
}

impl Row {
    fn scalar_cps(&self) -> f64 {
        self.cells as f64 / (self.scalar_gapped_ms / 1e3)
    }
    fn simd_cps(&self) -> f64 {
        self.cells as f64 / (self.simd_gapped_ms / 1e3)
    }
}

fn collect_seeds(engine: &SearchEngine, db: &SequenceDb) -> (Vec<SubjectSeeds>, HitStats) {
    let mut scratch = DiagonalScratch::new(engine.pssm.query_len() + db.max_length() + 1);
    let mut stats = HitStats::default();
    let mut seeds = Vec::new();
    for (index, subject) in db.sequences().iter().enumerate() {
        let mut ungapped = Vec::new();
        scan_subject_mode(
            &engine.dfa,
            &engine.pssm,
            subject.residues(),
            index as u32,
            engine.params.two_hit,
            engine.params.two_hit_window as i64,
            engine.params.xdrop_ungapped,
            &mut scratch,
            &mut ungapped,
            &mut stats,
        );
        if !ungapped.is_empty() {
            seeds.push(SubjectSeeds { index, ungapped });
        }
    }
    (seeds, stats)
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    let report = simd::dispatch_report();
    println!(
        "cpu simd dispatch: active {} (detected {}{})",
        report.active.name(),
        report.detected.name(),
        if report.forced_scalar_env {
            ", CUBLASTP_FORCE_SCALAR=1"
        } else {
            ""
        }
    );
    let q: Sequence = query(517);
    let params = blast_core::SearchParams::default();

    let mut rows: Vec<Row> = Vec::new();
    for preset in [DbPreset::SwissprotMini, DbPreset::EnvNrMini] {
        let db = database(preset, &q);
        let engine = SearchEngine::new(q.clone(), params, &db);
        let (seeds, _) = collect_seeds(&engine, &db);

        let scalar = best_pass(Some(IsaLevel::Scalar), &engine, &db, &seeds);
        let native = best_pass(None, &engine, &db, &seeds);

        // The whole point: the vector path must change nothing but time.
        assert_eq!(
            scalar.gapped, native.gapped,
            "SIMD gapped extensions must be bit-identical to scalar"
        );
        assert_eq!(
            scalar.alignments, native.alignments,
            "SIMD alignments must be bit-identical to scalar"
        );
        assert_eq!(scalar.cells, native.cells, "band evolution must match");

        let traceback_ops: u64 = scalar.alignments.iter().map(|a| a.ops.len() as u64).sum();
        rows.push(Row {
            preset: preset.spec().name.to_string(),
            cells: scalar.cells,
            scalar_gapped_ms: scalar.gapped_ms,
            simd_gapped_ms: native.gapped_ms,
            scalar_stage_ms: scalar.gapped_ms + scalar.traceback_ms,
            simd_stage_ms: native.gapped_ms + native.traceback_ms,
            traceback_ops,
            alignments: scalar.alignments.len() as u64,
        });
    }

    print_table(
        &format!("Gapped DP throughput — query517 (best of {REPS}, single thread)"),
        &[
            "db",
            "cells",
            "scalar ms",
            "simd ms",
            "scalar Mc/s",
            "simd Mc/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.preset.clone(),
                    r.cells.to_string(),
                    format!("{:.2}", r.scalar_gapped_ms),
                    format!("{:.2}", r.simd_gapped_ms),
                    format!("{:.1}", r.scalar_cps() / 1e6),
                    format!("{:.1}", r.simd_cps() / 1e6),
                    format!("{:.2}x", r.scalar_gapped_ms / r.simd_gapped_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        &format!("CPU stage end-to-end (gapped + traceback, best of {REPS})"),
        &["db", "scalar ms", "simd ms", "speedup", "alignments"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.preset.clone(),
                    format!("{:.2}", r.scalar_stage_ms),
                    format!("{:.2}", r.simd_stage_ms),
                    format!("{:.2}x", r.scalar_stage_ms / r.simd_stage_ms),
                    r.alignments.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json = render_json(&rows, &report, scale);
    let path = "BENCH_cpusimd.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
}

fn render_json(rows: &[Row], report: &blast_cpu::DispatchReport, scale: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"cpusimd\",\n");
    out.push_str("  \"query\": 517,\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!(
        "  \"dispatch\": {{\"active\": \"{}\", \"detected\": \"{}\", \"forced_scalar_env\": {}}},\n",
        report.active.name(),
        report.detected.name(),
        report.forced_scalar_env,
    ));
    // Deterministic work counts only — this is what the perf gate checks.
    out.push_str("  \"phase_medians\": {\n");
    for (ri, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"gapped_cells\": {}, \"traceback_ops\": {}, \"alignments\": {}}}{}\n",
            r.preset,
            r.cells,
            r.traceback_ops,
            r.alignments,
            if ri + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"presets\": [\n");
    for (ri, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"db\": \"{}\", \"gapped_cells\": {}, \
             \"scalar_gapped_ms\": {:.3}, \"simd_gapped_ms\": {:.3}, \
             \"scalar_cells_per_sec\": {:.0}, \"simd_cells_per_sec\": {:.0}, \
             \"gapped_speedup\": {:.3}, \
             \"scalar_stage_ms\": {:.3}, \"simd_stage_ms\": {:.3}, \
             \"stage_speedup\": {:.3}, \"alignments\": {}}}{}\n",
            r.preset,
            r.cells,
            r.scalar_gapped_ms,
            r.simd_gapped_ms,
            r.scalar_cps(),
            r.simd_cps(),
            r.scalar_gapped_ms / r.simd_gapped_ms,
            r.scalar_stage_ms,
            r.simd_stage_ms,
            r.scalar_stage_ms / r.simd_stage_ms,
            r.alignments,
            if ri + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
