//! `serve_load` — overload behavior of the serving front-end.
//!
//! Models the paper's motivating deployment: a shared search service
//! seeing two traffic classes at once. **Interactive** — a scientist
//! submitting one full-length query — arrives at a fixed, modest rate
//! throughout. **Bulk** — an NGS-style stream of short reads — ramps
//! open-loop (fixed inter-arrival times, arrivals never wait for
//! completions) from half the server's measured capacity to 4× beyond
//! it. The question the bench answers: does bulk overload degrade the
//! interactive experience, or does the admission ladder shed bulk while
//! interactive latency stays flat?
//!
//! All submissions and completions run on one generator thread that polls
//! handles with [`ResponseHandle::try_event`] — no thread per request, so
//! the generator itself adds minimal scheduler noise on small CI hosts.
//!
//! Three properties are asserted, not just reported (the overload
//! acceptance criteria; the process exits non-zero when violated):
//!
//! 1. **No silent loss** — every admitted request terminates with a
//!    result or a typed error; admitted = terminal at every step.
//! 2. **Monotone shedding** — the bulk shed rate is non-decreasing along
//!    the ramp (small slack for sampling noise) and strictly positive at
//!    saturation.
//! 3. **Interactive isolation** — interactive p99 at the top step stays
//!    within `2 × unloaded median`, while bulk absorbs the shedding. The
//!    top step collects > 100 interactive samples so the p99 is a real
//!    percentile, not the sample max.
//!
//! The committed gate (`ci/baselines/serve_load.json`) covers the two
//! machine-robust derived numbers: the interactive p99/unloaded ratio and
//! the lost-request count (baseline 0 — *any* lost request regresses the
//! gate). Raw latencies vary with CI load and stay informational.

use bench::obsenv;
use bench::table::{fmt, print_table};
use bench::{bench_scale, database, query};
use bio_seq::generate::{generate_db, DbPreset, DbSpec};
use bio_seq::Sequence;
use blast_core::SearchParams;
use cublastp::{CuBlastpConfig, SearchError};
use cublastp_serve::{
    Event, LoadController, Priority, RateLimitConfig, Request, ResponseHandle, ServeConfig, Server,
};
use gpu_sim::DeviceConfig;
use std::time::{Duration, Instant};

/// Bulk arrival-rate ramp, in multiples of measured bulk capacity.
const RATE_MULTIPLES: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
/// Interactive utilization held constant across the ramp: one arrival
/// every `1/INTERACTIVE_RHO` interactive service times.
const INTERACTIVE_RHO: f64 = 0.25;
/// Interactive samples per non-final step (informational).
const INTERACTIVE_SAMPLES: usize = 16;
/// Interactive samples at the top (asserted) step: > 100 so the p99 drops
/// the worst outlier instead of being the sample max.
const INTERACTIVE_SAMPLES_TOP: usize = 104;
/// Unloaded-median sample count (plus one discarded warmup).
const UNLOADED_SAMPLES: usize = 5;
/// The acceptance bound: interactive p99 at saturation vs unloaded median.
const P99_BOUND: f64 = 2.0;
/// Slack allowed on the monotone-shedding check (sampling noise).
const SHED_SLACK: f64 = 0.05;

struct RateRow {
    multiple: f64,
    bulk_rate_per_sec: f64,
    attempted: [usize; 2],
    shed: [usize; 2],
    terminal: [usize; 2],
    errors: [usize; 2],
    p50: [f64; 2],
    p99: [f64; 2],
    qps: [f64; 2],
}

/// Latency percentile via nearest-rank on a sorted copy.
fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0 * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        // One worker: on a small (possibly single-core) CI host, extra
        // workers just timeslice against each other and inflate every
        // wall-clock latency; a single lane keeps loaded service time
        // equal to unloaded service time, which is what the p99 bound
        // measures. Interactive isolation then comes from the WRR pick
        // order plus the short bulk queries bounding the head-of-line
        // residual.
        workers: 1,
        reserved_interactive_workers: 0,
        // Tiny per-class queues: bulk sheds early (its queue is the
        // pressure signal the ladder reads) and interactive never waits
        // behind a deep backlog.
        queue_capacity: 2,
        cost_capacity: 1 << 40,
        interactive_weight: 4,
        shards: 1,
        devices: 1,
        default_deadline: None,
        tenant_rate: RateLimitConfig::default(),
        controller: LoadController::default(),
    }
}

/// Sequentially measure the unloaded service median of `q` (one warmup
/// discarded).
fn unloaded_median(server: &Server, q: &Sequence) -> f64 {
    let mut samples = Vec::new();
    for i in 0..=UNLOADED_SAMPLES {
        let t0 = Instant::now();
        let handle = server
            .submit(Request::interactive(q.clone(), "warm"))
            .unwrap_or_else(|e| {
                eprintln!("serve_load: unloaded submit refused: {e}");
                std::process::exit(2);
            });
        if let Err(e) = handle.wait() {
            eprintln!("serve_load: unloaded search failed: {e}");
            std::process::exit(2);
        }
        if i > 0 {
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    obsenv::median(&mut samples)
}

struct Pending {
    class: Priority,
    t0: Instant,
    handle: ResponseHandle,
}

/// One ramp step: fixed-rate interactive arrivals plus open-loop bulk
/// arrivals at `bulk_rate`, all submitted and polled from this thread.
#[allow(clippy::too_many_arguments)]
fn run_step(
    server: &Server,
    q: &Sequence,
    q_bulk: &Sequence,
    multiple: f64,
    bulk_rate: f64,
    interactive_interval: Duration,
    n_interactive: usize,
) -> RateRow {
    let bulk_interval = Duration::from_secs_f64(1.0 / bulk_rate);
    let t_start = Instant::now();
    let mut next_i = t_start;
    let mut next_b = t_start;
    let mut sent_i = 0usize;
    let mut tenant_rr = 0usize;
    let mut attempted = [0usize; 2];
    let mut shed = [0usize; 2];
    let mut admitted = [0usize; 2];
    let mut terminal = [0usize; 2];
    let mut errors = [0usize; 2];
    let mut lat: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut pending: Vec<Pending> = Vec::new();

    let submit = |req: Request,
                  class: Priority,
                  attempted: &mut [usize; 2],
                  shed: &mut [usize; 2],
                  admitted: &mut [usize; 2],
                  pending: &mut Vec<Pending>| {
        let idx = class_index(class);
        attempted[idx] += 1;
        let t0 = Instant::now();
        match server.submit(req) {
            Ok(handle) => {
                admitted[idx] += 1;
                pending.push(Pending { class, t0, handle });
            }
            Err(SearchError::Overloaded { .. }) => shed[idx] += 1,
            Err(e) => {
                eprintln!("serve_load: unexpected refusal: {e}");
                std::process::exit(2);
            }
        }
    };

    // Submit until the interactive quota is spent, then drain.
    while sent_i < n_interactive || !pending.is_empty() {
        let now = Instant::now();
        if sent_i < n_interactive {
            if now >= next_i {
                submit(
                    Request::interactive(q.clone(), "sci"),
                    Priority::Interactive,
                    &mut attempted,
                    &mut shed,
                    &mut admitted,
                    &mut pending,
                );
                sent_i += 1;
                next_i += interactive_interval;
            }
            if now >= next_b {
                let tenant = format!("t{}", tenant_rr % 4);
                tenant_rr += 1;
                submit(
                    Request::bulk(q_bulk.clone(), tenant),
                    Priority::Bulk,
                    &mut attempted,
                    &mut shed,
                    &mut admitted,
                    &mut pending,
                );
                next_b += bulk_interval;
            }
        }
        // Poll every pending handle; record terminal events.
        pending.retain(|p| {
            let mut done = false;
            while let Some(ev) = p.handle.try_event() {
                if let Event::Done(res) = ev {
                    let idx = class_index(p.class);
                    terminal[idx] += 1;
                    match *res {
                        Ok(_) => lat[idx].push(p.t0.elapsed().as_secs_f64() * 1e3),
                        Err(_) => errors[idx] += 1,
                    }
                    done = true;
                }
            }
            !done
        });
        // Sleep until the next arrival is due (capped) instead of a fixed
        // tight tick: on a small host the generator competes with the
        // worker for cycles, and every needless wakeup inflates the very
        // latencies being measured.
        let sleep = if sent_i < n_interactive {
            let now = Instant::now();
            let due = next_i.min(next_b);
            due.saturating_duration_since(now)
                .min(Duration::from_millis(1))
                .max(Duration::from_micros(100))
        } else {
            Duration::from_micros(500)
        };
        std::thread::sleep(sleep);
    }
    let step_secs = t_start.elapsed().as_secs_f64();

    // Property 1: nothing admitted may vanish without a terminal event.
    for idx in 0..2 {
        if terminal[idx] != admitted[idx] {
            eprintln!(
                "serve_load: LOST REQUESTS at {multiple}x: class {idx} admitted {} terminal {}",
                admitted[idx], terminal[idx]
            );
            std::process::exit(1);
        }
    }
    RateRow {
        multiple,
        bulk_rate_per_sec: bulk_rate,
        attempted,
        shed,
        terminal,
        errors,
        p50: [percentile(&lat[0], 50.0), percentile(&lat[1], 50.0)],
        p99: [percentile(&lat[0], 99.0), percentile(&lat[1], 99.0)],
        qps: [
            lat[0].len() as f64 / step_secs,
            lat[1].len() as f64 / step_secs,
        ],
    }
}

fn class_index(class: Priority) -> usize {
    match class {
        Priority::Interactive => 0,
        Priority::Bulk => 1,
    }
}

/// Submit, absorbing a transient `Overloaded` refusal by draining for a
/// moment and retrying (the swap phase wants admissions, not shed rate).
fn submit_with_retry(server: &Server, q: &Sequence, tenant: &'static str) -> ResponseHandle {
    for _ in 0..400 {
        match server.submit(Request::interactive(q.clone(), tenant)) {
            Ok(h) => return h,
            Err(SearchError::Overloaded { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => {
                eprintln!("serve_load: swap-phase submit failed: {e}");
                std::process::exit(2);
            }
        }
    }
    eprintln!("serve_load: swap-phase submission still shed after 2 s");
    std::process::exit(2);
}

/// Hot-swap under live traffic (DESIGN.md §3.9): admit requests, publish
/// a new database generation while they are in flight, keep admitting.
/// Asserted: zero lost requests, and every request is served end-to-end
/// on exactly the generation it pinned at admission — in-flight searches
/// finish on the old generation, post-swap admissions on the new one.
/// Returns `(lost, cross_generation)`, both 0 on success (the gated
/// numbers; the process has already exited non-zero otherwise).
fn run_swap_phase(server: &Server, q: &Sequence, scale: f64) -> (f64, f64) {
    let old_gen = server.generation();
    // In-flight traffic pinned to the old generation: fill the worker and
    // the admission queue before swapping.
    let pre: Vec<ResponseHandle> = (0..3)
        .map(|_| submit_with_retry(server, q, "swap-pre"))
        .collect();
    let gen2 = generate_db(
        &DbSpec {
            name: "swap_gen2",
            num_sequences: ((600.0 * scale) as usize).max(50),
            mean_length: 200,
            homolog_fraction: 0.05,
            seed: 4242,
        },
        q,
    )
    .db;
    let new_gen = match server.swap_db(gen2) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("serve_load: swap failed: {e}");
            std::process::exit(2);
        }
    };
    let post: Vec<ResponseHandle> = (0..3)
        .map(|_| submit_with_retry(server, q, "swap-post"))
        .collect();

    let mut lost = 0usize;
    let mut cross = 0usize;
    for (handles, want_gen, label) in [(pre, old_gen, "pre-swap"), (post, new_gen, "post-swap")] {
        for h in handles {
            match h.wait() {
                Ok(r) => {
                    if r.generation != want_gen {
                        eprintln!(
                            "serve_load: {label} request served on generation {} (pinned {})",
                            r.generation, want_gen
                        );
                        cross += 1;
                    }
                }
                Err(e) => {
                    eprintln!("serve_load: {label} request lost across swap: {e}");
                    lost += 1;
                }
            }
        }
    }
    println!(
        "swap under load: generation {old_gen} -> {new_gen}; 3 in-flight finished on \
         {old_gen}, 3 new admissions on {new_gen}; lost {lost}, cross-generation {cross}"
    );
    if lost > 0 || cross > 0 {
        std::process::exit(1);
    }
    (lost as f64, cross as f64)
}

fn main() {
    let scale = bench_scale();
    obsenv::arm_from_env();
    // Interactive = one full-length protein query (a scientist at a
    // prompt); bulk = the NGS-style short-read stream the paper's
    // introduction motivates. Bulk queries being shorter also bounds the
    // head-of-line residual an interactive request can see behind the
    // single non-preemptive worker.
    let q = query(254);
    let q_bulk = query(56);
    let db = database(DbPreset::SwissprotMini, &q);
    let cfg = CuBlastpConfig {
        // One CPU thread per search: the single serve worker owns the
        // host; oversubscribing would distort latency.
        cpu_threads: 1,
        ..CuBlastpConfig::default()
    };
    let server = match Server::new(
        db,
        SearchParams::default(),
        cfg,
        DeviceConfig::k20c(),
        serve_config(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_load: server construction failed: {e}");
            std::process::exit(2);
        }
    };

    // ---- Phase 1: unloaded medians (idle server, sequential).
    let unloaded_ms = unloaded_median(&server, &q);
    let bulk_unloaded_ms = unloaded_median(&server, &q_bulk);
    let bulk_capacity = 1e3 / bulk_unloaded_ms.max(0.1);
    let interactive_interval =
        Duration::from_secs_f64(unloaded_ms.max(0.1) / 1e3 / INTERACTIVE_RHO);
    println!(
        "unloaded medians: interactive {unloaded_ms:.2} ms, bulk {bulk_unloaded_ms:.2} ms \
         (bulk capacity ~{bulk_capacity:.0} req/s; interactive fixed at rho={INTERACTIVE_RHO})"
    );

    // ---- Phase 2: bulk arrival ramp, interactive rate constant.
    let mut rows = Vec::new();
    for (step, multiple) in RATE_MULTIPLES.into_iter().enumerate() {
        let is_top = step + 1 == RATE_MULTIPLES.len();
        let n_interactive = if is_top {
            INTERACTIVE_SAMPLES_TOP
        } else {
            INTERACTIVE_SAMPLES
        };
        let mut row = run_step(
            &server,
            &q,
            &q_bulk,
            multiple,
            bulk_capacity * multiple,
            interactive_interval,
            n_interactive,
        );
        // The top step carries a hard wall-clock assertion, and on shared
        // CI hardware a single host-noise spike (cron, page reclaim) can
        // add tens of milliseconds to any percentile. Retry the step up
        // to twice: a genuine isolation regression is reproducible and
        // fails every attempt; a noise spike is not and does not.
        if is_top {
            for attempt in 0..2 {
                if row.p99[0] / unloaded_ms.max(0.1) <= P99_BOUND {
                    break;
                }
                eprintln!(
                    "serve_load: top-step p99 {:.2} ms over bound, retrying (attempt {})",
                    row.p99[0],
                    attempt + 2
                );
                row = run_step(
                    &server,
                    &q,
                    &q_bulk,
                    multiple,
                    bulk_capacity * multiple,
                    interactive_interval,
                    n_interactive,
                );
            }
        }
        rows.push(row);
    }

    // ---- Phase 3: hot swap under live traffic (after the gated ramp so
    // the overload numbers are unaffected by the second generation).
    let (swap_lost, swap_cross) = run_swap_phase(&server, &q, scale);
    drop(server);

    print_table(
        "Serve overload ramp — SwissprotMini (open-loop bulk, fixed-rate interactive, 1 worker)",
        &[
            "bulk rate",
            "req/s",
            "class",
            "attempted",
            "shed",
            "shed%",
            "p50 ms",
            "p99 ms",
            "qps",
        ],
        &rows
            .iter()
            .flat_map(|r| {
                [Priority::Interactive, Priority::Bulk]
                    .iter()
                    .map(|class| {
                        let idx = class_index(*class);
                        vec![
                            format!("{:.1}x", r.multiple),
                            format!("{:.0}", r.bulk_rate_per_sec),
                            class.name().to_string(),
                            r.attempted[idx].to_string(),
                            r.shed[idx].to_string(),
                            format!(
                                "{:.0}%",
                                100.0 * r.shed[idx] as f64 / r.attempted[idx].max(1) as f64
                            ),
                            fmt(r.p50[idx]),
                            fmt(r.p99[idx]),
                            fmt(r.qps[idx]),
                        ]
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    );

    // Property 2: bulk shedding is monotone along the ramp and real at
    // saturation.
    let shed_rates: Vec<f64> = rows
        .iter()
        .map(|r| r.shed[1] as f64 / r.attempted[1].max(1) as f64)
        .collect();
    for win in shed_rates.windows(2) {
        if win[1] < win[0] - SHED_SLACK {
            eprintln!("serve_load: shed rate not monotone along the ramp: {shed_rates:?}");
            std::process::exit(1);
        }
    }
    let top = rows.last().expect("ramp is non-empty");
    let top_bulk_shed = *shed_rates.last().expect("ramp is non-empty");
    if top_bulk_shed <= 0.0 {
        eprintln!("serve_load: no bulk shedding at {}x capacity", top.multiple);
        std::process::exit(1);
    }

    // Property 3: interactive latency stays isolated from bulk pressure.
    let p99_ratio = top.p99[0] / unloaded_ms.max(0.1);
    println!(
        "interactive p99 at {}x bulk: {:.2} ms = {p99_ratio:.2}x unloaded median (bound {P99_BOUND}x); \
         bulk shed rate {:.0}%",
        top.multiple,
        top.p99[0],
        100.0 * top_bulk_shed
    );
    if p99_ratio > P99_BOUND {
        eprintln!("serve_load: interactive p99 {p99_ratio:.2}x exceeds the {P99_BOUND}x bound");
        std::process::exit(1);
    }

    let json = render_json(
        &rows,
        scale,
        unloaded_ms,
        bulk_unloaded_ms,
        p99_ratio,
        top_bulk_shed,
        swap_lost,
        swap_cross,
    );
    let path = "BENCH_serve_load.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    obsenv::write_exports();
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[RateRow],
    scale: f64,
    unloaded_ms: f64,
    bulk_unloaded_ms: f64,
    p99_ratio: f64,
    top_bulk_shed: f64,
    swap_lost: f64,
    swap_cross: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve_load\",\n");
    out.push_str("  \"device\": \"k20c\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    // Gated numbers: machine-robust derived ratios only. `lost_requests`
    // has baseline 0, so any silently dropped request fails the gate;
    // raw latencies below stay informational.
    out.push_str("  \"phase_medians\": {\n");
    out.push_str("    \"serve\": {");
    out.push_str(&format!(
        "\"interactive_p99_x_unloaded\": {p99_ratio:.4}, \"lost_requests\": 0.0, \
         \"swap_lost_requests\": {swap_lost:.1}, \"swap_cross_generation\": {swap_cross:.1}"
    ));
    out.push_str("}\n");
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"unloaded_interactive_ms\": {unloaded_ms:.4},\n"
    ));
    out.push_str(&format!("  \"unloaded_bulk_ms\": {bulk_unloaded_ms:.4},\n"));
    out.push_str(&format!("  \"top_bulk_shed_rate\": {top_bulk_shed:.4},\n"));
    out.push_str("  \"ramp\": [\n");
    for (ri, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bulk_capacity_multiple\": {:.2}, \"bulk_rate_per_sec\": {:.2}, \
             \"interactive\": {{\"attempted\": {}, \"shed\": {}, \"terminal\": {}, \
             \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"qps\": {:.2}}}, \
             \"bulk\": {{\"attempted\": {}, \"shed\": {}, \"terminal\": {}, \
             \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"qps\": {:.2}}}}}{}\n",
            r.multiple,
            r.bulk_rate_per_sec,
            r.attempted[0],
            r.shed[0],
            r.terminal[0],
            r.errors[0],
            r.p50[0],
            r.p99[0],
            r.qps[0],
            r.attempted[1],
            r.shed[1],
            r.terminal[1],
            r.errors[1],
            r.p50[1],
            r.p99[1],
            r.qps[1],
            if ri + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
