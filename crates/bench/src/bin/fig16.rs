//! Fig. 16 — The three fine-grained ungapped-extension strategies
//! (diagonal-, hit-, window-based) compared on (a) kernel execution time
//! and (b) divergence overhead, for the three queries on swissprot.
//!
//! The paper's claims: window-based wins on time (12–24 % over
//! diagonal-based, 27–38 % over hit-based) and has by far the lowest
//! divergence overhead.

use bench::runners::{figure_config, run_cublastp_detailed};
use bench::table::{fmt, pct, print_table};
use bench::{database, query, QUERY_LENGTHS};
use bio_seq::generate::DbPreset;
use blast_core::SearchParams;
use cublastp::{CuBlastpConfig, ExtensionStrategy};
use gpu_sim::DeviceConfig;

fn main() {
    let params = SearchParams::default();
    let device = DeviceConfig::k20c();
    let strategies = [
        ("diagonal", ExtensionStrategy::Diagonal),
        ("hit", ExtensionStrategy::Hit),
        ("window", ExtensionStrategy::Window),
    ];

    let mut time_rows = Vec::new();
    let mut div_rows = Vec::new();
    for len in QUERY_LENGTHS {
        let q = query(len);
        let db = database(DbPreset::SwissprotMini, &q);
        let mut times = vec![format!("query{len}")];
        let mut divs = vec![format!("query{len}")];
        for (_, strategy) in strategies {
            let cfg = CuBlastpConfig {
                extension: strategy,
                ..figure_config()
            };
            let (r, _) = run_cublastp_detailed(&q, &db, params, cfg);
            let ext = r
                .kernel("ungapped_extension")
                .expect("extension kernel present");
            times.push(fmt(ext.time_ms(&device)));
            divs.push(pct(ext.divergence_overhead()));
        }
        time_rows.push(times);
        div_rows.push(divs);
    }

    print_table(
        "Fig. 16(a) — Ungapped-extension kernel time by strategy (ms)",
        &["query", "diagonal-based", "hit-based", "window-based"],
        &time_rows,
    );
    print_table(
        "Fig. 16(b) — Divergence overhead by strategy",
        &["query", "diagonal-based", "hit-based", "window-based"],
        &div_rows,
    );
}
