//! The perf-regression gate: compare a bench run's `phase_medians`
//! against a committed baseline.
//!
//! Both bench binaries write a `"phase_medians"` section into their JSON
//! report — per-phase medians of *simulated* time, which are
//! deterministic for a given `BENCH_SCALE`, so the gate measures the cost
//! model and the pipeline's phase structure, not the CI machine's mood.
//! (Host wall-clock numbers stay in the other sections, informational.)
//!
//! The gate fails when any phase's measured median exceeds its baseline
//! by more than the tolerance, or when a baseline phase is missing from
//! the measurement (a silently dropped phase must not pass). New phases
//! absent from the baseline are reported but do not fail — they start
//! gating once the baseline is refreshed.

use obs::json::{parse, Value};

/// Absolute slack added on top of the relative tolerance, so a baseline
/// of exactly 0.0 ms does not fail on any positive measurement jitter.
const ABS_SLACK_MS: f64 = 1e-6;

/// One compared phase.
#[derive(Debug)]
pub struct GateRow {
    /// Dotted key under `phase_medians` (e.g. `swissprot_mini.hit_sorting`).
    pub key: String,
    /// Baseline median (ms).
    pub baseline: f64,
    /// Measured median (ms); `NaN` when missing from the measurement.
    pub measured: f64,
    /// Relative change, `(measured - baseline) / baseline`, as a percent.
    pub delta_pct: f64,
    /// Whether this phase passes the gate.
    pub ok: bool,
}

/// Result of a gate comparison.
#[derive(Debug)]
pub struct Comparison {
    /// Per-phase rows, baseline order.
    pub rows: Vec<GateRow>,
    /// Phases present in the measurement but not the baseline.
    pub new_phases: Vec<String>,
    /// Number of failing rows.
    pub failures: usize,
}

impl Comparison {
    /// True when every baseline phase passed.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// Pull the flattened `phase_medians` leaves out of a bench report.
fn phase_medians(doc: &Value, what: &str) -> Result<Vec<(String, f64)>, String> {
    let section = doc
        .get("phase_medians")
        .ok_or_else(|| format!("{what}: no \"phase_medians\" section"))?;
    let mut out = Vec::new();
    flatten(section, String::new(), &mut out);
    if out.is_empty() {
        return Err(format!("{what}: \"phase_medians\" has no numeric leaves"));
    }
    Ok(out)
}

/// Depth-first flatten of nested objects into dotted keys; numeric
/// leaves only.
fn flatten(v: &Value, prefix: String, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Obj(map) => {
            for (k, child) in map {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(child, key, out);
            }
        }
        Value::Num(n) => out.push((prefix, *n)),
        _ => {}
    }
}

/// Compare two bench reports' `phase_medians` with a relative tolerance
/// (`0.15` = +15%). Errors on unparseable input or a missing section;
/// regressions and missing phases land as failing rows instead.
pub fn compare(
    baseline_json: &str,
    measured_json: &str,
    tolerance: f64,
) -> Result<Comparison, String> {
    let base_doc = parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let meas_doc = parse(measured_json).map_err(|e| format!("measured: {e}"))?;
    let base = phase_medians(&base_doc, "baseline")?;
    let meas = phase_medians(&meas_doc, "measured")?;

    let mut rows = Vec::new();
    let mut failures = 0;
    for (key, b) in &base {
        let row = match meas.iter().find(|(k, _)| k == key) {
            Some((_, m)) => {
                let ok = *m <= b * (1.0 + tolerance) + ABS_SLACK_MS;
                let delta_pct = if *b > 0.0 {
                    100.0 * (m - b) / b
                } else if *m > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                GateRow {
                    key: key.clone(),
                    baseline: *b,
                    measured: *m,
                    delta_pct,
                    ok,
                }
            }
            None => GateRow {
                key: key.clone(),
                baseline: *b,
                measured: f64::NAN,
                delta_pct: f64::NAN,
                ok: false,
            },
        };
        if !row.ok {
            failures += 1;
        }
        rows.push(row);
    }
    let new_phases = meas
        .iter()
        .filter(|(k, _)| !base.iter().any(|(bk, _)| bk == k))
        .map(|(k, _)| k.clone())
        .collect();
    Ok(Comparison {
        rows,
        new_phases,
        failures,
    })
}

/// Render a comparison as the table the CI log shows.
pub fn render(c: &Comparison, tolerance: f64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>9}  gate (tolerance +{:.0}%)",
        "phase",
        "baseline ms",
        "measured ms",
        "delta",
        tolerance * 100.0
    );
    for r in &c.rows {
        let delta = if r.delta_pct.is_nan() {
            "missing".to_string()
        } else {
            format!("{:+.1}%", r.delta_pct)
        };
        let _ = writeln!(
            out,
            "{:<44} {:>12.4} {:>12.4} {:>9}  {}",
            r.key,
            r.baseline,
            r.measured,
            delta,
            if r.ok { "ok" } else { "FAIL" }
        );
    }
    for k in &c.new_phases {
        let _ = writeln!(out, "{k:<44} (new phase, not in baseline — not gated)");
    }
    let _ = writeln!(out, "{} phase(s), {} failed", c.rows.len(), c.failures);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ms: &[(&str, f64)]) -> String {
        let leaves: Vec<String> = ms.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!(
            "{{\"bench\": \"t\", \"phase_medians\": {{\"db\": {{{}}}}}}}",
            leaves.join(", ")
        )
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("hit_detection", 1.5), ("hit_sorting", 0.25)]);
        let c = compare(&r, &r, 0.15).unwrap();
        assert!(c.passed());
        assert_eq!(c.rows.len(), 2);
        assert!(c.rows.iter().all(|r| r.delta_pct == 0.0));
    }

    #[test]
    fn small_regression_within_tolerance_passes() {
        let base = report(&[("hit_detection", 1.0)]);
        let meas = report(&[("hit_detection", 1.1)]);
        assert!(compare(&base, &meas, 0.15).unwrap().passed());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = report(&[("hit_detection", 1.0), ("hit_sorting", 0.2)]);
        let meas = report(&[("hit_detection", 1.2), ("hit_sorting", 0.2)]);
        let c = compare(&base, &meas, 0.15).unwrap();
        assert_eq!(c.failures, 1);
        assert_eq!(c.rows[0].key, "db.hit_detection");
        assert!(!c.rows[0].ok);
        assert!(c.rows[1].ok);
    }

    #[test]
    fn tightened_baseline_fails_the_same_measurement() {
        // The acceptance check: the gate must demonstrably fail when the
        // baseline is tightened under an unchanged measurement.
        let meas = report(&[("hit_detection", 1.0)]);
        let honest = report(&[("hit_detection", 1.0)]);
        let tightened = report(&[("hit_detection", 0.5)]);
        assert!(compare(&honest, &meas, 0.15).unwrap().passed());
        assert!(!compare(&tightened, &meas, 0.15).unwrap().passed());
    }

    #[test]
    fn improvement_passes_but_is_reported() {
        let base = report(&[("hit_detection", 2.0)]);
        let meas = report(&[("hit_detection", 1.0)]);
        let c = compare(&base, &meas, 0.15).unwrap();
        assert!(c.passed());
        assert!((c.rows[0].delta_pct - (-50.0)).abs() < 1e-9);
    }

    #[test]
    fn missing_phase_in_measurement_fails() {
        let base = report(&[("hit_detection", 1.0), ("hit_sorting", 0.2)]);
        let meas = report(&[("hit_detection", 1.0)]);
        let c = compare(&base, &meas, 0.15).unwrap();
        assert_eq!(c.failures, 1);
        assert!(c.rows[1].measured.is_nan());
    }

    #[test]
    fn new_phase_in_measurement_is_reported_not_failed() {
        let base = report(&[("hit_detection", 1.0)]);
        let meas = report(&[("hit_detection", 1.0), ("hit_sorting", 0.2)]);
        let c = compare(&base, &meas, 0.15).unwrap();
        assert!(c.passed());
        assert_eq!(c.new_phases, vec!["db.hit_sorting".to_string()]);
    }

    #[test]
    fn zero_baseline_gets_absolute_slack() {
        let base = report(&[("d2h_ms", 0.0)]);
        let ok = report(&[("d2h_ms", 0.0)]);
        assert!(compare(&base, &ok, 0.15).unwrap().passed());
        let bad = report(&[("d2h_ms", 0.5)]);
        assert!(!compare(&base, &bad, 0.15).unwrap().passed());
    }

    #[test]
    fn missing_section_is_an_error() {
        assert!(compare("{}", "{}", 0.15).is_err());
        let ok = report(&[("a", 1.0)]);
        assert!(compare(&ok, "{\"bench\": \"x\"}", 0.15).is_err());
        assert!(compare("not json", &ok, 0.15).is_err());
    }

    #[test]
    fn render_mentions_failures() {
        let base = report(&[("hit_detection", 1.0)]);
        let meas = report(&[("hit_detection", 5.0)]);
        let c = compare(&base, &meas, 0.15).unwrap();
        let text = render(&c, 0.15);
        assert!(text.contains("FAIL"));
        assert!(text.contains("db.hit_detection"));
    }
}
