//! Canonical workloads of the paper's evaluation (§4): three queries of
//! length 127 / 517 / 1054 against the `swissprot` and `env_nr` presets.

use bio_seq::generate::{generate_db, make_query, DbPreset};
use bio_seq::{Sequence, SequenceDb};

/// The paper's three query lengths (short / medium / long).
pub const QUERY_LENGTHS: [usize; 3] = [127, 517, 1054];

/// Scale factor for database sizes, from `BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// The named query of a given length (`query127` etc.).
pub fn query(len: usize) -> Sequence {
    make_query(len)
}

/// A preset database with homologies planted against `q`, scaled by
/// [`bench_scale`].
pub fn database(preset: DbPreset, q: &Sequence) -> SequenceDb {
    let spec = preset.spec().scaled(bench_scale());
    generate_db(&spec, q).db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_have_expected_lengths() {
        for len in QUERY_LENGTHS {
            assert_eq!(query(len).len(), len);
        }
    }

    #[test]
    fn default_scale_is_one() {
        // The test environment does not set BENCH_SCALE.
        if std::env::var("BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), 1.0);
        }
    }
}
