//! Canonical workloads of the paper's evaluation (§4): three queries of
//! length 127 / 517 / 1054 against the `swissprot` and `env_nr` presets.

use bio_seq::generate::{generate_db, make_query, DbPreset};
use bio_seq::{Sequence, SequenceDb};

/// The paper's three query lengths (short / medium / long).
pub const QUERY_LENGTHS: [usize; 3] = [127, 517, 1054];

/// Parse a `BENCH_SCALE` value. `None` (unset) is the default 1.0; a set
/// value must parse as a finite, strictly positive float — anything else
/// is an error, never a silent fallback (a typo like `BENCH_SCALE=O.25`
/// must not quietly run the full-size benchmark in CI).
pub fn parse_bench_scale(raw: Option<&str>) -> Result<f64, String> {
    let Some(s) = raw else { return Ok(1.0) };
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("BENCH_SCALE={s:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("BENCH_SCALE={s:?} must be finite"));
    }
    if v <= 0.0 {
        return Err(format!("BENCH_SCALE={s:?} must be > 0"));
    }
    Ok(v)
}

/// Scale factor for database sizes, from `BENCH_SCALE` (default 1.0).
/// An invalid value aborts the benchmark with exit code 2 — the bench
/// binaries call this before doing any work, so the failure is loud and
/// immediate.
pub fn bench_scale() -> f64 {
    let raw = std::env::var("BENCH_SCALE").ok();
    match parse_bench_scale(raw.as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// The named query of a given length (`query127` etc.).
pub fn query(len: usize) -> Sequence {
    make_query(len)
}

/// A preset database with homologies planted against `q`, scaled by
/// [`bench_scale`].
pub fn database(preset: DbPreset, q: &Sequence) -> SequenceDb {
    let spec = preset.spec().scaled(bench_scale());
    generate_db(&spec, q).db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_have_expected_lengths() {
        for len in QUERY_LENGTHS {
            assert_eq!(query(len).len(), len);
        }
    }

    #[test]
    fn default_scale_is_one() {
        // The test environment does not set BENCH_SCALE.
        if std::env::var("BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), 1.0);
        }
    }

    #[test]
    fn parse_bench_scale_accepts_valid_values() {
        assert_eq!(parse_bench_scale(None), Ok(1.0));
        assert_eq!(parse_bench_scale(Some("0.25")), Ok(0.25));
        assert_eq!(parse_bench_scale(Some(" 2 ")), Ok(2.0));
        assert_eq!(parse_bench_scale(Some("1e-3")), Ok(0.001));
    }

    #[test]
    fn parse_bench_scale_rejects_garbage() {
        for bad in ["O.25", "", "0", "-1", "nan", "inf", "0.5x"] {
            let r = parse_bench_scale(Some(bad));
            assert!(r.is_err(), "{bad:?} must be rejected, got {r:?}");
            assert!(
                r.unwrap_err().contains("BENCH_SCALE"),
                "error must name the variable"
            );
        }
    }
}
