//! Pipeline runners: execute each of the five compared systems on a
//! workload and reduce the outcome to the numbers the figures need.

use baselines::{CudaBlastp, GpuBlastp};
use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::search::{search_parallel, search_sequential, SearchEngine};
use cublastp::{CuBlastp, CuBlastpConfig, CuBlastpResult};
use gpu_sim::DeviceConfig;

/// What every pipeline reports for the comparison figures.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Pipeline label.
    pub name: String,
    /// Time of the paper's "critical phases": hit detection + ungapped
    /// extension (GPU kernel time for the GPU codes, measured wall-clock
    /// for the CPU codes).
    pub critical_ms: f64,
    /// End-to-end time including gapped extension, traceback, transfers
    /// and setup.
    pub overall_ms: f64,
    /// Number of reported alignments (output-identity sanity check).
    pub hits: usize,
    /// Identity key of the ranked report.
    pub identity: Vec<(usize, i32, u32, u32, u32, u32)>,
}

/// Time the construction of a search engine (DFA + PSSM + cutoffs) so
/// setup is charged symmetrically across all pipelines (cuBLASTP counts
/// it in its "other" bucket).
fn timed_engine(q: &Sequence, params: SearchParams, db: &SequenceDb) -> (SearchEngine, f64) {
    let t0 = std::time::Instant::now();
    let engine = SearchEngine::new(q.clone(), params, db);
    (engine, t0.elapsed().as_secs_f64() * 1e3)
}

/// Sequential FSA-BLAST stand-in (single-threaded CPU).
pub fn run_fsa_blast(q: &Sequence, db: &SequenceDb, params: SearchParams) -> RunSummary {
    let (engine, setup_ms) = timed_engine(q, params, db);
    let r = search_sequential(&engine, db);
    RunSummary {
        name: "FSA-BLAST".into(),
        critical_ms: r.times.hit_ungapped.as_secs_f64() * 1e3,
        overall_ms: r.times.total().as_secs_f64() * 1e3 + setup_ms,
        hits: r.report.hits.len(),
        identity: r.report.identity_key(),
    }
}

/// Multithreaded NCBI-BLAST stand-in.
pub fn run_ncbi_blast(
    q: &Sequence,
    db: &SequenceDb,
    params: SearchParams,
    threads: usize,
) -> RunSummary {
    let (engine, setup_ms) = timed_engine(q, params, db);
    let r = search_parallel(&engine, db, threads);
    RunSummary {
        name: format!("NCBI-BLAST({threads}t)"),
        critical_ms: r.times.hit_ungapped.as_secs_f64() * 1e3,
        overall_ms: r.times.total().as_secs_f64() * 1e3 + setup_ms,
        hits: r.report.hits.len(),
        identity: r.report.identity_key(),
    }
}

/// cuBLASTP on the simulated K20c; returns the full result for figure
/// binaries that need kernel-level detail, plus the summary.
pub fn run_cublastp_detailed(
    q: &Sequence,
    db: &SequenceDb,
    params: SearchParams,
    cfg: CuBlastpConfig,
) -> (CuBlastpResult, RunSummary) {
    let searcher = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), db);
    // The figure binaries run without fault injection, so a search error
    // here means the workload or config is broken — report it and exit
    // with the device-category code instead of panicking mid-figure.
    let r = match searcher.search(db) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchmark search failed ({}): {e}", e.category());
            std::process::exit(4);
        }
    };
    let summary = RunSummary {
        name: "cuBLASTP".into(),
        critical_ms: r.timing.critical_ms(),
        overall_ms: r.timing.total_ms(),
        hits: r.report.hits.len(),
        identity: r.report.identity_key(),
    };
    (r, summary)
}

/// cuBLASTP summary-only runner.
pub fn run_cublastp(
    q: &Sequence,
    db: &SequenceDb,
    params: SearchParams,
    cfg: CuBlastpConfig,
) -> RunSummary {
    run_cublastp_detailed(q, db, params, cfg).1
}

/// Coarse-grained CUDA-BLASTP stand-in.
pub fn run_cuda_blastp(q: &Sequence, db: &SequenceDb, params: SearchParams) -> RunSummary {
    let t0 = std::time::Instant::now();
    let searcher = CudaBlastp::new(q.clone(), params, DeviceConfig::k20c(), db);
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let r = searcher.search(db);
    RunSummary {
        name: "CUDA-BLASTP".into(),
        critical_ms: r.timing.gpu_ms,
        overall_ms: r.timing.total_ms() + setup_ms,
        hits: r.report.hits.len(),
        identity: r.report.identity_key(),
    }
}

/// Coarse-grained GPU-BLASTP stand-in. The persistent grid is scaled so
/// the work queue has several sequences per lane even on the mini
/// databases (the real code fixes the grid and assumes NR-scale input).
pub fn run_gpu_blastp(q: &Sequence, db: &SequenceDb, params: SearchParams) -> RunSummary {
    let t0 = std::time::Instant::now();
    let mut searcher = GpuBlastp::new(q.clone(), params, DeviceConfig::k20c(), db);
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    searcher.total_warps = (db.len() / 160).clamp(8, 104);
    let r = searcher.search(db);
    RunSummary {
        name: "GPU-BLASTP".into(),
        critical_ms: r.timing.gpu_ms,
        overall_ms: r.timing.total_ms() + setup_ms,
        hits: r.report.hits.len(),
        identity: r.report.identity_key(),
    }
}

/// The cuBLASTP configuration used for figure runs (paper defaults with a
/// pipeline block size that gives a handful of blocks per mini database).
pub fn figure_config() -> CuBlastpConfig {
    CuBlastpConfig {
        db_block_size: 512,
        ..CuBlastpConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, DbSpec};

    #[test]
    fn all_runners_agree_on_output() {
        let q = bio_seq::generate::make_query(72);
        let spec = DbSpec {
            name: "t",
            num_sequences: 90,
            mean_length: 120,
            homolog_fraction: 0.25,
            seed: 31,
        };
        let db = generate_db(&spec, &q).db;
        let p = SearchParams::default();
        let fsa = run_fsa_blast(&q, &db, p);
        assert!(fsa.hits > 0);
        for r in [
            run_ncbi_blast(&q, &db, p, 2),
            run_cublastp(&q, &db, p, figure_config()),
            run_cuda_blastp(&q, &db, p),
            run_gpu_blastp(&q, &db, p),
        ] {
            assert_eq!(
                r.identity, fsa.identity,
                "{} differs from FSA-BLAST",
                r.name
            );
            assert!(r.critical_ms > 0.0, "{} critical time", r.name);
            assert!(r.overall_ms > 0.0, "{} overall time", r.name);
        }
    }
}
