//! Plain-text table output shared by all figure binaries.

/// Print a titled, column-aligned table. Cells are plain strings; the
/// first row of `rows` is typically the configuration label.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("| {} |", parts.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision_tiers() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.4), "1234");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.1234), "0.1234");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.753), "75.3%");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["x".into(), "123".into()], vec!["longer".into()]],
        );
    }
}
