//! The pre-arena hit path, kept verbatim as the *before* side of the
//! `hotpath` benchmark and the stats-equivalence regression test.
//!
//! This is the hit-detection → assembling → sorting → filtering pipeline
//! exactly as it stood before the flat-arena rework: ragged
//! `Vec<Vec<u64>>` bins allocated per (warp, bin), per-block results
//! pushed through a `Mutex`, a comparator segmented sort, and a
//! flatten-concat copy feeding the filter. The cost *model* calls are
//! identical to the live pipeline by construction — the regression test
//! in `tests/hotpath_stats.rs` holds both sides to bit-identical
//! [`KernelStats`] — so any wall-clock difference the `hotpath` binary
//! measures is purely host-side data-structure overhead.

use cublastp::config::CuBlastpConfig;
use cublastp::devicedata::{DeviceDbBlock, DeviceQuery};
use cublastp::hitpack::{group_key, pack, subject_pos};
use gpu_sim::device::{TRANSACTION_BYTES, WARP_SIZE};
use gpu_sim::memory::virtual_alloc;
use gpu_sim::scan::WARP_SCAN_STEPS;
use gpu_sim::{launch, DeviceConfig, KernelStats, LaunchConfig};
use parking_lot::Mutex;

use blast_core::{word_code, WORD_LEN};

/// Shared-memory footprint of the compacted DFA state table (mirrors
/// `cublastp::binning::DFA_STATES_SHARED_BYTES`).
const DFA_STATES_SHARED_BYTES: u32 = 8 * 1024;

/// Output of the legacy binning kernel: one `Vec` per (warp, bin).
pub struct LegacyBinnedHits {
    /// `bins[warp * num_bins + bin]` — packed hits in detection order.
    pub bins: Vec<Vec<u64>>,
    /// Bins per warp.
    pub num_bins: usize,
    /// Total warps that participated.
    pub num_warps: usize,
    /// Total hits detected.
    pub total_hits: u64,
}

/// The pre-arena hit-detection + binning kernel (ragged bins, Mutex
/// result collection).
pub fn binning_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
) -> (LegacyBinnedHits, KernelStats) {
    let grid_blocks = cfg.grid_blocks.max(1);
    let warps_per_block = cfg.warps_per_block.max(1);
    let num_warps = (grid_blocks * warps_per_block) as usize;
    let num_bins = cfg.num_bins;
    let qlen = query.query_len();

    let max_slen = (0..db.num_seqs()).map(|i| db.seq_len(i)).max().unwrap_or(0);
    assert!(
        qlen + max_slen <= u16::MAX as usize,
        "query ({qlen}) + longest subject ({max_slen}) exceeds the 16-bit \
         diagonal range of the packed hit format (max 65535 combined)"
    );

    let shared = DFA_STATES_SHARED_BYTES + (warps_per_block as usize * num_bins * 4) as u32;
    let launch_cfg = LaunchConfig {
        blocks: grid_blocks,
        warps_per_block,
        shared_bytes_per_block: shared,
        use_readonly_cache: cfg.use_readonly_cache,
    };

    let bin_capacity = qlen.max(1) as u64;
    let bins_base = virtual_alloc(num_warps as u64 * num_bins as u64 * bin_capacity * 8);

    let results: Mutex<Vec<(usize, Vec<Vec<u64>>)>> = Mutex::new(Vec::new());

    let stats = launch(device, launch_cfg, "hit_detection", |block| {
        let mut block_bins: Vec<Vec<u64>> = vec![Vec::new(); warps_per_block as usize * num_bins];
        let mut lane_hits: Vec<Vec<(u32, u32)>> = vec![Vec::new(); WARP_SIZE as usize];
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut targets: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut writes: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut produced: Vec<(usize, u64)> = Vec::with_capacity(WARP_SIZE as usize);

        for warp_in_block in 0..warps_per_block as usize {
            let warp_id = block.block_id as usize * warps_per_block as usize + warp_in_block;
            let warp_bins_base = bins_base + (warp_id * num_bins) as u64 * bin_capacity * 8;
            let mut tops = vec![0u64; num_bins];

            let mut i = warp_id;
            while i < db.num_seqs() {
                let slen = db.seq_len(i);
                let words = slen.saturating_sub(WORD_LEN - 1);
                let subject = db.seq(i);

                let mut j0 = 0usize;
                while j0 < words {
                    let active = (words - j0).min(WARP_SIZE as usize);

                    addrs.clear();
                    addrs.extend((0..active).map(|l| db.residue_addr(i, j0 + l)));
                    block.global_read(&addrs, WORD_LEN as u32);
                    block.shared_access(active as u32);

                    addrs.clear();
                    let mut max_hits = 0usize;
                    for (l, lane) in lane_hits.iter_mut().take(active).enumerate() {
                        lane.clear();
                        let col = j0 + l;
                        let code = word_code(&subject[col..col + WORD_LEN]);
                        let positions = query.dfa.neighborhood().positions(code);
                        let (base, len) = query.position_addrs(code);
                        for (k, &qpos) in positions.iter().enumerate() {
                            debug_assert!(k < len.max(1));
                            lane.push((qpos, col as u32));
                            addrs.push(base + (k * 4) as u64);
                        }
                        max_hits = max_hits.max(positions.len());
                    }
                    for chunk in addrs.chunks(WARP_SIZE as usize) {
                        block.readonly_read(chunk, 4);
                    }

                    for k in 0..max_hits {
                        targets.clear();
                        writes.clear();
                        produced.clear();
                        for lane in lane_hits.iter().take(active) {
                            if let Some(&(qpos, col)) = lane.get(k) {
                                let diagonal = (col as i64 - qpos as i64 + qlen as i64) as u32;
                                let bin_id = diagonal as usize % num_bins;
                                let slot = tops[bin_id];
                                tops[bin_id] += 1;
                                targets.push((warp_in_block * num_bins + bin_id) as u64);
                                writes.push(
                                    warp_bins_base
                                        + (bin_id as u64 * bin_capacity + slot % bin_capacity) * 8,
                                );
                                produced.push((bin_id, pack(i as u32, diagonal, col)));
                            }
                        }
                        block.instr(targets.len() as u32);
                        block.atomic_shared(&targets);
                        block.global_write(&writes, 8);
                        for &(bin_id, element) in &produced {
                            block_bins[warp_in_block * num_bins + bin_id].push(element);
                        }
                    }

                    j0 += WARP_SIZE as usize;
                }
                i += num_warps;
            }
        }
        results.lock().push((block.block_id as usize, block_bins));
    });

    let mut per_block = results.into_inner();
    per_block.sort_by_key(|(id, _)| *id);
    let mut bins: Vec<Vec<u64>> = Vec::with_capacity(num_warps * num_bins);
    for (_, mut block_bins) in per_block {
        bins.append(&mut block_bins);
    }
    let total_hits = bins.iter().map(|b| b.len() as u64).sum();

    (
        LegacyBinnedHits {
            bins,
            num_bins,
            num_warps,
            total_hits,
        },
        stats,
    )
}

/// Legacy assembled hits: one owned `Vec` per non-empty bin.
pub struct LegacyAssembledHits {
    /// One vector per (warp, bin), empty bins dropped.
    pub segments: Vec<Vec<u64>>,
}

/// The pre-arena assembling kernel (per-segment ownership).
pub fn assemble_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    binned: LegacyBinnedHits,
) -> (LegacyAssembledHits, KernelStats) {
    const TILE: usize = 2048;
    let total = binned.total_hits as usize;
    let src_base = virtual_alloc(total.max(1) as u64 * 8);
    let dst_base = virtual_alloc(total.max(1) as u64 * 8);

    let blocks = total.div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let stats = launch(device, launch_cfg, "hit_assembling", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(total);
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut j = lo;
        while j < hi {
            let active = (hi - j).min(WARP_SIZE as usize);
            addrs.clear();
            addrs.extend((0..active).map(|l| src_base + ((j + l) as u64) * 8));
            block.global_read(&addrs, 8);
            addrs.clear();
            addrs.extend((0..active).map(|l| dst_base + ((j + l) as u64) * 8));
            block.global_write(&addrs, 8);
            j += WARP_SIZE as usize;
        }
    });

    let segments: Vec<Vec<u64>> = binned.bins.into_iter().filter(|b| !b.is_empty()).collect();
    (LegacyAssembledHits { segments }, stats)
}

/// The pre-radix segmented sort: `sort_unstable` per segment with the
/// same cost model as `gpu_sim::sort`.
pub fn sort_kernel(device: &DeviceConfig, hits: &mut LegacyAssembledHits) -> KernelStats {
    segmented_sort_comparator(device, &mut hits.segments, "hit_sorting")
}

/// Verbatim pre-radix `segmented_sort_u64` (comparator sort per segment).
pub fn segmented_sort_comparator(
    device: &DeviceConfig,
    segments: &mut [Vec<u64>],
    name: &str,
) -> KernelStats {
    const TILE_ELEMENTS: usize = 2048;
    let n: usize = segments.iter().map(|s| s.len()).sum();

    for seg in segments.iter_mut() {
        seg.sort_unstable();
    }

    let mut stats = KernelStats::new(name);
    let blocks = n.div_ceil(TILE_ELEMENTS).max(1) as u32;
    stats.blocks = blocks;
    stats.warps_per_block = 8;
    let shared = (TILE_ELEMENTS * 8) as u32;
    stats.occupancy = device.occupancy(8, shared);

    if n == 0 {
        return stats;
    }
    let work: u64 = segments
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| s.len() as u64 * (s.len().max(2) as f64).log2().ceil() as u64)
        .sum();

    let key_bytes = 8u64;
    {
        let n64 = work;
        let read_tx = (n64 * key_bytes).div_ceil(TRANSACTION_BYTES) * 2;
        stats.global_transactions += read_tx;
        stats.global_transacted_bytes += read_tx * TRANSACTION_BYTES;
        stats.global_useful_bytes += n64 * key_bytes;
        stats.global_load_useful_bytes += n64 * key_bytes;
        stats.global_load_transacted_bytes += read_tx * TRANSACTION_BYTES;
        let warp_writes = n64.div_ceil(32);
        let write_tx = warp_writes * 4;
        stats.global_transactions += write_tx;
        stats.global_transacted_bytes += write_tx * TRANSACTION_BYTES;
        stats.global_useful_bytes += n64 * key_bytes;
        stats.warp_cycles += (read_tx + write_tx) * device.global_transaction_cost;
        stats.active_lane_cycles += 32 * (read_tx + write_tx) * device.global_transaction_cost;
        let instr = n64 * 8 / 32;
        stats.warp_cycles += instr * device.instr_cost;
        stats.active_lane_cycles += 32 * instr * device.instr_cost;
    }
    stats
}

/// Output of the legacy filtering kernel.
pub struct LegacyFilteredHits {
    /// Surviving hits, concatenated segment by segment.
    pub hits: Vec<u64>,
    /// Hits before filtering.
    pub before: u64,
}

/// The pre-arena filtering kernel (flatten-concat copy, per-chunk write
/// buffers, Mutex result collection). Two-hit mode only — the mode the
/// hot path always runs with default parameters.
pub fn filter_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    sorted: &LegacyAssembledHits,
    window: i64,
) -> (LegacyFilteredHits, KernelStats) {
    const TILE: usize = 2048;
    let two_hit = true;
    let concat: Vec<u64> = sorted.segments.iter().flatten().copied().collect();
    let before = concat.len() as u64;
    let src_base = virtual_alloc(before.max(1) * 8);
    let dst_base = virtual_alloc(before.max(1) * 8);

    let blocks = concat.len().div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let results: Mutex<Vec<(usize, Vec<u64>)>> = Mutex::new(Vec::new());

    let stats = launch(device, launch_cfg, "hit_filtering", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(concat.len());
        let mut kept: Vec<u64> = Vec::new();
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut j = lo;
        while j < hi {
            let active = (hi - j).min(WARP_SIZE as usize);
            addrs.clear();
            addrs.extend((0..active).map(|l| src_base + ((j + l) as u64) * 8));
            block.global_read(&addrs, 8);
            block.instr(active as u32);
            block.instr_n(active as u32, WARP_SCAN_STEPS);
            let mut writes: Vec<u64> = Vec::new();
            for l in 0..active {
                let idx = j + l;
                if idx == 0 {
                    if !two_hit {
                        writes.push(dst_base + (kept.len() as u64 + writes.len() as u64) * 8);
                        kept.push(concat[idx]);
                    }
                    continue;
                }
                let cur = concat[idx];
                let prev = concat[idx - 1];
                let extendable = !two_hit
                    || (group_key(cur) == group_key(prev)
                        && (subject_pos(cur) as i64 - subject_pos(prev) as i64) <= window);
                if extendable {
                    writes.push(dst_base + (kept.len() as u64 + writes.len() as u64) * 8);
                    kept.push(cur);
                }
            }
            block.global_write(&writes, 8);
            j += WARP_SIZE as usize;
        }
        results.lock().push((block.block_id as usize, kept));
    });

    let mut per_block = results.into_inner();
    per_block.sort_by_key(|(id, _)| *id);
    let hits: Vec<u64> = per_block.into_iter().flat_map(|(_, v)| v).collect();
    (LegacyFilteredHits { hits, before }, stats)
}

/// Run the whole legacy hit path (binning → assemble → sort → filter) and
/// return the surviving hits plus the four kernels' stats in order.
pub fn hit_path(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    window: i64,
) -> (Vec<u64>, [KernelStats; 4]) {
    let (binned, k_bin) = binning_kernel(device, cfg, query, db);
    let (mut asm, k_asm) = assemble_kernel(device, cfg, binned);
    let k_sort = sort_kernel(device, &mut asm);
    let (filtered, k_filter) = filter_kernel(device, cfg, &asm, window);
    (filtered.hits, [k_bin, k_asm, k_sort, k_filter])
}
