//! Observability plumbing for the bench binaries.
//!
//! The binaries take no flags (they are figure reproductions), so trace
//! and metrics exports are requested through the environment, mirroring
//! `BENCH_SCALE`:
//!
//! * `TRACE_OUT=<path>` — arm tracing, write a Chrome `trace_event` JSON
//!   at exit (load in Perfetto).
//! * `METRICS_OUT=<path>` — arm metrics; a `.json` extension selects the
//!   JSON exporter, anything else Prometheus text format.

/// Arm the global observability state from `TRACE_OUT` / `METRICS_OUT`.
/// Call once at the top of `main`, before any instrumented work.
pub fn arm_from_env() {
    obs::arm(
        std::env::var_os("TRACE_OUT").is_some(),
        std::env::var_os("METRICS_OUT").is_some(),
    );
}

/// Write whichever exports the environment requested. Call once at the
/// end of `main`; I/O failures are reported to stderr but do not change
/// the benchmark's exit status.
pub fn write_exports() {
    if let Ok(path) = std::env::var("TRACE_OUT") {
        let trace = obs::take_trace();
        match std::fs::write(&path, trace.to_json()) {
            Ok(()) => eprintln!("trace: {} events -> {path}", trace.events.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Ok(path) = std::env::var("METRICS_OUT") {
        let body = if path.ends_with(".json") {
            obs::metrics().to_json()
        } else {
            obs::metrics().to_prometheus()
        };
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("metrics -> {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Median of a sample (mean of the middle pair for even sizes). Returns
/// 0.0 for an empty sample. The perf-gate baselines are medians of
/// deterministic simulated times, so they are exactly reproducible.
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
