//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//!
//! Implemented in-crate: the build is fully offline and must not pull a
//! checksum dependency. The variant matches zlib's `crc32()` so fixtures
//! can be cross-checked with standard tools.

/// 256-entry lookup table for the reflected IEEE polynomial.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (initial value 0, i.e. a fresh checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Continue a CRC-32 computation: `crc` is a previous [`crc32`] result.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn update_is_incremental() {
        let whole = crc32(b"hello world");
        let part = crc32_update(crc32(b"hello "), b"world");
        assert_eq!(whole, part);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = crc32(b"cublastp");
        let mut buf = *b"cublastp";
        for i in 0..buf.len() {
            for bit in 0..8 {
                buf[i] ^= 1 << bit;
                assert_ne!(crc32(&buf), base, "flip at byte {i} bit {bit}");
                buf[i] ^= 1 << bit;
            }
        }
    }
}
