//! Writer side of the `.cdb` on-disk format (DESIGN.md §3.9).
//!
//! A `.cdb` image is the flattened device layout `DeviceDb` holds in
//! memory, made durable: one contiguous residue arena plus prefix-offset
//! arrays, so a loader can map the file and hand out zero-copy block
//! views with no flatten pass. Layout (all integers little-endian):
//!
//! ```text
//! [ header 64 B ][ section table 24 B × n ][ section payloads ... ]
//! ```
//!
//! * **Header** — magic, format version, header length, block size,
//!   block / sequence / residue counts, section count, a CRC-32 of the
//!   section table, and a CRC-32 of the header bytes themselves.
//! * **Section table** — `(id, crc32, offset, len)` per section, offsets
//!   absolute from the start of the file.
//! * **Sections** — residue arena, per-sequence prefix offsets, ids,
//!   descriptions, and the database name, each independently CRC'd.
//!
//! The writer is fully deterministic: byte-identical input produces a
//! byte-identical image. CI holds a golden fixture against this property
//! so any layout change forces an explicit [`FORMAT_VERSION`] bump.

use crate::crc::crc32;
use crate::error::DbError;
use bio_seq::SequenceDb;

/// Leading magic bytes of every `.cdb` image.
pub const MAGIC: [u8; 8] = *b"CUBLSTDB";

/// Format version this build writes and reads. Bump on ANY layout change;
/// the golden-fixture CI job exists to make silent changes impossible.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 64;

/// Size of one section-table entry in bytes.
pub const TOC_ENTRY_LEN: usize = 24;

/// Byte offset of the header CRC field (the CRC covers `0..HEADER_CRC_OFFSET`).
pub const HEADER_CRC_OFFSET: usize = 60;

/// Section identifiers, in the order they are written.
pub mod section {
    /// Concatenated residue arena, database order (u8 per residue).
    pub const RESIDUES: u32 = 1;
    /// `num_sequences + 1` u64 prefix offsets into the residue arena.
    pub const SEQ_OFFSETS: u32 = 2;
    /// Concatenated UTF-8 sequence ids.
    pub const IDS: u32 = 3;
    /// `num_sequences + 1` u64 prefix offsets into the id bytes.
    pub const ID_OFFSETS: u32 = 4;
    /// Concatenated UTF-8 description lines.
    pub const DESCS: u32 = 5;
    /// `num_sequences + 1` u64 prefix offsets into the description bytes.
    pub const DESC_OFFSETS: u32 = 6;
    /// UTF-8 database name.
    pub const NAME: u32 = 7;
}

/// All section ids in write order, with their stable display names.
pub const SECTIONS: [(u32, &str); 7] = [
    (section::RESIDUES, "residues"),
    (section::SEQ_OFFSETS, "seq-offsets"),
    (section::IDS, "ids"),
    (section::ID_OFFSETS, "id-offsets"),
    (section::DESCS, "descs"),
    (section::DESC_OFFSETS, "desc-offsets"),
    (section::NAME, "name"),
];

/// Display name of a section id, or `"unknown"`.
pub fn section_name(id: u32) -> &'static str {
    SECTIONS
        .iter()
        .find(|(sid, _)| *sid == id)
        .map(|(_, name)| *name)
        .unwrap_or("unknown")
}

/// Number of blocks the image partitions into: `block_size` zero means
/// one block for everything, matching [`SequenceDb::blocks`].
pub fn block_count(num_sequences: usize, block_size: usize) -> usize {
    if num_sequences == 0 {
        0
    } else if block_size == 0 {
        1
    } else {
        num_sequences.div_ceil(block_size)
    }
}

/// Summary of a completed build, for CLI and bench reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSummary {
    /// Total image size in bytes.
    pub bytes: usize,
    /// Number of device blocks the image partitions into.
    pub blocks: usize,
    /// Number of sequences.
    pub sequences: usize,
    /// Total residues in the arena.
    pub residues: usize,
}

fn prefix_offsets(lens: impl Iterator<Item = usize>) -> Vec<u64> {
    let mut offs = Vec::new();
    let mut acc = 0u64;
    offs.push(acc);
    for len in lens {
        acc += len as u64;
        offs.push(acc);
    }
    offs
}

fn u64s_to_le(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serialise `db` into a version-[`FORMAT_VERSION`] image.
///
/// Deterministic: the same database (including its name) and block size
/// always produce byte-identical output.
pub fn build_to_vec(db: &SequenceDb, block_size: usize) -> Vec<u8> {
    let seqs = db.sequences();

    let mut residues = Vec::with_capacity(db.total_residues());
    for s in seqs {
        residues.extend_from_slice(s.residues());
    }
    let seq_offsets = u64s_to_le(&prefix_offsets(seqs.iter().map(|s| s.len())));

    let mut ids = Vec::new();
    for s in seqs {
        ids.extend_from_slice(s.id.as_bytes());
    }
    let id_offsets = u64s_to_le(&prefix_offsets(seqs.iter().map(|s| s.id.len())));

    let mut descs = Vec::new();
    for s in seqs {
        descs.extend_from_slice(s.description.as_bytes());
    }
    let desc_offsets = u64s_to_le(&prefix_offsets(seqs.iter().map(|s| s.description.len())));

    let name = db.name().as_bytes().to_vec();

    let payloads: [(u32, Vec<u8>); 7] = [
        (section::RESIDUES, residues),
        (section::SEQ_OFFSETS, seq_offsets),
        (section::IDS, ids),
        (section::ID_OFFSETS, id_offsets),
        (section::DESCS, descs),
        (section::DESC_OFFSETS, desc_offsets),
        (section::NAME, name),
    ];

    let toc_len = payloads.len() * TOC_ENTRY_LEN;
    let mut offset = (HEADER_LEN + toc_len) as u64;
    let mut toc = Vec::with_capacity(toc_len);
    for (id, payload) in &payloads {
        toc.extend_from_slice(&id.to_le_bytes());
        toc.extend_from_slice(&crc32(payload).to_le_bytes());
        toc.extend_from_slice(&offset.to_le_bytes());
        toc.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        offset += payload.len() as u64;
    }

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(HEADER_LEN as u32).to_le_bytes());
    header.extend_from_slice(&(block_size as u64).to_le_bytes());
    header.extend_from_slice(&(block_count(db.len(), block_size) as u64).to_le_bytes());
    header.extend_from_slice(&(db.len() as u64).to_le_bytes());
    header.extend_from_slice(&(db.total_residues() as u64).to_le_bytes());
    header.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    header.extend_from_slice(&crc32(&toc).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes()); // reserved
    debug_assert_eq!(header.len(), HEADER_CRC_OFFSET);
    let hcrc = crc32(&header);
    header.extend_from_slice(&hcrc.to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_LEN);

    let mut out = header;
    out.extend_from_slice(&toc);
    for (_, payload) in &payloads {
        out.extend_from_slice(payload);
    }
    out
}

/// Build `db` into a `.cdb` file at `path`.
///
/// The write is atomic: bytes land in `path.tmp` first and are renamed
/// into place, so a crashed build never leaves a half-written image under
/// the final name.
pub fn build_to_file(
    db: &SequenceDb,
    block_size: usize,
    path: &std::path::Path,
) -> Result<BuildSummary, DbError> {
    let bytes = build_to_vec(db, block_size);
    let tmp = path.with_extension("cdb.tmp");
    let io_err = |e: std::io::Error| DbError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    std::fs::write(&tmp, &bytes).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    Ok(BuildSummary {
        bytes: bytes.len(),
        blocks: block_count(db.len(), block_size),
        sequences: db.len(),
        residues: db.total_residues(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::Sequence;

    fn tiny_db() -> SequenceDb {
        SequenceDb::new(
            "tiny",
            vec![
                Sequence::from_bytes("s0", b"ARNDCQ"),
                Sequence::from_bytes("s1", b"MKVLW"),
                Sequence::from_bytes("s2", b"GHILKMFPST"),
            ],
        )
    }

    #[test]
    fn build_is_deterministic() {
        let db = tiny_db();
        assert_eq!(build_to_vec(&db, 2), build_to_vec(&db, 2));
        assert_ne!(build_to_vec(&db, 2), build_to_vec(&db, 3));
    }

    #[test]
    fn header_fields_in_place() {
        let db = tiny_db();
        let bytes = build_to_vec(&db, 2);
        assert_eq!(&bytes[0..8], &MAGIC);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 2); // block_size
        assert_eq!(u64::from_le_bytes(bytes[24..32].try_into().unwrap()), 2); // blocks
        assert_eq!(u64::from_le_bytes(bytes[32..40].try_into().unwrap()), 3); // sequences
        assert_eq!(u64::from_le_bytes(bytes[40..48].try_into().unwrap()), 21); // residues
    }

    #[test]
    fn block_count_matches_sequencedb_blocks() {
        let db = tiny_db();
        for bs in [0usize, 1, 2, 3, 10] {
            assert_eq!(block_count(db.len(), bs), db.blocks(bs).len(), "bs={bs}");
        }
        assert_eq!(block_count(0, 4), 0);
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let db = tiny_db();
        let dir = std::env::temp_dir().join("cublastp_db_fmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.cdb");
        let summary = build_to_file(&db, 2, &path).unwrap();
        assert_eq!(summary.sequences, 3);
        assert_eq!(summary.blocks, 2);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, build_to_vec(&db, 2));
        assert_eq!(summary.bytes, on_disk.len());
        assert!(!path.with_extension("cdb.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }
}
