//! # cublastp-db
//!
//! Versioned on-disk format for the flattened cuBLASTP device layout
//! (DESIGN.md §3.9). A `.cdb` image stores exactly the byte layout
//! [`DeviceDb`](https://docs.rs/cublastp) holds after flattening — one
//! contiguous residue arena plus prefix-offset arrays — behind a
//! checksummed header, so a process can map it straight into the
//! resident cache with no generate and no flatten pass.
//!
//! * [`mod@format`] — magic / version constants and the deterministic writer
//!   ([`build_to_vec`], [`build_to_file`]).
//! * [`image`] — the validating reader ([`DbImage`]) and the shared
//!   mapped arena ([`MappedRegion`]) whose refcount governs unmap.
//! * [`error`] — the typed [`DbError`] taxonomy; every corruption class
//!   has a stable [`DbError::kind`] label the CI matrix asserts on.
//! * [`crc`] — in-crate CRC-32 (IEEE), zlib-compatible.
//!
//! ```
//! use bio_seq::{Sequence, SequenceDb};
//! use cublastp_db::{build_to_vec, DbImage};
//!
//! let db = SequenceDb::new("demo", vec![Sequence::from_bytes("s0", b"MKVLWAARND")]);
//! let bytes = build_to_vec(&db, 4);
//! let img = DbImage::from_bytes(bytes, "in-memory").expect("valid image");
//! assert_eq!(img.to_sequence_db().sequences(), db.sequences());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod format;
pub mod image;
pub mod shards;

pub use crc::crc32;
pub use error::DbError;
pub use format::{
    block_count, build_to_file, build_to_vec, BuildSummary, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
pub use image::{map_count, unmap_count, DbImage, MappedRegion, SectionReport, VerifySummary};
pub use shards::{build_shard_set, ShardEntry, ShardSetManifest, SHARD_SET_VERSION};
