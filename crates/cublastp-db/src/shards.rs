//! Per-shard image sets: one `.cdb` image per database shard plus a
//! small text manifest tying them together (DESIGN.md §3.10).
//!
//! A shard set is how the sharded engine loads a large database without
//! ever materialising it whole: each shard maps its own image zero-copy,
//! and the manifest carries the *global* sequence/residue totals the
//! cross-shard Karlin–Altschul correction needs — the statistics a lone
//! shard image cannot know. Format, one record per line:
//!
//! ```text
//! cdbset v1
//! name swissprot
//! block_size 1024
//! sequences 180000
//! residues 66000000
//! shard shard000.cdb 0 60000 22000000
//! shard shard001.cdb 60000 60000 22000000
//! shard shard002.cdb 120000 60000 22000000
//! ```
//!
//! `shard <file> <start> <sequences> <residues>`: file path relative to
//! the manifest, global index of the shard's first sequence, and the
//! shard's own counts. [`ShardSetManifest::validate`] checks the shards
//! tile the database exactly (contiguous starts, totals that sum); the
//! loader re-checks every image against its manifest line, so a swapped
//! or stale shard file is a typed error, not silent wrong statistics.

use crate::error::DbError;
use crate::format::build_to_file;
use crate::image::DbImage;
use bio_seq::{Sequence, SequenceDb};
use std::path::{Path, PathBuf};

/// Manifest version tag on the first line.
pub const SHARD_SET_VERSION: &str = "cdbset v1";

/// One shard's line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Image file path, relative to the manifest's directory.
    pub file: String,
    /// Global database index of the shard's first sequence.
    pub start: usize,
    /// Sequences in the shard.
    pub sequences: usize,
    /// Residues in the shard.
    pub residues: usize,
}

/// A parsed shard-set manifest: global statistics plus the shard roster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSetManifest {
    /// Database name.
    pub name: String,
    /// Block size every shard image was built at.
    pub block_size: usize,
    /// Global sequence count across all shards.
    pub sequences: usize,
    /// Global residue count across all shards — the Karlin–Altschul
    /// search-space the sharded engine distributes to every searcher.
    pub residues: usize,
    /// The shards, in global database order.
    pub shards: Vec<ShardEntry>,
}

fn layout(message: impl Into<String>) -> DbError {
    DbError::Layout {
        message: message.into(),
    }
}

impl ShardSetManifest {
    /// Render the manifest in its canonical text form (deterministic:
    /// byte-identical manifests for identical inputs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SHARD_SET_VERSION);
        out.push('\n');
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("block_size {}\n", self.block_size));
        out.push_str(&format!("sequences {}\n", self.sequences));
        out.push_str(&format!("residues {}\n", self.residues));
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {}\n",
                s.file, s.start, s.sequences, s.residues
            ));
        }
        out
    }

    /// Parse a manifest from its text form. Malformed lines are
    /// [`DbError::Layout`] with a message naming the offending line.
    pub fn parse(text: &str) -> Result<Self, DbError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(v) if v.trim() == SHARD_SET_VERSION => {}
            Some(v) => {
                return Err(layout(format!(
                "unsupported shard-set version line '{}' (this build reads '{SHARD_SET_VERSION}')",
                v.trim()
            )))
            }
            None => return Err(layout("empty shard-set manifest")),
        }
        let mut name = None;
        let mut block_size = None;
        let mut sequences = None;
        let mut residues = None;
        let mut shards = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || layout(format!("malformed manifest line {}: '{line}'", lineno + 2));
            let mut parts = line.split_whitespace();
            let key = parts.next().ok_or_else(bad)?;
            match key {
                "name" => name = Some(parts.next().ok_or_else(bad)?.to_string()),
                "block_size" => {
                    block_size = Some(parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?)
                }
                "sequences" => {
                    sequences = Some(parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?)
                }
                "residues" => {
                    residues = Some(parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?)
                }
                "shard" => {
                    let file = parts.next().ok_or_else(bad)?.to_string();
                    let start = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let nseq = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let nres = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    shards.push(ShardEntry {
                        file,
                        start,
                        sequences: nseq,
                        residues: nres,
                    });
                }
                other => return Err(layout(format!("unknown manifest key '{other}'"))),
            }
            if parts.next().is_some() {
                return Err(bad());
            }
        }
        let manifest = Self {
            name: name.ok_or_else(|| layout("manifest missing 'name'"))?,
            block_size: block_size.ok_or_else(|| layout("manifest missing 'block_size'"))?,
            sequences: sequences.ok_or_else(|| layout("manifest missing 'sequences'"))?,
            residues: residues.ok_or_else(|| layout("manifest missing 'residues'"))?,
            shards,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Check the shards tile the database exactly: contiguous starts from
    /// zero and per-shard counts that sum to the global totals.
    pub fn validate(&self) -> Result<(), DbError> {
        if self.shards.is_empty() {
            return Err(layout("shard set has no shards"));
        }
        let mut expect_start = 0usize;
        let mut residues = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if s.start != expect_start {
                return Err(layout(format!(
                    "shard {i} starts at {}, expected {expect_start} (shards must tile contiguously)",
                    s.start
                )));
            }
            expect_start += s.sequences;
            residues += s.residues;
        }
        if expect_start != self.sequences {
            return Err(layout(format!(
                "shard sequence counts sum to {expect_start}, manifest says {}",
                self.sequences
            )));
        }
        if residues != self.residues {
            return Err(layout(format!(
                "shard residue counts sum to {residues}, manifest says {}",
                self.residues
            )));
        }
        Ok(())
    }

    /// Write the manifest next to its shard images (atomic
    /// write-then-rename, like the image writer).
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        let io_err = |e: std::io::Error| DbError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let tmp = path.with_extension("cdbset.tmp");
        std::fs::write(&tmp, self.to_text()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        Ok(())
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let text = std::fs::read_to_string(path).map_err(|e| DbError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Absolute paths of the shard images, resolved against the
    /// manifest's directory.
    pub fn shard_paths(&self, manifest_path: &Path) -> Vec<PathBuf> {
        let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
        self.shards.iter().map(|s| dir.join(&s.file)).collect()
    }

    /// Open every shard image, re-validating each against its manifest
    /// line (block size, sequence and residue counts) so a swapped or
    /// stale shard file fails loudly instead of corrupting statistics.
    pub fn open_images(&self, manifest_path: &Path) -> Result<Vec<DbImage>, DbError> {
        let mut images = Vec::with_capacity(self.shards.len());
        for (entry, path) in self.shards.iter().zip(self.shard_paths(manifest_path)) {
            let img = DbImage::open(&path)?;
            if img.block_size() != self.block_size {
                return Err(layout(format!(
                    "shard '{}' was built at block size {}, shard set wants {}",
                    entry.file,
                    img.block_size(),
                    self.block_size
                )));
            }
            if img.num_sequences() != entry.sequences || img.total_residues() != entry.residues {
                return Err(layout(format!(
                    "shard '{}' holds {} sequences / {} residues, manifest says {} / {}",
                    entry.file,
                    img.num_sequences(),
                    img.total_residues(),
                    entry.sequences,
                    entry.residues
                )));
            }
            images.push(img);
        }
        Ok(images)
    }
}

/// Split `db` into `num_shards` contiguous near-equal shards, write one
/// `.cdb` image per shard into `dir` (`shard000.cdb`, `shard001.cdb`, …)
/// plus a `shards.cdbset` manifest, and return the manifest with its
/// path. The split matches the engine's `ShardedDb::split` exactly, so a
/// set built here loads into the same shard boundaries.
pub fn build_shard_set(
    db: &SequenceDb,
    block_size: usize,
    num_shards: usize,
    dir: &Path,
) -> Result<(ShardSetManifest, PathBuf), DbError> {
    let n = num_shards.max(1);
    let shard_size = db.len().div_ceil(n).max(1);
    let mut shards = Vec::with_capacity(n);
    for index in 0..n {
        let start = (index * shard_size).min(db.len());
        let end = ((index + 1) * shard_size).min(db.len());
        let seqs: Vec<Sequence> = db.sequences()[start..end].to_vec();
        let residues: usize = seqs.iter().map(|s| s.len()).sum();
        let local = SequenceDb::new(format!("{}:{index}", db.name()), seqs);
        let file = format!("shard{index:03}.cdb");
        build_to_file(&local, block_size, &dir.join(&file))?;
        shards.push(ShardEntry {
            file,
            start,
            sequences: end - start,
            residues,
        });
    }
    let manifest = ShardSetManifest {
        name: db.name().to_string(),
        block_size,
        sequences: db.len(),
        residues: db.total_residues(),
        shards,
    };
    let path = dir.join("shards.cdbset");
    manifest.save(&path)?;
    Ok((manifest, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_db(n: usize) -> SequenceDb {
        let seqs = (0..n)
            .map(|i| {
                Sequence::from_bytes(
                    format!("s{i}"),
                    b"MKVLWAARNDCQEGHILKMF".get(..10 + i % 10).unwrap(),
                )
            })
            .collect();
        SequenceDb::new("shardset-demo", seqs)
    }

    #[test]
    fn roundtrip_build_load_search_totals() {
        let db = demo_db(23);
        let dir = std::env::temp_dir().join(format!("cdbset-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let (manifest, path) = build_shard_set(&db, 4, 5, &dir).expect("build shard set");
        assert_eq!(manifest.shards.len(), 5);
        assert_eq!(manifest.sequences, 23);
        let loaded = ShardSetManifest::load(&path).expect("load manifest");
        assert_eq!(loaded, manifest);
        let images = loaded.open_images(&path).expect("open shards");
        assert_eq!(images.len(), 5);
        let total: usize = images.iter().map(|i| i.num_sequences()).sum();
        assert_eq!(total, db.len());
        // Reassembled sequences equal the original database, in order.
        let mut all = Vec::new();
        for img in &images {
            all.extend(img.to_sequence_db().sequences().to_vec());
        }
        assert_eq!(all, db.sequences());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_roundtrip_is_canonical() {
        let m = ShardSetManifest {
            name: "nr".into(),
            block_size: 1024,
            sequences: 10,
            residues: 900,
            shards: vec![
                ShardEntry {
                    file: "shard000.cdb".into(),
                    start: 0,
                    sequences: 6,
                    residues: 500,
                },
                ShardEntry {
                    file: "shard001.cdb".into(),
                    start: 6,
                    sequences: 4,
                    residues: 400,
                },
            ],
        };
        let text = m.to_text();
        let parsed = ShardSetManifest::parse(&text).expect("parse");
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_text(), text, "canonical form is stable");
    }

    #[test]
    fn malformed_manifests_are_typed_layout_errors() {
        let cases = [
            ("", "empty"),
            ("cdbset v9\nname x\n", "version"),
            (
                "cdbset v1\nname x\nblock_size 4\nsequences 1\nresidues 5\n",
                "no shards",
            ),
            (
                "cdbset v1\nname x\nblock_size 4\nsequences 1\nresidues 5\nshard a.cdb 3 1 5\n",
                "bad start",
            ),
            (
                "cdbset v1\nname x\nblock_size 4\nsequences 2\nresidues 5\nshard a.cdb 0 1 5\n",
                "bad sum",
            ),
            (
                "cdbset v1\nname x\nblock_size nope\nsequences 1\nresidues 5\nshard a.cdb 0 1 5\n",
                "bad number",
            ),
            (
                "cdbset v1\nname x\nblock_size 4\nsequences 1\nresidues 5\nshard a.cdb 0 1\n",
                "short shard line",
            ),
        ];
        for (text, what) in cases {
            let err = ShardSetManifest::parse(text).expect_err(what);
            assert_eq!(err.kind(), "layout", "{what}: {err}");
        }
    }

    #[test]
    fn stale_shard_image_is_rejected() {
        let db = demo_db(9);
        let dir = std::env::temp_dir().join(format!("cdbset-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let (_, path) = build_shard_set(&db, 4, 3, &dir).expect("build");
        // Overwrite shard 1 with an image of the wrong shape.
        let other = demo_db(2);
        crate::format::build_to_file(&other, 4, &dir.join("shard001.cdb")).expect("overwrite");
        let manifest = ShardSetManifest::load(&path).expect("manifest still fine");
        let err = manifest.open_images(&path).expect_err("stale shard");
        assert_eq!(err.kind(), "layout");
        std::fs::remove_dir_all(&dir).ok();
    }
}
