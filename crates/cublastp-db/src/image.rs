//! Reader side of the `.cdb` format: map, validate, and serve zero-copy
//! views of a database image.
//!
//! [`DbImage::open`] maps the file into a single [`MappedRegion`] arena
//! (the simulated analogue of `mmap`: one read into an immutable,
//! reference-counted buffer) and validates the whole image — magic,
//! version, header CRC, section-table CRC, section bounds, per-section
//! CRCs, and structural invariants. Every corruption becomes a typed
//! [`DbError`]; the loader never panics and never yields a wrong layout.
//!
//! Block residue views are subslices of the shared arena, so building a
//! resident `DeviceDb` from an image performs no flatten pass and no
//! copy of residue data. The arena is released ("unmapped") only when
//! the last `Arc` clone drops — observable through [`unmap_count`], which
//! the hot-swap tests use to pin down refcount-zero unmap ordering.

use crate::crc::crc32;
use crate::error::DbError;
use crate::format::{
    block_count, section, section_name, FORMAT_VERSION, HEADER_CRC_OFFSET, HEADER_LEN, MAGIC,
    SECTIONS, TOC_ENTRY_LEN,
};
use bio_seq::alphabet::ALPHABET_SIZE;
use bio_seq::{DbBlock, Sequence, SequenceDb};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static MAPS: AtomicU64 = AtomicU64::new(0);
static UNMAPS: AtomicU64 = AtomicU64::new(0);

/// Number of regions mapped since process start.
pub fn map_count() -> u64 {
    MAPS.load(Ordering::SeqCst)
}

/// Number of regions unmapped (dropped at refcount zero) since process
/// start. `map_count() - unmap_count()` is the number of live mappings.
pub fn unmap_count() -> u64 {
    UNMAPS.load(Ordering::SeqCst)
}

/// An immutable mapped database arena.
///
/// This is the process's view of one `.cdb` file. All block residue
/// views alias its bytes; dropping the last reference "unmaps" it and
/// bumps [`unmap_count`].
pub struct MappedRegion {
    bytes: Box<[u8]>,
    source: String,
}

impl MappedRegion {
    fn new(bytes: Vec<u8>, source: String) -> Self {
        MAPS.fetch_add(1, Ordering::SeqCst);
        Self {
            bytes: bytes.into_boxed_slice(),
            source,
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Where the mapping came from (file path or an in-memory label).
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl Drop for MappedRegion {
    fn drop(&mut self) {
        UNMAPS.fetch_add(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedRegion")
            .field("source", &self.source)
            .field("len", &self.bytes.len())
            .finish()
    }
}

/// Per-section detail for [`DbImage::summary`] reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionReport {
    /// Stable section name.
    pub name: &'static str,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 recorded in the section table (verified at open).
    pub crc: u32,
}

/// Validated summary of an open image, for `db verify` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySummary {
    /// Format version of the image.
    pub format_version: u32,
    /// Device block size (sequences per block; 0 = single block).
    pub block_size: usize,
    /// Number of device blocks.
    pub blocks: usize,
    /// Number of sequences.
    pub sequences: usize,
    /// Total residues in the arena.
    pub residues: usize,
    /// Total image size in bytes.
    pub bytes: usize,
    /// Per-section lengths and CRCs.
    pub sections: Vec<SectionReport>,
}

/// A validated, mapped `.cdb` database image.
#[derive(Debug, Clone)]
pub struct DbImage {
    region: Arc<MappedRegion>,
    format_version: u32,
    block_size: usize,
    num_blocks: usize,
    residues: Range<usize>,
    seq_offsets: Vec<usize>,
    ids: Range<usize>,
    id_offsets: Vec<usize>,
    descs: Range<usize>,
    desc_offsets: Vec<usize>,
    name_range: Range<usize>,
    sections: Vec<SectionReport>,
}

fn range_of(
    file_len: u64,
    offset: u64,
    len: u64,
    what: impl Into<String>,
) -> Result<Range<usize>, DbError> {
    let end = offset.checked_add(len).ok_or_else(|| DbError::Layout {
        message: "section range overflows u64".into(),
    })?;
    if end > file_len {
        return Err(DbError::OffsetOutOfRange {
            what: what.into(),
            offset,
            len,
            bound: file_len,
        });
    }
    Ok(offset as usize..end as usize)
}

fn decode_offsets(
    bytes: &[u8],
    expected_entries: usize,
    payload_len: u64,
    what: &str,
) -> Result<Vec<usize>, DbError> {
    if bytes.len() != expected_entries * 8 {
        return Err(DbError::Layout {
            message: format!(
                "{what} holds {} bytes, expected {} ({expected_entries} u64 entries)",
                bytes.len(),
                expected_entries * 8
            ),
        });
    }
    let mut out = Vec::with_capacity(expected_entries);
    let mut prev = 0u64;
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        let v = le_u64(chunk);
        if i == 0 && v != 0 {
            return Err(DbError::Layout {
                message: format!("{what} must start at 0, found {v}"),
            });
        }
        if v < prev {
            return Err(DbError::Layout {
                message: format!("{what} not monotone at entry {i}: {v} < {prev}"),
            });
        }
        if v > payload_len {
            return Err(DbError::OffsetOutOfRange {
                what: format!("{what} entry {i}"),
                offset: v,
                len: 0,
                bound: payload_len,
            });
        }
        prev = v;
        out.push(v as usize);
    }
    if prev != payload_len {
        return Err(DbError::Layout {
            message: format!("{what} ends at {prev}, payload holds {payload_len} bytes"),
        });
    }
    Ok(out)
}

fn validate_utf8(bytes: &[u8], what: &str) -> Result<(), DbError> {
    std::str::from_utf8(bytes)
        .map(|_| ())
        .map_err(|e| DbError::Layout {
            message: format!("{what} not valid UTF-8: {e}"),
        })
}

/// Infallible little-endian reads over already-bounds-checked slices.
/// A short slice zero-fills instead of panicking; the length and CRC
/// checks upstream make that state unreachable in practice, and the
/// no-panic contract (DESIGN.md §3.3) holds either way.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    for (d, s) in buf.iter_mut().zip(bytes) {
        *d = *s;
    }
    u32::from_le_bytes(buf)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(bytes) {
        *d = *s;
    }
    u64::from_le_bytes(buf)
}

/// Read a string slice whose UTF-8 validity was checked at open; the
/// empty-string fallback is unreachable but keeps this panic-free.
fn validated_str(bytes: &[u8]) -> &str {
    std::str::from_utf8(bytes).unwrap_or_default()
}

impl DbImage {
    /// Map and validate the image at `path`.
    pub fn open(path: &std::path::Path) -> Result<Self, DbError> {
        let bytes = std::fs::read(path).map_err(|e| DbError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_bytes(bytes, path.display().to_string())
    }

    /// Validate an in-memory image. `source` labels the mapping in
    /// diagnostics (use the file path, or a synthetic label in tests).
    pub fn from_bytes(bytes: Vec<u8>, source: impl Into<String>) -> Result<Self, DbError> {
        let file_len = bytes.len() as u64;

        // Header: presence, magic, version, self-consistency, CRC.
        if bytes.len() < HEADER_LEN {
            return Err(DbError::Truncated {
                what: "header",
                needed: HEADER_LEN as u64,
                actual: file_len,
            });
        }
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(DbError::BadMagic { found });
        }
        let rd_u32 = |off: usize| le_u32(&bytes[off..off + 4]);
        let rd_u64 = |off: usize| le_u64(&bytes[off..off + 8]);
        let version = rd_u32(8);
        if version != FORMAT_VERSION {
            return Err(DbError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let header_len = rd_u32(12);
        if header_len as usize != HEADER_LEN {
            return Err(DbError::HeaderCorrupt {
                message: format!("header length field {header_len}, expected {HEADER_LEN}"),
            });
        }
        let stored_hcrc = rd_u32(HEADER_CRC_OFFSET);
        let computed_hcrc = crc32(&bytes[..HEADER_CRC_OFFSET]);
        if stored_hcrc != computed_hcrc {
            return Err(DbError::HeaderCorrupt {
                message: format!(
                    "header CRC mismatch: stored {stored_hcrc:#010x}, computed {computed_hcrc:#010x}"
                ),
            });
        }
        let block_size = rd_u64(16) as usize;
        let num_blocks = rd_u64(24) as usize;
        let num_sequences = rd_u64(32) as usize;
        let total_residues = rd_u64(40) as usize;
        let section_count = rd_u32(48) as usize;
        let stored_toc_crc = rd_u32(52);
        if section_count != SECTIONS.len() {
            return Err(DbError::HeaderCorrupt {
                message: format!(
                    "section count {section_count}, version {FORMAT_VERSION} writes {}",
                    SECTIONS.len()
                ),
            });
        }
        if num_blocks != block_count(num_sequences, block_size) {
            return Err(DbError::HeaderCorrupt {
                message: format!(
                    "block count {num_blocks} inconsistent with {num_sequences} sequences at block size {block_size}"
                ),
            });
        }

        // Section table: presence, CRC, bounds, contiguity, per-section CRC.
        let toc_end = HEADER_LEN + section_count * TOC_ENTRY_LEN;
        if bytes.len() < toc_end {
            return Err(DbError::Truncated {
                what: "section table",
                needed: toc_end as u64,
                actual: file_len,
            });
        }
        let toc = &bytes[HEADER_LEN..toc_end];
        let computed_toc_crc = crc32(toc);
        if stored_toc_crc != computed_toc_crc {
            return Err(DbError::TocCorrupt {
                stored: stored_toc_crc,
                computed: computed_toc_crc,
            });
        }
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(section_count);
        let mut sections: Vec<SectionReport> = Vec::with_capacity(section_count);
        let mut expected_offset = toc_end as u64;
        for (i, entry) in toc.chunks_exact(TOC_ENTRY_LEN).enumerate() {
            let id = le_u32(&entry[0..4]);
            let stored_crc = le_u32(&entry[4..8]);
            let offset = le_u64(&entry[8..16]);
            let len = le_u64(&entry[16..24]);
            let (want_id, name) = SECTIONS[i];
            if id != want_id {
                return Err(DbError::Layout {
                    message: format!(
                        "section table entry {i} has id {id} ('{}'), expected {want_id} ('{name}')",
                        section_name(id)
                    ),
                });
            }
            let range = range_of(file_len, offset, len, format!("section '{name}'"))?;
            if offset != expected_offset {
                return Err(DbError::Layout {
                    message: format!(
                        "section '{name}' starts at {offset}, expected contiguous {expected_offset}"
                    ),
                });
            }
            expected_offset = range.end as u64;
            let computed_crc = crc32(&bytes[range.clone()]);
            if stored_crc != computed_crc {
                return Err(DbError::SectionCrc {
                    section: name,
                    stored: stored_crc,
                    computed: computed_crc,
                });
            }
            ranges.push(range);
            sections.push(SectionReport {
                name,
                len,
                crc: stored_crc,
            });
        }
        if expected_offset != file_len {
            return Err(DbError::Layout {
                message: format!(
                    "{} trailing bytes after last section",
                    file_len - expected_offset
                ),
            });
        }

        // Structural invariants across sections.
        let residues = ranges[0].clone();
        if residues.len() != total_residues {
            return Err(DbError::Layout {
                message: format!(
                    "residue arena holds {} bytes, header says {total_residues}",
                    residues.len()
                ),
            });
        }
        for (i, &r) in bytes[residues.clone()].iter().enumerate() {
            if (r as usize) >= ALPHABET_SIZE {
                return Err(DbError::Layout {
                    message: format!("residue {i} has encoding {r}, alphabet size {ALPHABET_SIZE}"),
                });
            }
        }
        let entries = num_sequences + 1;
        let seq_offsets = decode_offsets(
            &bytes[ranges[1].clone()],
            entries,
            residues.len() as u64,
            "seq-offsets",
        )?;
        let ids = ranges[2].clone();
        let id_offsets = decode_offsets(
            &bytes[ranges[3].clone()],
            entries,
            ids.len() as u64,
            "id-offsets",
        )?;
        let descs = ranges[4].clone();
        let desc_offsets = decode_offsets(
            &bytes[ranges[5].clone()],
            entries,
            descs.len() as u64,
            "desc-offsets",
        )?;
        let name_range = ranges[6].clone();
        validate_utf8(&bytes[ids.clone()], "id bytes")?;
        validate_utf8(&bytes[descs.clone()], "description bytes")?;
        validate_utf8(&bytes[name_range.clone()], "database name")?;

        Ok(Self {
            region: Arc::new(MappedRegion::new(bytes, source.into())),
            format_version: version,
            block_size,
            num_blocks,
            residues,
            seq_offsets,
            ids,
            id_offsets,
            descs,
            desc_offsets,
            name_range,
            sections,
        })
    }

    /// The shared mapped arena this image's views alias.
    pub fn region(&self) -> &Arc<MappedRegion> {
        &self.region
    }

    /// Format version of the image.
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// Device block size the image was built for (0 = single block).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of device blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of sequences.
    pub fn num_sequences(&self) -> usize {
        self.seq_offsets.len() - 1
    }

    /// Total residues across all sequences.
    pub fn total_residues(&self) -> usize {
        self.residues.len()
    }

    /// Database name stored in the image.
    pub fn name(&self) -> &str {
        validated_str(&self.region.bytes()[self.name_range.clone()])
    }

    /// Range of the residue arena within [`Self::region`]'s bytes.
    pub fn residues_range(&self) -> Range<usize> {
        self.residues.clone()
    }

    /// Arena-relative prefix offsets, `num_sequences + 1` entries.
    pub fn seq_offsets(&self) -> &[usize] {
        &self.seq_offsets
    }

    /// Residues of sequence `i`, zero-copy from the arena.
    pub fn seq_residues(&self, i: usize) -> &[u8] {
        let start = self.residues.start + self.seq_offsets[i];
        let end = self.residues.start + self.seq_offsets[i + 1];
        &self.region.bytes()[start..end]
    }

    /// Identifier of sequence `i`.
    pub fn seq_id(&self, i: usize) -> &str {
        let start = self.ids.start + self.id_offsets[i];
        let end = self.ids.start + self.id_offsets[i + 1];
        validated_str(&self.region.bytes()[start..end])
    }

    /// Description line of sequence `i`.
    pub fn seq_desc(&self, i: usize) -> &str {
        let start = self.descs.start + self.desc_offsets[i];
        let end = self.descs.start + self.desc_offsets[i + 1];
        validated_str(&self.region.bytes()[start..end])
    }

    /// Block partitioning of the image, identical to
    /// [`SequenceDb::blocks`] at the stored block size.
    pub fn blocks(&self) -> Vec<DbBlock> {
        let n = self.num_sequences();
        if n == 0 {
            return Vec::new();
        }
        let bs = if self.block_size == 0 {
            n
        } else {
            self.block_size
        };
        (0..n)
            .step_by(bs)
            .enumerate()
            .map(|(block_id, start)| DbBlock {
                block_id,
                start,
                end: (start + bs).min(n),
            })
            .collect()
    }

    /// Rebuild an owned [`SequenceDb`] equal to the one the image was
    /// built from (same name, ids, descriptions, residues).
    pub fn to_sequence_db(&self) -> SequenceDb {
        let n = self.num_sequences();
        let mut seqs = Vec::with_capacity(n);
        for i in 0..n {
            let mut s = Sequence::from_residues(self.seq_id(i), self.seq_residues(i).to_vec());
            s.description = self.seq_desc(i).to_string();
            seqs.push(s);
        }
        SequenceDb::new(self.name(), seqs)
    }

    /// Post-validation summary for `db verify` reporting. All checks ran
    /// at open; this reports what was verified.
    pub fn summary(&self) -> VerifySummary {
        VerifySummary {
            format_version: self.format_version,
            block_size: self.block_size,
            blocks: self.num_blocks,
            sequences: self.num_sequences(),
            residues: self.total_residues(),
            bytes: self.region.len(),
            sections: self.sections.clone(),
        }
    }
}

// Silence the unused-import lint for the section module: ids are consumed
// through `SECTIONS`, but the reader logic documents itself against them.
const _: u32 = section::RESIDUES;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::build_to_vec;

    fn tiny_db() -> SequenceDb {
        SequenceDb::new(
            "tiny",
            vec![
                Sequence::from_bytes("s0", b"ARNDCQ"),
                Sequence::from_bytes("s1", b"MKVLW"),
                Sequence::from_bytes("s2", b"GHILKMFPST"),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = tiny_db();
        let bytes = build_to_vec(&db, 2);
        let img = DbImage::from_bytes(bytes, "test").unwrap();
        assert_eq!(img.format_version(), FORMAT_VERSION);
        assert_eq!(img.block_size(), 2);
        assert_eq!(img.num_blocks(), 2);
        assert_eq!(img.num_sequences(), 3);
        assert_eq!(img.total_residues(), 21);
        assert_eq!(img.name(), "tiny");
        assert_eq!(img.seq_id(1), "s1");
        assert_eq!(img.seq_residues(1), db.sequences()[1].residues());
        let back = img.to_sequence_db();
        assert_eq!(back.name(), db.name());
        assert_eq!(back.sequences(), db.sequences());
        assert_eq!(img.blocks(), db.blocks(2));
    }

    #[test]
    fn map_and_unmap_are_counted() {
        let before_maps = map_count();
        let before_unmaps = unmap_count();
        let img = DbImage::from_bytes(build_to_vec(&tiny_db(), 0), "count-test").unwrap();
        assert_eq!(map_count(), before_maps + 1);
        let second = img.clone();
        drop(img);
        // A live clone still pins the mapping.
        assert_eq!(unmap_count(), before_unmaps);
        drop(second);
        assert_eq!(unmap_count(), before_unmaps + 1);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = build_to_vec(&tiny_db(), 2);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x55;
            assert!(
                DbImage::from_bytes(corrupt, "flip").is_err(),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn truncations_are_typed() {
        let bytes = build_to_vec(&tiny_db(), 2);
        for cut in [0usize, 1, 63, HEADER_LEN, HEADER_LEN + 10, bytes.len() - 1] {
            let err = DbImage::from_bytes(bytes[..cut].to_vec(), "trunc").unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    "truncated" | "offset-range" | "layout" | "section-crc"
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = DbImage::open(std::path::Path::new("/nonexistent/no.cdb")).unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
