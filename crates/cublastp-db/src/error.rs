//! Typed errors for the on-disk database format.
//!
//! Every way a `.cdb` file can be wrong maps to exactly one variant here;
//! the loader never panics and never returns a silently wrong layout. Each
//! variant carries a stable [`DbError::kind`] label that the CI corruption
//! matrix and CLI error lines key on.

/// A corruption, version, or I/O failure while building or loading a
/// database image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The underlying file could not be read or written.
    Io {
        /// Path the operation targeted.
        path: String,
        /// OS error message.
        message: String,
    },
    /// The file ends before a required structure.
    Truncated {
        /// What we were reading when the bytes ran out.
        what: &'static str,
        /// Bytes required to hold it.
        needed: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// The leading magic bytes are not [`crate::format::MAGIC`].
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The format version is one this reader does not understand.
    UnsupportedVersion {
        /// Version stored in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The fixed header fails its CRC or carries impossible field values.
    HeaderCorrupt {
        /// Human-readable detail of the inconsistency.
        message: String,
    },
    /// The section table fails its CRC.
    TocCorrupt {
        /// CRC recorded in the header.
        stored: u32,
        /// CRC computed over the table bytes.
        computed: u32,
    },
    /// A section's payload fails its CRC.
    SectionCrc {
        /// Section name (e.g. `"residues"`).
        section: &'static str,
        /// CRC recorded in the section table.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A section or record offset points outside the file.
    OffsetOutOfRange {
        /// What the offset addresses.
        what: String,
        /// The offending offset.
        offset: u64,
        /// Length requested from that offset.
        len: u64,
        /// Exclusive upper bound that was violated.
        bound: u64,
    },
    /// Sections are individually intact but mutually inconsistent
    /// (e.g. offset arrays not monotone, counts that disagree).
    Layout {
        /// Human-readable detail of the inconsistency.
        message: String,
    },
}

impl DbError {
    /// Stable machine-readable label, one per failure class. The CI
    /// corruption matrix asserts on these, so they must not change.
    pub fn kind(&self) -> &'static str {
        match self {
            DbError::Io { .. } => "io",
            DbError::Truncated { .. } => "truncated",
            DbError::BadMagic { .. } => "bad-magic",
            DbError::UnsupportedVersion { .. } => "bad-version",
            DbError::HeaderCorrupt { .. } => "header-corrupt",
            DbError::TocCorrupt { .. } => "toc-crc",
            DbError::SectionCrc { .. } => "section-crc",
            DbError::OffsetOutOfRange { .. } => "offset-range",
            DbError::Layout { .. } => "layout",
        }
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            DbError::Truncated {
                what,
                needed,
                actual,
            } => write!(
                f,
                "truncated image: {what} needs {needed} bytes, only {actual} available"
            ),
            DbError::BadMagic { found } => {
                write!(
                    f,
                    "bad magic {:02x?} (not a cuBLASTP database image)",
                    found
                )
            }
            DbError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads version {supported})"
            ),
            DbError::HeaderCorrupt { message } => write!(f, "corrupt header: {message}"),
            DbError::TocCorrupt { stored, computed } => write!(
                f,
                "section table CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DbError::SectionCrc {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section '{section}' CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DbError::OffsetOutOfRange {
                what,
                offset,
                len,
                bound,
            } => write!(f, "{what}: range {offset}+{len} exceeds bound {bound}"),
            DbError::Layout { message } => write!(f, "inconsistent layout: {message}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let errs = [
            DbError::Io {
                path: "x".into(),
                message: "m".into(),
            },
            DbError::Truncated {
                what: "header",
                needed: 64,
                actual: 3,
            },
            DbError::BadMagic { found: [0; 8] },
            DbError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            DbError::HeaderCorrupt {
                message: "m".into(),
            },
            DbError::TocCorrupt {
                stored: 1,
                computed: 2,
            },
            DbError::SectionCrc {
                section: "residues",
                stored: 1,
                computed: 2,
            },
            DbError::OffsetOutOfRange {
                what: "section".into(),
                offset: 10,
                len: 10,
                bound: 5,
            },
            DbError::Layout {
                message: "m".into(),
            },
        ];
        let kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kinds must be distinct");
        for e in &errs {
            assert!(!format!("{e}").is_empty());
        }
    }
}
