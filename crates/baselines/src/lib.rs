//! Coarse-grained GPU BLASTP baselines.
//!
//! The paper compares cuBLASTP against the two fastest published GPU
//! BLASTP codes, both of which map *one subject sequence to one thread*
//! and fuse hit detection with ungapped extension in a single kernel
//! (§3.1, Fig. 4):
//!
//! * **CUDA-BLASTP** (Liu, Schmidt, Müller-Wittig 2011) — sorts subject
//!   sequences by length so that threads of a warp get similar work, uses
//!   a compressed DFA; see [`cuda_blastp`].
//! * **GPU-BLASTP** (Xiao, Lin, Feng 2011) — replaces static assignment
//!   with a runtime work queue (a finished thread grabs the next
//!   sequence) and adds two-level output buffering to avoid global
//!   atomics; see [`gpu_blastp`].
//!
//! Both stand-ins share the coarse execution model in [`coarse`]: per-lane
//! serialized costs derived from the *real* per-sequence work (words,
//! hits, extensions — computed with the same `blast-cpu` semantics, so
//! their BLAST output is identical to everything else in the workspace)
//! and per-lane scattered memory traffic — which is exactly why their
//! divergence overhead is high and their global-load efficiency is in the
//! single digits (paper Fig. 19: 5.2 % and 11.5 %).

pub mod coarse;
pub mod cost;
pub mod cuda_blastp;
pub mod gpu_blastp;

pub use coarse::{BaselineResult, BaselineTiming};
pub use cost::SeqWork;
pub use cuda_blastp::CudaBlastp;
pub use gpu_blastp::GpuBlastp;
