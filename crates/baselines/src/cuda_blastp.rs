//! CUDA-BLASTP stand-in (Liu, Schmidt, Müller-Wittig 2011).
//!
//! Coarse-grained, one thread per subject sequence, with the published
//! code's signature optimization: subject sequences are *sorted by length*
//! before assignment so that the 32 lanes of a warp carry similar-length
//! sequences, reducing (but far from eliminating — hit density still
//! varies) the divergence of the fused kernel.

use crate::coarse::{
    finish_on_cpu, run_coarse_kernel, BaselineResult, BaselineTiming, CoarseWeights,
};
use crate::cost::{measure_subject, SeqWork};
use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::hit::DiagonalScratch;
use blast_cpu::search::SearchEngine;
use gpu_sim::device::WARP_SIZE;
use gpu_sim::DeviceConfig;

/// The CUDA-BLASTP baseline searcher.
pub struct CudaBlastp {
    /// Shared query state.
    pub engine: SearchEngine,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Cost weights of the fused kernel.
    pub weights: CoarseWeights,
    /// Warps per block.
    pub warps_per_block: u32,
}

impl CudaBlastp {
    /// Build the baseline for a query.
    pub fn new(
        query: Sequence,
        params: SearchParams,
        device: DeviceConfig,
        db: &SequenceDb,
    ) -> Self {
        Self {
            engine: SearchEngine::new(query, params, db),
            device,
            weights: CoarseWeights::default(),
            warps_per_block: 8,
        }
    }

    /// Search the database.
    pub fn search(&self, db: &SequenceDb) -> BaselineResult {
        // Measure the real per-sequence work (functional + cost inputs).
        let mut scratch = DiagonalScratch::new(self.engine.query.len() + db.max_length() + 1);
        let work: Vec<SeqWork> = db
            .sequences()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                measure_subject(
                    &self.engine.dfa,
                    &self.engine.pssm,
                    s,
                    i as u32,
                    &self.engine.params,
                    &mut scratch,
                )
            })
            .collect();

        // Length-sorted static assignment: warp w gets the w-th chunk of
        // 32 consecutive sequences in descending length order.
        let order = db.indices_by_length_desc();
        let assignment: Vec<Vec<usize>> = order
            .chunks(WARP_SIZE as usize)
            .map(|c| c.to_vec())
            .collect();

        let kernel = run_coarse_kernel(
            &self.device,
            "cuda_blastp_fused",
            &work,
            &assignment,
            &self.weights,
            self.warps_per_block,
        );

        // Transfers: whole database up, extensions down.
        let db_bytes: u64 = db.total_residues() as u64 + (db.len() as u64 + 1) * 8;
        let n_ext: u64 = work.iter().map(|w| w.extensions.len() as u64).sum();
        let h2d_ms = self.device.transfer_ms(db_bytes);
        let d2h_ms = self.device.transfer_ms(n_ext * 20);

        // Gapped extension + traceback on one CPU thread.
        let extensions_by_seq: Vec<(usize, Vec<blast_cpu::ungapped::UngappedExt>)> = work
            .into_iter()
            .enumerate()
            .map(|(i, w)| (i, w.extensions))
            .collect();
        let (report, cpu_ms) = finish_on_cpu(&self.engine, db, extensions_by_seq);

        BaselineResult {
            report,
            timing: BaselineTiming {
                h2d_ms,
                gpu_ms: kernel.time_ms(&self.device),
                d2h_ms,
                cpu_ms,
            },
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_cpu::search::search_sequential;

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(80);
        let spec = DbSpec {
            name: "t",
            num_sequences: 100,
            mean_length: 130,
            homolog_fraction: 0.25,
            seed: 77,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    #[test]
    fn output_identical_to_cpu_reference() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);
        let baseline = CudaBlastp::new(q, params, DeviceConfig::k20c(), &db);
        let result = baseline.search(&db);
        assert_eq!(result.report.identity_key(), cpu.report.identity_key());
        assert!(!result.report.hits.is_empty());
    }

    #[test]
    fn coarse_kernel_is_divergent_and_uncoalesced() {
        let (q, db) = workload();
        let baseline = CudaBlastp::new(q, SearchParams::default(), DeviceConfig::k20c(), &db);
        let result = baseline.search(&db);
        assert!(
            result.kernel.divergence_overhead() > 0.1,
            "divergence = {}",
            result.kernel.divergence_overhead()
        );
        assert!(
            result.kernel.global_load_efficiency() < 0.15,
            "efficiency = {}",
            result.kernel.global_load_efficiency()
        );
        assert!(result.timing.total_ms() > 0.0);
    }

    #[test]
    fn length_sorting_beats_unsorted_assignment() {
        // The optimization CUDA-BLASTP exists for: compare the kernel with
        // length-sorted vs database-order assignment on a length-skewed DB.
        let (q, db) = workload();
        let b = CudaBlastp::new(q, SearchParams::default(), DeviceConfig::k20c(), &db);
        let mut scratch = DiagonalScratch::new(b.engine.query.len() + db.max_length() + 1);
        let work: Vec<SeqWork> = db
            .sequences()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                measure_subject(
                    &b.engine.dfa,
                    &b.engine.pssm,
                    s,
                    i as u32,
                    &b.engine.params,
                    &mut scratch,
                )
            })
            .collect();
        let sorted: Vec<Vec<usize>> = db
            .indices_by_length_desc()
            .chunks(32)
            .map(|c| c.to_vec())
            .collect();
        let unsorted: Vec<Vec<usize>> = (0..db.len())
            .collect::<Vec<usize>>()
            .chunks(32)
            .map(|c| c.to_vec())
            .collect();
        let d = DeviceConfig::k20c();
        let ks = run_coarse_kernel(&d, "sorted", &work, &sorted, &b.weights, 8);
        let ku = run_coarse_kernel(&d, "unsorted", &work, &unsorted, &b.weights, 8);
        assert!(
            ks.divergence_overhead() < ku.divergence_overhead(),
            "sorted {} vs unsorted {}",
            ks.divergence_overhead(),
            ku.divergence_overhead()
        );
    }
}
