//! The shared coarse-grained execution model (paper §3.1, Fig. 4).
//!
//! One lane runs Algorithm 1 for one whole subject sequence. Costs per
//! lane are serialized over its sequence's words, hits and extension
//! positions; the warp takes the slowest lane (SIMT), which is where the
//! coarse baselines' divergence overhead comes from. Memory traffic is
//! per-lane scattered: each lane reads its own sequence, its own
//! `lasthit_arr`, its own scoring cells — so nearly every access is its
//! own 128-byte transaction serving a handful of bytes (the 5–11 % global
//! load efficiency of Fig. 19a).

use crate::cost::SeqWork;
use blast_cpu::report::{PhaseTimes, SearchReport};
use blast_cpu::search::SearchEngine;
use blast_cpu::ungapped::UngappedExt;
use gpu_sim::device::WARP_SIZE;
use gpu_sim::{launch, DeviceConfig, KernelStats, LaunchConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-lane cost weights of the fused coarse kernel.
#[derive(Debug, Clone, Copy)]
pub struct CoarseWeights {
    /// Global transactions per scanned word (subject read + DFA lookup).
    pub tx_per_word: u64,
    /// Useful bytes per scanned word.
    pub bytes_per_word: u64,
    /// Global transactions per hit (lasthit_arr read + write).
    pub tx_per_hit: u64,
    /// Useful bytes per hit.
    pub bytes_per_hit: u64,
    /// Global transactions per extension position (subject + scoring).
    pub tx_per_ext_pos: u64,
    /// Useful bytes per extension position.
    pub bytes_per_ext_pos: u64,
    /// Plain instructions per word / hit / extension position.
    pub instr_per_word: u64,
    /// Instructions per hit.
    pub instr_per_hit: u64,
    /// Instructions per extension position.
    pub instr_per_ext_pos: u64,
    /// Shared-memory bytes per block the launch occupies — a stand-in for
    /// the heavy per-thread register/state pressure of the fused kernel
    /// (which is what limits these kernels' occupancy on real hardware,
    /// Fig. 19c).
    pub state_bytes_per_block: u32,
}

impl Default for CoarseWeights {
    fn default() -> Self {
        Self {
            tx_per_word: 1,
            bytes_per_word: 4,
            tx_per_hit: 2,
            bytes_per_hit: 8,
            tx_per_ext_pos: 1,
            bytes_per_ext_pos: 3,
            instr_per_word: 2,
            instr_per_hit: 3,
            instr_per_ext_pos: 2,
            state_bytes_per_block: 16 * 1024,
        }
    }
}

/// Serialized lane cost of one sequence under the weights (scan + hit +
/// extension work combined — used by the work-queue balancer).
pub fn lane_cycles(w: &SeqWork, weights: &CoarseWeights, device: &DeviceConfig) -> u64 {
    scan_cycles(w, weights, device) + hitext_cycles(w, weights, device)
}

/// Cost of the word-scan part (executes in lockstep across lanes; only
/// sequence-length imbalance diverges here).
pub fn scan_cycles(w: &SeqWork, weights: &CoarseWeights, device: &DeviceConfig) -> u64 {
    w.words * weights.tx_per_word * device.global_transaction_cost
        + w.words * weights.instr_per_word * device.instr_cost
}

/// Cost of the hit-processing and extension part. In a fused coarse
/// kernel these branches fire at unpredictable columns, so one lane's hit
/// work stalls the rest of the warp — the structural divergence of
/// Fig. 4 that no assignment policy can remove.
pub fn hitext_cycles(w: &SeqWork, weights: &CoarseWeights, device: &DeviceConfig) -> u64 {
    let tx = w.hits * weights.tx_per_hit + w.ext_scanned * weights.tx_per_ext_pos;
    let instr = w.hits * weights.instr_per_hit + w.ext_scanned * weights.instr_per_ext_pos;
    tx * device.global_transaction_cost + instr * device.instr_cost
}

/// Per-lane global traffic of one sequence.
pub fn lane_traffic(w: &SeqWork, weights: &CoarseWeights) -> (u64, u64) {
    let tx = w.words * weights.tx_per_word
        + w.hits * weights.tx_per_hit
        + w.ext_scanned * weights.tx_per_ext_pos;
    let bytes = w.words * weights.bytes_per_word
        + w.hits * weights.bytes_per_hit
        + w.ext_scanned * weights.bytes_per_ext_pos;
    (tx, bytes)
}

/// Run the fused coarse kernel given an explicit lane assignment:
/// `assignment[warp][lane]` indexes into `work`. Warps are distributed
/// round-robin over blocks of `warps_per_block`.
pub fn run_coarse_kernel(
    device: &DeviceConfig,
    name: &str,
    work: &[SeqWork],
    assignment: &[Vec<usize>],
    weights: &CoarseWeights,
    warps_per_block: u32,
) -> KernelStats {
    let num_warps = assignment.len() as u32;
    let blocks = num_warps.div_ceil(warps_per_block).max(1);
    let cfg = LaunchConfig {
        blocks,
        warps_per_block,
        shared_bytes_per_block: weights.state_bytes_per_block,
        use_readonly_cache: false,
    };
    launch(device, cfg, name, |block| {
        let lo = (block.block_id * warps_per_block) as usize;
        let hi = (lo + warps_per_block as usize).min(assignment.len());
        for warp in &assignment[lo..hi] {
            // Word scan: lanes advance in lockstep; divergence here comes
            // only from length imbalance.
            let mut lanes: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
            let mut tx_total = 0u64;
            let mut bytes_total = 0u64;
            for &seq in warp.iter().take(WARP_SIZE as usize) {
                let w = &work[seq];
                lanes.push(scan_cycles(w, weights, block.device()));
                let (tx, bytes) = lane_traffic(w, weights);
                tx_total += tx;
                bytes_total += bytes;
            }
            block.lockstep(&lanes);
            // Hit and extension branches: serialized lane by lane (the
            // coarse kernel's structural divergence, Fig. 4).
            for &seq in warp.iter().take(WARP_SIZE as usize) {
                let c = hitext_cycles(&work[seq], weights, block.device());
                if c > 0 {
                    block.lockstep(&[c]);
                }
            }
            block.bulk_traffic(tx_total, bytes_total, 0);
        }
    })
}

/// Timing summary of a coarse baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BaselineTiming {
    /// Host→device transfer (modelled).
    pub h2d_ms: f64,
    /// Fused kernel time (modelled) — the "critical phases".
    pub gpu_ms: f64,
    /// Device→host transfer (modelled).
    pub d2h_ms: f64,
    /// CPU gapped extension + traceback (measured wall-clock).
    pub cpu_ms: f64,
}

impl BaselineTiming {
    /// Total time: the coarse baselines do not overlap CPU and GPU work.
    pub fn total_ms(&self) -> f64 {
        self.h2d_ms + self.gpu_ms + self.d2h_ms + self.cpu_ms
    }
}

/// Result of a coarse baseline search.
pub struct BaselineResult {
    /// Ranked hit list — identical to every other pipeline.
    pub report: SearchReport,
    /// Fused-kernel stats.
    pub kernel: KernelStats,
    /// Timing summary.
    pub timing: BaselineTiming,
}

/// Finish a coarse run: gapped extension + traceback on a single CPU
/// thread (neither baseline overlaps or multithreads the tail), then
/// ranking.
pub fn finish_on_cpu(
    engine: &SearchEngine,
    db: &bio_seq::SequenceDb,
    extensions_by_seq: Vec<(usize, Vec<UngappedExt>)>,
) -> (SearchReport, f64) {
    let t0 = Instant::now();
    let mut report = SearchReport::default();
    let mut times = PhaseTimes::default();
    for (idx, exts) in extensions_by_seq {
        if exts.is_empty() {
            continue;
        }
        engine.finish_subject(
            idx,
            &db.sequences()[idx],
            &exts,
            &mut report,
            Some(&mut times),
        );
    }
    report.finalize(engine.params.max_reported);
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(words: u64, hits: u64, scanned: u64) -> SeqWork {
        SeqWork {
            seq_len: words + 2,
            words,
            hits,
            ext_scanned: scanned,
            extensions: Vec::new(),
        }
    }

    #[test]
    fn lane_cycles_scale_with_work() {
        let d = DeviceConfig::k20c();
        let w = CoarseWeights::default();
        let small = lane_cycles(&work(100, 10, 5), &w, &d);
        let large = lane_cycles(&work(1000, 100, 50), &w, &d);
        assert_eq!(large, small * 10);
    }

    #[test]
    fn coarse_kernel_has_terrible_load_efficiency() {
        let d = DeviceConfig::k20c();
        let weights = CoarseWeights::default();
        let work: Vec<SeqWork> = (0..64).map(work_gen).collect();
        let assignment: Vec<Vec<usize>> = vec![(0..32).collect(), (32..64).collect()];
        let stats = run_coarse_kernel(&d, "fused", &work, &assignment, &weights, 8);
        let eff = stats.global_load_efficiency();
        assert!(
            eff < 0.12,
            "coarse efficiency must be single-digit-ish: {eff}"
        );
        assert!(eff > 0.0);
    }

    fn work_gen(i: usize) -> SeqWork {
        work(100 + (i as u64 * 37) % 400, 20 + (i as u64 * 13) % 60, 30)
    }

    #[test]
    fn skewed_lanes_create_divergence() {
        let d = DeviceConfig::k20c();
        let weights = CoarseWeights::default();
        // One long sequence among 31 short ones.
        let mut w: Vec<SeqWork> = (0..32).map(|_| work(50, 5, 5)).collect();
        w[7] = work(2000, 500, 500);
        let assignment = vec![(0..32).collect::<Vec<usize>>()];
        let stats = run_coarse_kernel(&d, "skew", &w, &assignment, &weights, 8);
        assert!(
            stats.divergence_overhead() > 0.5,
            "skew must dominate: {}",
            stats.divergence_overhead()
        );

        // Balanced lanes: less divergence — but the serialized hit and
        // extension branches keep the coarse kernel divergent even with a
        // perfect assignment (the Fig. 4 structural cost).
        let w2: Vec<SeqWork> = (0..32).map(|_| work(500, 50, 50)).collect();
        let assignment = vec![(0..32).collect::<Vec<usize>>()];
        let stats2 = run_coarse_kernel(&d, "balanced", &w2, &assignment, &weights, 8);
        assert!(stats2.divergence_overhead() < stats.divergence_overhead());
        assert!(
            stats2.divergence_overhead() > 0.2,
            "structural divergence remains"
        );
    }

    #[test]
    fn timing_total() {
        let t = BaselineTiming {
            h2d_ms: 1.0,
            gpu_ms: 10.0,
            d2h_ms: 0.5,
            cpu_ms: 3.0,
        };
        assert!((t.total_ms() - 14.5).abs() < 1e-12);
    }
}
