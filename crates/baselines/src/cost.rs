//! Per-sequence work descriptors for the coarse-grained cost model.
//!
//! One coarse thread executes Algorithm 1 for its whole subject sequence;
//! its serialized cost is a function of how many words it scans, how many
//! hits it looks up, and how far its ungapped extensions run. These
//! numbers come from the *actual* search (the same `blast-cpu` routines
//! every pipeline shares), so the baselines' modelled time reflects the
//! real irregularity of the workload — the source of the divergence the
//! paper measures.

use bio_seq::Sequence;
use blast_core::{Dfa, Pssm, SearchParams, WORD_LEN};
use blast_cpu::hit::{scan_subject_mode, DiagonalScratch, HitStats};
use blast_cpu::ungapped::UngappedExt;

/// Work performed by one coarse thread for one subject sequence.
#[derive(Debug, Clone, Default)]
pub struct SeqWork {
    /// Subject length in residues.
    pub seq_len: u64,
    /// Words scanned (columns).
    pub words: u64,
    /// Hits looked up in the DFA.
    pub hits: u64,
    /// Subject positions scanned by ungapped extensions (including x-drop
    /// overshoot).
    pub ext_scanned: u64,
    /// The extensions themselves (functional output).
    pub extensions: Vec<UngappedExt>,
}

/// X-drop overshoot charged per extension end (matches the fine-grained
/// model's constant).
pub const OVERSHOOT: u64 = 8;

/// Measure the work of one subject with the shared scan semantics.
pub fn measure_subject(
    dfa: &Dfa,
    pssm: &Pssm,
    subject: &Sequence,
    seq_id: u32,
    params: &SearchParams,
    scratch: &mut DiagonalScratch,
) -> SeqWork {
    let mut stats = HitStats::default();
    let mut extensions = Vec::new();
    scan_subject_mode(
        dfa,
        pssm,
        subject.residues(),
        seq_id,
        params.two_hit,
        params.two_hit_window as i64,
        params.xdrop_ungapped,
        scratch,
        &mut extensions,
        &mut stats,
    );
    let ext_scanned = extensions
        .iter()
        .map(|e| e.len as u64 + 2 * OVERSHOOT)
        .sum();
    SeqWork {
        seq_len: subject.len() as u64,
        words: subject.len().saturating_sub(WORD_LEN - 1) as u64,
        hits: stats.hits,
        ext_scanned,
        extensions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::make_query;
    use blast_core::Matrix;

    #[test]
    fn measure_counts_are_consistent() {
        let q = make_query(64);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dfa = Dfa::build(&q, &m, p.threshold);
        let pssm = Pssm::build(&q, &m);
        let mut scratch = DiagonalScratch::new(0);
        let s = make_query(300);
        let subject = Sequence::from_residues("s", s.residues().to_vec());
        let w = measure_subject(&dfa, &pssm, &subject, 3, &p, &mut scratch);
        assert_eq!(w.seq_len, 300);
        assert_eq!(w.words, 298);
        assert!(w.hits > 0);
        assert!(w.extensions.iter().all(|e| e.seq_id == 3));
        if !w.extensions.is_empty() {
            assert!(w.ext_scanned >= w.extensions.len() as u64 * 2 * OVERSHOOT);
        }
    }

    #[test]
    fn short_subject_has_no_words() {
        let q = make_query(32);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dfa = Dfa::build(&q, &m, p.threshold);
        let pssm = Pssm::build(&q, &m);
        let mut scratch = DiagonalScratch::new(0);
        let subject = Sequence::from_bytes("s", b"MK");
        let w = measure_subject(&dfa, &pssm, &subject, 0, &p, &mut scratch);
        assert_eq!(w.words, 0);
        assert_eq!(w.hits, 0);
        assert!(w.extensions.is_empty());
    }
}
