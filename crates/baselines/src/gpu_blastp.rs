//! GPU-BLASTP stand-in (Xiao, Lin, Feng 2011).
//!
//! Coarse-grained like CUDA-BLASTP, but with the published code's two
//! improvements (paper §5):
//!
//! * a **runtime work queue** — a thread that finishes its subject
//!   sequence immediately grabs the next one, so lanes re-balance at
//!   sequence granularity instead of being stuck with a static chunk;
//! * **two-level output buffering** — extensions are written to a
//!   per-thread local buffer and flushed block-wise, avoiding per-hit
//!   global atomics (modelled as cheaper per-hit traffic).
//!
//! The work queue is simulated with a greedy earliest-finish assignment:
//! each next sequence (in database order, as the queue pops them) goes to
//! the lane with the smallest accumulated cost — exactly what the atomic
//! counter achieves on hardware.

use crate::coarse::{
    finish_on_cpu, run_coarse_kernel, BaselineResult, BaselineTiming, CoarseWeights,
};
use crate::cost::{measure_subject, SeqWork};
use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::hit::DiagonalScratch;
use blast_cpu::search::SearchEngine;
use gpu_sim::device::WARP_SIZE;
use gpu_sim::DeviceConfig;

/// The GPU-BLASTP baseline searcher.
pub struct GpuBlastp {
    /// Shared query state.
    pub engine: SearchEngine,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Cost weights (two-level buffering trims the per-hit traffic
    /// relative to [`CoarseWeights::default`]).
    pub weights: CoarseWeights,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Total concurrent lanes the work queue feeds.
    pub total_warps: usize,
}

impl GpuBlastp {
    /// Build the baseline for a query.
    pub fn new(
        query: Sequence,
        params: SearchParams,
        device: DeviceConfig,
        db: &SequenceDb,
    ) -> Self {
        let weights = CoarseWeights {
            // Two-level buffering: extension output goes to a local buffer,
            // so per-hit global traffic halves.
            tx_per_hit: 1,
            ..CoarseWeights::default()
        };
        Self {
            engine: SearchEngine::new(query, params, db),
            device,
            weights,
            warps_per_block: 8,
            total_warps: 104, // 13 SMs × 8 resident warps feeding the queue
        }
    }

    /// Greedy earliest-finish simulation of the runtime work queue:
    /// per-lane sequence lists.
    fn queue_assignment_lanes(&self, work: &[SeqWork]) -> Vec<Vec<usize>> {
        let lanes = (self.total_warps * WARP_SIZE as usize).max(1);
        let mut lane_load = vec![0u64; lanes];
        let mut lane_seqs: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        for (i, w) in work.iter().enumerate() {
            // The queue pop goes to the lane that frees up first.
            let lane = (0..lanes)
                .min_by_key(|&l| (lane_load[l], l))
                .expect("at least one lane");
            lane_load[lane] += crate::coarse::lane_cycles(w, &self.weights, &self.device);
            lane_seqs[lane].push(i);
        }
        lane_seqs
    }

    /// Greedy earliest-finish simulation of the runtime work queue,
    /// regrouped into warps of 32 lanes.
    pub fn queue_assignment(&self, work: &[SeqWork]) -> Vec<Vec<usize>> {
        let lane_seqs = self.queue_assignment_lanes(work);
        lane_seqs
            .chunks(WARP_SIZE as usize)
            .map(|chunk| chunk.iter().flat_map(|l| l.iter().copied()).collect())
            .collect()
    }

    /// Search the database.
    pub fn search(&self, db: &SequenceDb) -> BaselineResult {
        let mut scratch = DiagonalScratch::new(self.engine.query.len() + db.max_length() + 1);
        let work: Vec<SeqWork> = db
            .sequences()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                measure_subject(
                    &self.engine.dfa,
                    &self.engine.pssm,
                    s,
                    i as u32,
                    &self.engine.params,
                    &mut scratch,
                )
            })
            .collect();

        // Work-queue balance (greedy earliest-finish), then merge each
        // lane's sequences into one per-lane work item so the warp model
        // sees its serialized total.
        let lane_seqs = self.queue_assignment_lanes(&work);
        let lanes = lane_seqs.len();
        let mut lane_work: Vec<SeqWork> = (0..lanes).map(|_| SeqWork::default()).collect();
        for (lane, seqs) in lane_seqs.iter().enumerate() {
            for &i in seqs {
                let w = &work[i];
                let lw = &mut lane_work[lane];
                lw.seq_len += w.seq_len;
                lw.words += w.words;
                lw.hits += w.hits;
                lw.ext_scanned += w.ext_scanned;
            }
        }
        let assignment: Vec<Vec<usize>> = (0..self.total_warps)
            .map(|w| {
                (0..WARP_SIZE as usize)
                    .map(|l| w * WARP_SIZE as usize + l)
                    .collect()
            })
            .collect();

        let kernel = run_coarse_kernel(
            &self.device,
            "gpu_blastp_fused",
            &lane_work,
            &assignment,
            &self.weights,
            self.warps_per_block,
        );

        let db_bytes: u64 = db.total_residues() as u64 + (db.len() as u64 + 1) * 8;
        let n_ext: u64 = work.iter().map(|w| w.extensions.len() as u64).sum();
        let h2d_ms = self.device.transfer_ms(db_bytes);
        let d2h_ms = self.device.transfer_ms(n_ext * 20);

        let extensions_by_seq: Vec<(usize, Vec<blast_cpu::ungapped::UngappedExt>)> = work
            .into_iter()
            .enumerate()
            .map(|(i, w)| (i, w.extensions))
            .collect();
        let (report, cpu_ms) = finish_on_cpu(&self.engine, db, extensions_by_seq);

        BaselineResult {
            report,
            timing: BaselineTiming {
                h2d_ms,
                gpu_ms: kernel.time_ms(&self.device),
                d2h_ms,
                cpu_ms,
            },
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuda_blastp::CudaBlastp;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_cpu::search::search_sequential;

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(80);
        let spec = DbSpec {
            name: "t",
            num_sequences: 120,
            mean_length: 130,
            homolog_fraction: 0.25,
            seed: 78,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    #[test]
    fn output_identical_to_cpu_reference() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);
        let baseline = GpuBlastp::new(q, params, DeviceConfig::k20c(), &db);
        let result = baseline.search(&db);
        assert_eq!(result.report.identity_key(), cpu.report.identity_key());
    }

    #[test]
    fn work_queue_beats_static_sorting() {
        // GPU-BLASTP's claim: the runtime queue balances better than
        // CUDA-BLASTP's static length sort → faster fused kernel. The
        // queue only matters when sequences outnumber lanes, so use a
        // database bigger than the 104 × 32 persistent threads.
        let q = make_query(64);
        // Homologs carry far more extension work than equal-length random
        // sequences, so length sorting cannot balance them — the skew the
        // runtime queue absorbs.
        let spec = DbSpec {
            name: "big",
            num_sequences: 5_000,
            mean_length: 110,
            homolog_fraction: 0.08,
            seed: 79,
        };
        let db = generate_db(&spec, &q).db;
        let params = SearchParams::default();
        let d = DeviceConfig::k20c();
        let cuda = CudaBlastp::new(q.clone(), params, d, &db).search(&db);
        let mut gpub_searcher = GpuBlastp::new(q, params, d, &db);
        // The queue pays off once sequences outnumber lanes ~5×; scale the
        // persistent grid down to match this test-sized database (real
        // searches run hundreds of thousands of sequences against the
        // full 104-warp grid).
        gpub_searcher.total_warps = 32;
        let gpub = gpub_searcher.search(&db);
        assert!(
            gpub.timing.gpu_ms < cuda.timing.gpu_ms,
            "gpu-blastp {} ms vs cuda-blastp {} ms",
            gpub.timing.gpu_ms,
            cuda.timing.gpu_ms
        );
    }

    #[test]
    fn queue_assignment_is_balanced() {
        let (q, db) = workload();
        let b = GpuBlastp::new(q, SearchParams::default(), DeviceConfig::k20c(), &db);
        let mut scratch = DiagonalScratch::new(b.engine.query.len() + db.max_length() + 1);
        let work: Vec<SeqWork> = db
            .sequences()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                measure_subject(
                    &b.engine.dfa,
                    &b.engine.pssm,
                    s,
                    i as u32,
                    &b.engine.params,
                    &mut scratch,
                )
            })
            .collect();
        let warps = b.queue_assignment(&work);
        let covered: usize = warps.iter().map(|w| w.len()).sum();
        assert_eq!(covered, db.len(), "every sequence assigned exactly once");
    }
}
