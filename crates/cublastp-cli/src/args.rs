//! Argument parsing for the `cublastp` binary (hand-rolled; no external
//! CLI dependency).

use blast_core::SearchParams;
use cublastp::{
    CuBlastpConfig, ExtensionStrategy, GappedBackend, SeedMode, DEFAULT_GROUP_BUDGET,
    DEFAULT_STEAL_SEED,
};
use gpu_sim::FaultPlan;

/// Usage text.
pub const USAGE: &str = "\
cublastp — protein sequence search (cuBLASTP reproduction)

USAGE:
    cublastp --query <fasta> --db <fasta> [options]
    cublastp --query <fasta> --db-image <cdb> [options]
    cublastp --demo [options]
    cublastp serve --demo [serve options]
    cublastp allvsall --db <fasta> [--shards <n> --devices <n>]
    cublastp db build --db <fasta> --out <path.cdb> [--block-size <n>]
    cublastp db verify <path.cdb>
    cublastp db shard --db <fasta> --out <dir> --shards <n>

OPTIONS:
    --query <path>       query FASTA (one search per record)
    --db <path>          database FASTA
    --db-image <path>    persistent database image (`.cdb`, from `db
                         build`): mapped and validated, searched with no
                         flatten pass; replaces --db
    --db-set <path>      shard-set manifest (`.cdbset`, from `db shard`):
                         every shard maps its own image zero-copy and the
                         search runs on the sharded engine; replaces --db
    --shards <n>         partition the database into n contiguous shards
                         and run the sharded engine (default 1: the flat
                         single-device path); merged output is
                         bit-identical at every shard count
    --devices <n>        simulated devices the work-stealing scheduler
                         distributes (query × shard) items across
                         (default 1; cublastp engine only)
    --steal-seed <n>     seed for the deterministic steal order
                         (default fixed; schedules are reproducible)
    --block-size <n>     sequences per device block (default 1024); for
                         `db build` this is baked into the image, for a
                         search it overrides the partitioning
    --demo               use a built-in synthetic query + database
    --engine <name>      cublastp (default) | cpu | cuda-blastp | gpu-blastp
    --evalue <float>     e-value cutoff (default 10)
    --max-hits <n>       alignments shown per query (default 25)
    --threads <n>        CPU threads for gapped extension/traceback (default 4)
    --strategy <name>    diagonal | hit | window (default window)
    --bins <n>           bins per warp (default 128)
    --mask               SEG-mask low-complexity query regions before seeding
    --comp-based-stats   composition-adjusted e-values for biased queries
    --no-overlap         disable the CPU–GPU pipeline overlap
    --seed-mode <name>   per-query (default) | grouped — grouped packs the
                         query stream into rounds sharing one device word
                         index and makes a single seeding pass per round
                         over each database block (cublastp engine only)
    --group-budget <n>   device index budget per grouped round, in
                         word-entry units (default 65536)
    --gapped-backend <name>
                         cpu (default) | gpu — where gapped extension +
                         traceback run; gpu moves them into the per-block
                         device timeline as a warp-per-seed banded-DP
                         kernel with constant-memory interval traceback
                         (cublastp engine only; output is identical)
    --pipeline-depth <n> database blocks the GPU side may run ahead of the
                         CPU side when overlapped (default 1)
    --alignments         print the aligned residues, not just the table
    --outfmt <name>      pairwise (default) | tab (BLAST outfmt-6 columns:
                         qseqid sseqid pident length mismatch gapopen
                         qstart qend sstart send evalue bitscore)
    --fault-plan <spec>  arm deterministic device faults (testing); spec is
                         comma-separated site[@b<N>][@q<N>][:x<K>|:perm],
                         sites: alloc launch h2d d2h h2d-timeout d2h-timeout
                         workspace panic gapped-launch gapped-d2h
    --max-retries <n>    attempts per block before degrading (default 3)
    --no-cpu-fallback    fail instead of re-running faulted blocks on CPU
    --trace-out <path>   write a Chrome trace_event JSON of the run (open
                         in Perfetto / chrome://tracing)
    --metrics-out <path> write pipeline metrics; .json extension selects
                         JSON, anything else Prometheus text format
    --phase-table        print a per-phase timing table (Fig. 11 style)
    --help               this text

ALLVSALL SUBCOMMAND (many-against-many, DESIGN.md §3.10): search every
query (default: the database against itself) against the sharded
database and print the sparse similarity matrix — one
`qseqid sseqid score bitscore evalue` line per above-threshold pair,
best HSP per pair, streamed per (query-tile × shard) work item.

DB SUBCOMMAND (persistent database images, DESIGN.md §3.9–3.10):
    db build             serialise a FASTA database (or --demo) into a
                         versioned, checksummed `.cdb` image at --out;
                         the write is atomic (tmp file + rename)
    db verify <path>     map and fully validate an image — header CRC,
                         section table CRC, per-section CRCs, layout
                         invariants — and print a section summary
    db shard             split a database into --shards per-shard `.cdb`
                         images plus a `shards.cdbset` manifest in the
                         --out directory (searchable via --db-set)
    --out <path>         output path for `db build` / directory for
                         `db shard`

SERVE OPTIONS (after the `serve` subcommand; the query stream is replayed
through the admission-controlled server, streaming per-block progress):
    --requests <n>       total requests to replay, round-robin over the
                         query FASTA, every fourth one bulk (default 8)
    --workers <n>        serve worker threads (default 2; one is reserved
                         for interactive traffic when more than one)
    --queue-capacity <n> bounded admission queue depth (default 16)
    --deadline-ms <n>    per-request deadline; queue wait counts against
                         it (default: none)

EXIT CODES:
    0 success   2 config error   3 input error   4 device error
    5 pipeline error   6 deadline exceeded   7 overloaded
    8 database image error (corrupt, truncated, or version-mismatched
    `.cdb` — every corruption is a typed error, never a panic)
    (serve mode exits 0 as long as any request completed; 6/7 report a
    run where every request missed its deadline / was shed)";

/// `db` subcommand verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbCmd {
    /// Serialise a database into a `.cdb` image.
    Build,
    /// Map and fully validate an image.
    Verify,
    /// Split a database into per-shard images plus a `.cdbset` manifest.
    Shard,
}

/// Output format of the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutFmt {
    /// Human-readable BLAST-style report (default).
    Pairwise,
    /// Tab-separated values, one line per hit (BLAST `-outfmt 6`).
    Tab,
}

/// Which search pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Fine-grained cuBLASTP on the simulated K20c.
    CuBlastp,
    /// CPU reference (FSA-BLAST / NCBI-BLAST stand-in).
    Cpu,
    /// Coarse-grained CUDA-BLASTP baseline.
    CudaBlastp,
    /// Coarse-grained GPU-BLASTP baseline.
    GpuBlastp,
}

impl Engine {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::CuBlastp => "cublastp",
            Engine::Cpu => "cpu",
            Engine::CudaBlastp => "cuda-blastp",
            Engine::GpuBlastp => "gpu-blastp",
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    pub query: Option<String>,
    pub db: Option<String>,
    /// `--db-image`: search a persistent `.cdb` image instead of a FASTA
    /// database (mapped, validated, zero flatten passes).
    pub db_image: Option<String>,
    /// `--db-set`: search a per-shard image set via its `.cdbset`
    /// manifest (sharded engine, every shard mapped zero-copy).
    pub db_set: Option<String>,
    /// `--shards`: shard count for the sharded engine (1 = flat path).
    pub shards: usize,
    /// `--devices`: simulated devices the fleet schedule spans.
    pub devices: usize,
    /// `--steal-seed`: deterministic steal-order seed.
    pub steal_seed: u64,
    /// `allvsall` subcommand: many-against-many sparse-matrix search.
    pub allvsall: bool,
    /// `--block-size`: sequences per device block. `None` keeps the
    /// engine default (or, with `--db-image`, the image's stored size).
    pub block_size: Option<usize>,
    /// `db` subcommand verb, when the first token was `db`.
    pub db_cmd: Option<DbCmd>,
    /// `--out`: output path for `db build`.
    pub out: Option<String>,
    pub demo: bool,
    pub engine: Engine,
    pub evalue: f64,
    pub max_hits: usize,
    pub threads: usize,
    pub strategy: ExtensionStrategy,
    pub bins: usize,
    pub mask: bool,
    pub comp_based_stats: bool,
    pub overlap: bool,
    pub pipeline_depth: usize,
    pub seed_mode: SeedMode,
    pub group_budget: usize,
    pub gapped_backend: GappedBackend,
    pub alignments: bool,
    pub outfmt: OutFmt,
    pub fault_plan: FaultPlan,
    pub max_retries: u32,
    pub cpu_fallback: bool,
    pub trace_out: Option<String>,
    pub metrics_out: Option<String>,
    pub phase_table: bool,
    pub help: bool,
    /// `serve` subcommand: replay the query stream through the
    /// admission-controlled server (cublastp-serve).
    pub serve: bool,
    pub serve_requests: usize,
    pub serve_workers: usize,
    pub serve_queue_capacity: usize,
    pub serve_deadline_ms: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            query: None,
            db: None,
            db_image: None,
            db_set: None,
            shards: 1,
            devices: 1,
            steal_seed: DEFAULT_STEAL_SEED,
            allvsall: false,
            block_size: None,
            db_cmd: None,
            out: None,
            demo: false,
            engine: Engine::CuBlastp,
            evalue: 10.0,
            max_hits: 25,
            threads: 4,
            strategy: ExtensionStrategy::Window,
            bins: 128,
            mask: false,
            comp_based_stats: false,
            overlap: true,
            pipeline_depth: 1,
            seed_mode: SeedMode::PerQuery,
            group_budget: DEFAULT_GROUP_BUDGET,
            gapped_backend: GappedBackend::Cpu,
            alignments: false,
            outfmt: OutFmt::Pairwise,
            fault_plan: FaultPlan::none(),
            max_retries: 3,
            cpu_fallback: true,
            trace_out: None,
            metrics_out: None,
            phase_table: false,
            help: false,
            serve: false,
            serve_requests: 8,
            serve_workers: 2,
            serve_queue_capacity: 16,
            serve_deadline_ms: None,
        }
    }
}

impl Args {
    /// Parse an argument iterator (without the program name).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args::default();
        let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let mut first = true;
        while let Some(arg) = argv.next() {
            match arg.as_str() {
                "serve" if first => args.serve = true,
                "allvsall" if first => args.allvsall = true,
                "db" if first => {
                    args.db_cmd = Some(match value(&mut argv, "db")?.as_str() {
                        "build" => DbCmd::Build,
                        "verify" => DbCmd::Verify,
                        "shard" => DbCmd::Shard,
                        other => {
                            return Err(format!(
                                "unknown db subcommand {other:?} (expected build, verify or shard)"
                            ))
                        }
                    })
                }
                "--db-image" => args.db_image = Some(value(&mut argv, "--db-image")?),
                "--db-set" => args.db_set = Some(value(&mut argv, "--db-set")?),
                "--shards" => {
                    args.shards = value(&mut argv, "--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?
                }
                "--devices" => {
                    args.devices = value(&mut argv, "--devices")?
                        .parse()
                        .map_err(|e| format!("--devices: {e}"))?
                }
                "--steal-seed" => {
                    args.steal_seed = value(&mut argv, "--steal-seed")?
                        .parse()
                        .map_err(|e| format!("--steal-seed: {e}"))?
                }
                "--block-size" => {
                    args.block_size = Some(
                        value(&mut argv, "--block-size")?
                            .parse()
                            .map_err(|e| format!("--block-size: {e}"))?,
                    )
                }
                "--out" => args.out = Some(value(&mut argv, "--out")?),
                "--requests" => {
                    args.serve_requests = value(&mut argv, "--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?
                }
                "--workers" => {
                    args.serve_workers = value(&mut argv, "--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--queue-capacity" => {
                    args.serve_queue_capacity = value(&mut argv, "--queue-capacity")?
                        .parse()
                        .map_err(|e| format!("--queue-capacity: {e}"))?
                }
                "--deadline-ms" => {
                    args.serve_deadline_ms = Some(
                        value(&mut argv, "--deadline-ms")?
                            .parse()
                            .map_err(|e| format!("--deadline-ms: {e}"))?,
                    )
                }
                "--query" => args.query = Some(value(&mut argv, "--query")?),
                "--db" => args.db = Some(value(&mut argv, "--db")?),
                "--demo" => args.demo = true,
                "--engine" => {
                    args.engine = match value(&mut argv, "--engine")?.as_str() {
                        "cublastp" => Engine::CuBlastp,
                        "cpu" => Engine::Cpu,
                        "cuda-blastp" => Engine::CudaBlastp,
                        "gpu-blastp" => Engine::GpuBlastp,
                        other => return Err(format!("unknown engine {other:?}")),
                    }
                }
                "--evalue" => {
                    args.evalue = value(&mut argv, "--evalue")?
                        .parse()
                        .map_err(|e| format!("--evalue: {e}"))?
                }
                "--max-hits" => {
                    args.max_hits = value(&mut argv, "--max-hits")?
                        .parse()
                        .map_err(|e| format!("--max-hits: {e}"))?
                }
                "--threads" => {
                    args.threads = value(&mut argv, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--strategy" => {
                    args.strategy = match value(&mut argv, "--strategy")?.as_str() {
                        "diagonal" => ExtensionStrategy::Diagonal,
                        "hit" => ExtensionStrategy::Hit,
                        "window" => ExtensionStrategy::Window,
                        other => return Err(format!("unknown strategy {other:?}")),
                    }
                }
                "--bins" => {
                    args.bins = value(&mut argv, "--bins")?
                        .parse()
                        .map_err(|e| format!("--bins: {e}"))?
                }
                "--mask" => args.mask = true,
                "--comp-based-stats" => args.comp_based_stats = true,
                "--no-overlap" => args.overlap = false,
                "--pipeline-depth" => {
                    args.pipeline_depth = value(&mut argv, "--pipeline-depth")?
                        .parse()
                        .map_err(|e| format!("--pipeline-depth: {e}"))?
                }
                "--seed-mode" => {
                    args.seed_mode = match value(&mut argv, "--seed-mode")?.as_str() {
                        "per-query" => SeedMode::PerQuery,
                        "grouped" => SeedMode::Grouped,
                        other => return Err(format!("unknown seed mode {other:?}")),
                    }
                }
                "--group-budget" => {
                    args.group_budget = value(&mut argv, "--group-budget")?
                        .parse()
                        .map_err(|e| format!("--group-budget: {e}"))?
                }
                "--gapped-backend" => {
                    args.gapped_backend = match value(&mut argv, "--gapped-backend")?.as_str() {
                        "cpu" => GappedBackend::Cpu,
                        "gpu" => GappedBackend::Gpu,
                        other => return Err(format!("unknown gapped backend {other:?}")),
                    }
                }
                "--alignments" => args.alignments = true,
                "--outfmt" => {
                    args.outfmt = match value(&mut argv, "--outfmt")?.as_str() {
                        "pairwise" => OutFmt::Pairwise,
                        "tab" | "6" => OutFmt::Tab,
                        other => return Err(format!("unknown output format {other:?}")),
                    }
                }
                "--fault-plan" => {
                    args.fault_plan = FaultPlan::parse(&value(&mut argv, "--fault-plan")?)
                        .map_err(|e| format!("--fault-plan: {e}"))?
                }
                "--max-retries" => {
                    args.max_retries = value(&mut argv, "--max-retries")?
                        .parse()
                        .map_err(|e| format!("--max-retries: {e}"))?
                }
                "--no-cpu-fallback" => args.cpu_fallback = false,
                "--trace-out" => args.trace_out = Some(value(&mut argv, "--trace-out")?),
                "--metrics-out" => args.metrics_out = Some(value(&mut argv, "--metrics-out")?),
                "--phase-table" => args.phase_table = true,
                "--help" | "-h" => args.help = true,
                other => {
                    // `db verify` takes the image as a positional path.
                    if args.db_cmd == Some(DbCmd::Verify)
                        && args.db_image.is_none()
                        && !other.starts_with('-')
                    {
                        args.db_image = Some(other.to_string());
                    } else {
                        return Err(format!("unknown option {other:?}"));
                    }
                }
            }
            first = false;
        }
        if !args.help {
            args.validate()?;
        }
        Ok(args)
    }

    /// Cross-flag validation (skipped under `--help`).
    fn validate(&self) -> Result<(), String> {
        let args = self;
        match args.db_cmd {
            Some(DbCmd::Build) => {
                if !args.demo && args.db.is_none() {
                    return Err("db build needs --db <fasta> (or --demo)".into());
                }
                if args.out.is_none() {
                    return Err("db build needs --out <path.cdb>".into());
                }
                if args.block_size == Some(0) {
                    return Err("--block-size must be positive".into());
                }
                return Ok(());
            }
            Some(DbCmd::Verify) => {
                if args.db_image.is_none() {
                    return Err("db verify needs an image path".into());
                }
                return Ok(());
            }
            Some(DbCmd::Shard) => {
                if !args.demo && args.db.is_none() {
                    return Err("db shard needs --db <fasta> (or --demo)".into());
                }
                if args.out.is_none() {
                    return Err("db shard needs --out <dir>".into());
                }
                if args.shards == 0 {
                    return Err("--shards must be positive".into());
                }
                if args.block_size == Some(0) {
                    return Err("--block-size must be positive".into());
                }
                return Ok(());
            }
            None => {}
        }
        if args.shards == 0 {
            return Err("--shards must be positive".into());
        }
        if args.devices == 0 {
            return Err("--devices must be positive".into());
        }
        if args.db.is_some() && args.db_image.is_some() {
            return Err("--db and --db-image are mutually exclusive".into());
        }
        if args.db_set.is_some() && (args.db.is_some() || args.db_image.is_some()) {
            return Err("--db-set is mutually exclusive with --db and --db-image".into());
        }
        if args.block_size == Some(0) {
            return Err("--block-size must be positive".into());
        }
        let has_db = args.db.is_some() || args.db_image.is_some() || args.db_set.is_some();
        if args.allvsall {
            if args.serve {
                return Err("allvsall and serve are mutually exclusive".into());
            }
            if args.engine != Engine::CuBlastp {
                return Err("allvsall requires --engine cublastp".into());
            }
            if args.seed_mode == SeedMode::Grouped {
                return Err("allvsall drives its own tiling; drop --seed-mode grouped".into());
            }
            if !args.demo && !has_db {
                return Err("allvsall needs --db, --db-image or --db-set (or --demo)".into());
            }
        } else if !args.demo && (args.query.is_none() || !has_db) {
            return Err("need --query and --db, --db-image or --db-set (or --demo)".into());
        }
        if (args.shards > 1 || args.db_set.is_some()) && args.engine != Engine::CuBlastp {
            return Err("--shards / --db-set require --engine cublastp".into());
        }
        if (args.shards > 1 || args.db_set.is_some()) && args.seed_mode == SeedMode::Grouped {
            return Err("--seed-mode grouped is incompatible with sharded search".into());
        }
        if args.db_set.is_some() && args.block_size.is_some() {
            return Err("--block-size is fixed by the shard-set manifest".into());
        }
        if args.bins == 0 {
            return Err("--bins must be positive".into());
        }
        if args.max_retries == 0 {
            return Err("--max-retries must be positive".into());
        }
        if args.pipeline_depth == 0 {
            return Err("--pipeline-depth must be positive".into());
        }
        if args.group_budget == 0 {
            return Err("--group-budget must be positive".into());
        }
        if args.seed_mode == SeedMode::Grouped && args.engine != Engine::CuBlastp {
            return Err("--seed-mode grouped requires --engine cublastp".into());
        }
        if args.gapped_backend == GappedBackend::Gpu && args.engine != Engine::CuBlastp {
            return Err("--gapped-backend gpu requires --engine cublastp".into());
        }
        if args.serve {
            if args.engine != Engine::CuBlastp {
                return Err("serve requires --engine cublastp".into());
            }
            if args.db_set.is_some() {
                return Err("serve loads --db or --db-image; use --shards to shard it".into());
            }
            if args.serve_requests == 0 {
                return Err("--requests must be positive".into());
            }
            if args.serve_workers == 0 {
                return Err("--workers must be positive".into());
            }
            if args.serve_queue_capacity == 0 {
                return Err("--queue-capacity must be positive".into());
            }
        }
        Ok(())
    }

    /// Search parameters implied by the flags.
    pub fn params(&self) -> SearchParams {
        SearchParams {
            evalue_cutoff: self.evalue,
            max_reported: self.max_hits,
            mask_low_complexity: self.mask,
            composition_based_stats: self.comp_based_stats,
            ..SearchParams::default()
        }
    }

    /// cuBLASTP configuration implied by the flags.
    pub fn cublastp_config(&self) -> CuBlastpConfig {
        let mut config = CuBlastpConfig {
            extension: self.strategy,
            num_bins: self.bins,
            cpu_threads: self.threads,
            overlap: self.overlap,
            gapped_backend: self.gapped_backend,
            ..CuBlastpConfig::default()
        };
        config.recovery.max_attempts = self.max_retries;
        config.recovery.cpu_fallback = self.cpu_fallback;
        config.pipeline.depth = self.pipeline_depth;
        if let Some(block_size) = self.block_size {
            config.db_block_size = block_size;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn demo_alone_is_valid() {
        let a = parse(&["--demo"]).unwrap();
        assert!(a.demo);
        assert_eq!(a.engine, Engine::CuBlastp);
    }

    #[test]
    fn query_and_db_required_without_demo() {
        assert!(parse(&["--query", "q.fa"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["--query", "q.fa", "--db", "d.fa"]).is_ok());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--demo",
            "--engine",
            "cpu",
            "--evalue",
            "0.001",
            "--max-hits",
            "7",
            "--threads",
            "2",
            "--strategy",
            "diagonal",
            "--bins",
            "64",
            "--mask",
            "--no-overlap",
            "--pipeline-depth",
            "3",
            "--alignments",
        ])
        .unwrap();
        assert_eq!(a.engine, Engine::Cpu);
        assert_eq!(a.evalue, 0.001);
        assert_eq!(a.max_hits, 7);
        assert_eq!(a.threads, 2);
        assert_eq!(a.strategy, ExtensionStrategy::Diagonal);
        assert_eq!(a.bins, 64);
        assert!(a.mask && !a.overlap && a.alignments);
        let p = a.params();
        assert_eq!(p.evalue_cutoff, 0.001);
        assert!(p.mask_low_complexity);
        let c = a.cublastp_config();
        assert_eq!(c.num_bins, 64);
        assert!(!c.overlap);
        assert_eq!(c.pipeline.depth, 3);
    }

    #[test]
    fn pipeline_depth_defaults_and_rejects_zero() {
        let a = parse(&["--demo"]).unwrap();
        assert_eq!(a.pipeline_depth, 1);
        assert_eq!(a.cublastp_config().pipeline.depth, 1);
        assert!(parse(&["--demo", "--pipeline-depth", "0"]).is_err());
        assert!(parse(&["--demo", "--pipeline-depth", "two"]).is_err());
    }

    #[test]
    fn outfmt_parses_and_rejects() {
        assert_eq!(
            parse(&["--demo", "--outfmt", "tab"]).unwrap().outfmt,
            OutFmt::Tab
        );
        assert_eq!(
            parse(&["--demo", "--outfmt", "6"]).unwrap().outfmt,
            OutFmt::Tab
        );
        assert_eq!(parse(&["--demo"]).unwrap().outfmt, OutFmt::Pairwise);
        assert!(parse(&["--demo", "--outfmt", "xml"]).is_err());
    }

    #[test]
    fn bad_values_rejected() {
        assert!(parse(&["--demo", "--engine", "warp9"]).is_err());
        assert!(parse(&["--demo", "--evalue", "abc"]).is_err());
        assert!(parse(&["--demo", "--bins", "0"]).is_err());
        assert!(parse(&["--demo", "--frobnicate"]).is_err());
        assert!(parse(&["--demo", "--evalue"]).is_err());
    }

    #[test]
    fn help_skips_validation() {
        assert!(parse(&["--help"]).unwrap().help);
    }

    #[test]
    fn seed_mode_parses_and_validates() {
        let d = parse(&["--demo"]).unwrap();
        assert_eq!(d.seed_mode, SeedMode::PerQuery);
        assert_eq!(d.group_budget, DEFAULT_GROUP_BUDGET);
        let a = parse(&["--demo", "--seed-mode", "grouped", "--group-budget", "4096"]).unwrap();
        assert_eq!(a.seed_mode, SeedMode::Grouped);
        assert_eq!(a.group_budget, 4096);
        assert_eq!(
            parse(&["--demo", "--seed-mode", "per-query"])
                .unwrap()
                .seed_mode,
            SeedMode::PerQuery
        );
        assert!(parse(&["--demo", "--seed-mode", "psychic"]).is_err());
        assert!(parse(&["--demo", "--group-budget", "0"]).is_err());
        assert!(parse(&["--demo", "--seed-mode", "grouped", "--engine", "cpu"]).is_err());
    }

    #[test]
    fn gapped_backend_parses_and_validates() {
        let d = parse(&["--demo"]).unwrap();
        assert_eq!(d.gapped_backend, GappedBackend::Cpu);
        assert_eq!(d.cublastp_config().gapped_backend, GappedBackend::Cpu);
        let a = parse(&["--demo", "--gapped-backend", "gpu"]).unwrap();
        assert_eq!(a.gapped_backend, GappedBackend::Gpu);
        assert_eq!(a.cublastp_config().gapped_backend, GappedBackend::Gpu);
        assert_eq!(
            parse(&["--demo", "--gapped-backend", "cpu"])
                .unwrap()
                .gapped_backend,
            GappedBackend::Cpu
        );
        assert!(parse(&["--demo", "--gapped-backend", "fpga"]).is_err());
        assert!(parse(&["--demo", "--gapped-backend", "gpu", "--engine", "cpu"]).is_err());
        // The new fault sites parse in a --fault-plan spec.
        let f = parse(&[
            "--demo",
            "--fault-plan",
            "gapped-launch@b0:x1,gapped-d2h:perm",
        ])
        .unwrap();
        assert_eq!(f.fault_plan.specs().len(), 2);
    }

    #[test]
    fn fault_flags_parse_and_reach_the_config() {
        let a = parse(&[
            "--demo",
            "--fault-plan",
            "launch@b1:x1,alloc:perm",
            "--max-retries",
            "5",
            "--no-cpu-fallback",
        ])
        .unwrap();
        assert_eq!(a.fault_plan.specs().len(), 2);
        assert_eq!(a.max_retries, 5);
        assert!(!a.cpu_fallback);
        let c = a.cublastp_config();
        assert_eq!(c.recovery.max_attempts, 5);
        assert!(!c.recovery.cpu_fallback);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse(&[
            "--demo",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.prom",
            "--phase-table",
        ])
        .unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.prom"));
        assert!(a.phase_table);
        let d = parse(&["--demo"]).unwrap();
        assert!(d.trace_out.is_none() && d.metrics_out.is_none() && !d.phase_table);
        assert!(parse(&["--demo", "--trace-out"]).is_err());
    }

    #[test]
    fn serve_subcommand_parses_and_validates() {
        let d = parse(&["--demo"]).unwrap();
        assert!(!d.serve);
        let a = parse(&[
            "serve",
            "--demo",
            "--requests",
            "12",
            "--workers",
            "3",
            "--queue-capacity",
            "4",
            "--deadline-ms",
            "250",
        ])
        .unwrap();
        assert!(a.serve);
        assert_eq!(a.serve_requests, 12);
        assert_eq!(a.serve_workers, 3);
        assert_eq!(a.serve_queue_capacity, 4);
        assert_eq!(a.serve_deadline_ms, Some(250));
        // `serve` is a subcommand, not a flag: only the first token counts.
        assert!(parse(&["--demo", "serve"]).is_err());
        assert!(parse(&["serve", "--demo", "--requests", "0"]).is_err());
        assert!(parse(&["serve", "--demo", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--demo", "--queue-capacity", "0"]).is_err());
        assert!(parse(&["serve", "--demo", "--engine", "cpu"]).is_err());
    }

    #[test]
    fn db_subcommand_parses_and_validates() {
        let b = parse(&["db", "build", "--db", "d.fa", "--out", "d.cdb"]).unwrap();
        assert_eq!(b.db_cmd, Some(DbCmd::Build));
        assert_eq!(b.out.as_deref(), Some("d.cdb"));
        assert!(b.block_size.is_none());
        let b = parse(&[
            "db",
            "build",
            "--demo",
            "--out",
            "d.cdb",
            "--block-size",
            "64",
        ])
        .unwrap();
        assert_eq!(b.block_size, Some(64));
        let v = parse(&["db", "verify", "d.cdb"]).unwrap();
        assert_eq!(v.db_cmd, Some(DbCmd::Verify));
        assert_eq!(v.db_image.as_deref(), Some("d.cdb"));
        // `db` is a subcommand: only the first token counts.
        assert!(parse(&["--demo", "db", "build"]).is_err());
        assert!(parse(&["db", "explode"]).is_err());
        assert!(parse(&["db"]).is_err());
        assert!(parse(&["db", "build", "--out", "d.cdb"]).is_err()); // no --db/--demo
        assert!(parse(&["db", "build", "--db", "d.fa"]).is_err()); // no --out
        assert!(parse(&["db", "build", "--demo", "--out", "x", "--block-size", "0"]).is_err());
        assert!(parse(&["db", "verify"]).is_err()); // no path
    }

    #[test]
    fn db_shard_subcommand_parses_and_validates() {
        let s = parse(&[
            "db", "shard", "--db", "d.fa", "--out", "dir", "--shards", "4",
        ])
        .unwrap();
        assert_eq!(s.db_cmd, Some(DbCmd::Shard));
        assert_eq!(s.out.as_deref(), Some("dir"));
        assert_eq!(s.shards, 4);
        assert!(parse(&["db", "shard", "--out", "dir"]).is_err()); // no --db/--demo
        assert!(parse(&["db", "shard", "--demo"]).is_err()); // no --out
        assert!(parse(&["db", "shard", "--demo", "--out", "dir", "--shards", "0"]).is_err());
    }

    #[test]
    fn shard_flags_parse_and_validate() {
        let d = parse(&["--demo"]).unwrap();
        assert_eq!(d.shards, 1);
        assert_eq!(d.devices, 1);
        assert_eq!(d.steal_seed, DEFAULT_STEAL_SEED);
        let a = parse(&[
            "--demo",
            "--shards",
            "4",
            "--devices",
            "2",
            "--steal-seed",
            "99",
        ])
        .unwrap();
        assert_eq!((a.shards, a.devices, a.steal_seed), (4, 2, 99));
        assert!(parse(&["--demo", "--shards", "0"]).is_err());
        assert!(parse(&["--demo", "--devices", "0"]).is_err());
        assert!(parse(&["--demo", "--shards", "2", "--engine", "cpu"]).is_err());
        assert!(parse(&["--demo", "--shards", "2", "--seed-mode", "grouped"]).is_err());
    }

    #[test]
    fn db_set_flag_parses_and_validates() {
        let a = parse(&["--query", "q.fa", "--db-set", "s.cdbset"]).unwrap();
        assert_eq!(a.db_set.as_deref(), Some("s.cdbset"));
        assert!(parse(&["--query", "q.fa", "--db-set", "s", "--db", "d.fa"]).is_err());
        assert!(parse(&["--query", "q.fa", "--db-set", "s", "--db-image", "d.cdb"]).is_err());
        assert!(parse(&["--query", "q.fa", "--db-set", "s", "--block-size", "8"]).is_err());
        assert!(parse(&["--query", "q.fa", "--db-set", "s", "--engine", "cpu"]).is_err());
    }

    #[test]
    fn allvsall_subcommand_parses_and_validates() {
        let a = parse(&[
            "allvsall",
            "--db",
            "d.fa",
            "--shards",
            "3",
            "--devices",
            "2",
        ])
        .unwrap();
        assert!(a.allvsall);
        assert!(a.query.is_none(), "query is optional for all-vs-all");
        assert_eq!(a.shards, 3);
        // `allvsall` is a subcommand: only the first token counts.
        assert!(parse(&["--demo", "allvsall"]).is_err());
        assert!(parse(&["allvsall"]).is_err()); // no db source
        assert!(parse(&["allvsall", "--demo"]).is_ok());
        assert!(parse(&["allvsall", "--db", "d.fa", "--engine", "cpu"]).is_err());
        assert!(parse(&["allvsall", "--db", "d.fa", "--seed-mode", "grouped"]).is_err());
    }

    #[test]
    fn db_image_search_flags_parse_and_validate() {
        let a = parse(&["--query", "q.fa", "--db-image", "d.cdb"]).unwrap();
        assert_eq!(a.db_image.as_deref(), Some("d.cdb"));
        assert!(a.db.is_none());
        // Overriding the block partitioning reaches the config.
        let a = parse(&["--demo", "--block-size", "96"]).unwrap();
        assert_eq!(a.cublastp_config().db_block_size, 96);
        assert_eq!(
            parse(&["--demo"]).unwrap().cublastp_config().db_block_size,
            CuBlastpConfig::default().db_block_size
        );
        assert!(parse(&["--demo", "--block-size", "0"]).is_err());
        assert!(parse(&["--query", "q.fa", "--db", "d.fa", "--db-image", "d.cdb"]).is_err());
        assert!(parse(&["--db-image", "d.cdb"]).is_err()); // still needs --query
    }

    #[test]
    fn bad_fault_flags_rejected() {
        assert!(parse(&["--demo", "--fault-plan", "warpcore:perm"]).is_err());
        assert!(parse(&["--demo", "--fault-plan", "launch@z9"]).is_err());
        assert!(parse(&["--demo", "--max-retries", "0"]).is_err());
        assert!(parse(&["--demo", "--max-retries", "many"]).is_err());
    }
}
