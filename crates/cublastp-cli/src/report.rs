//! BLAST-like text report rendering.

use crate::args::{Args, OutFmt};
use bio_seq::alphabet::decode;
use bio_seq::{Sequence, SequenceDb};
use blast_cpu::report::{AlignOp, ReportedHit, SearchReport};
use std::time::Duration;

/// Print the report for one query.
pub fn print(
    query: &Sequence,
    db: &SequenceDb,
    report: &SearchReport,
    args: &Args,
    wall: Duration,
    telemetry: &str,
) {
    if args.outfmt == OutFmt::Tab {
        print_tabular(query, report, args);
        return;
    }
    out!("\nQuery= {} ({} letters)", query.id, query.len());
    out!("# {telemetry}");
    out!("# wall time {:.1} ms", wall.as_secs_f64() * 1e3);
    if report.hits.is_empty() {
        out!("  ***** No hits found *****");
        return;
    }
    out!(
        "\n{:<30} {:>6} {:>8} {:>10} {:>7}",
        "Sequences producing significant alignments:",
        "Score",
        "Bits",
        "E-value",
        "Ident"
    );
    for hit in report.hits.iter().take(args.max_hits) {
        out!(
            "{:<30} {:>6} {:>8.1} {:>10.2e} {:>6.1}%",
            truncate(&hit.subject_id, 30),
            hit.alignment.score,
            hit.bit_score,
            hit.evalue,
            hit.alignment.percent_identity()
        );
    }
    if args.alignments {
        for hit in report.hits.iter().take(args.max_hits) {
            print_alignment(query, db, hit);
        }
    }
}

/// BLAST `-outfmt 6`: twelve tab-separated columns, 1-based inclusive
/// coordinates, one line per hit, no headers.
fn print_tabular(query: &Sequence, report: &SearchReport, args: &Args) {
    for hit in report.hits.iter().take(args.max_hits) {
        let a = &hit.alignment;
        let mismatches = a.columns() as u32 - a.identities - a.gaps;
        let gap_opens = a
            .ops
            .windows(2)
            .filter(|w| w[1] != AlignOp::Sub && w[0] != w[1])
            .count() as u32
            + u32::from(a.ops.first().map(|o| *o != AlignOp::Sub).unwrap_or(false));
        out!(
            "{}\t{}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2e}\t{:.1}",
            query.id,
            hit.subject_id,
            a.percent_identity(),
            a.columns(),
            mismatches,
            gap_opens,
            a.q_start + 1,
            a.q_end,
            a.s_start + 1,
            a.s_end,
            hit.evalue,
            hit.bit_score,
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Render one alignment in BLAST pairwise style (60-column blocks).
fn print_alignment(query: &Sequence, db: &SequenceDb, hit: &ReportedHit) {
    let a = &hit.alignment;
    let subject = &db.sequences()[hit.subject_index];
    out!(
        "\n> {}\n Score = {:.1} bits ({}), Expect = {:.2e}",
        subject.id,
        hit.bit_score,
        a.score,
        hit.evalue
    );
    out!(
        " Identities = {}/{} ({:.0}%), Positives = {}/{} ({:.0}%), Gaps = {}/{}",
        a.identities,
        a.columns(),
        a.percent_identity(),
        a.positives,
        a.columns(),
        a.percent_positives(),
        a.gaps,
        a.columns(),
    );

    // Expand ops into three parallel strings.
    let mut qline = String::new();
    let mut mline = String::new();
    let mut sline = String::new();
    let mut qi = a.q_start as usize;
    let mut si = a.s_start as usize;
    for op in &a.ops {
        match op {
            AlignOp::Sub => {
                let qr = query.residues()[qi];
                let sr = subject.residues()[si];
                qline.push(decode(qr) as char);
                sline.push(decode(sr) as char);
                mline.push(if qr == sr { decode(qr) as char } else { ' ' });
                qi += 1;
                si += 1;
            }
            AlignOp::Ins => {
                qline.push('-');
                mline.push(' ');
                sline.push(decode(subject.residues()[si]) as char);
                si += 1;
            }
            AlignOp::Del => {
                qline.push(decode(query.residues()[qi]) as char);
                mline.push(' ');
                sline.push('-');
                qi += 1;
            }
        }
    }

    // 60-column blocks with 1-based coordinates.
    let mut qpos = a.q_start as usize + 1;
    let mut spos = a.s_start as usize + 1;
    for block in 0..qline.len().div_ceil(60) {
        let lo = block * 60;
        let hi = (lo + 60).min(qline.len());
        let q = &qline[lo..hi];
        let m = &mline[lo..hi];
        let s = &sline[lo..hi];
        let q_consumed = q.chars().filter(|&c| c != '-').count();
        let s_consumed = s.chars().filter(|&c| c != '-').count();
        out!("Query  {qpos:>5} {q} {}", qpos + q_consumed.max(1) - 1);
        out!("             {m}");
        out!("Sbjct  {spos:>5} {s} {}", spos + s_consumed.max(1) - 1);
        qpos += q_consumed;
        spos += s_consumed;
    }
}
