//! `cublastp` — command-line protein sequence search.
//!
//! ```text
//! cublastp --query queries.fasta --db database.fasta [options]
//! cublastp --demo                # generate demo FASTA files and search them
//! ```
//!
//! Searches every query in the query FASTA against the database FASTA
//! with the fine-grained cuBLASTP pipeline (on the simulated K20c) and
//! prints a BLAST-like report. `--engine` switches to the CPU reference
//! or the coarse-grained baselines — all of them produce identical hits.

/// Print to stdout, exiting quietly when the reader closed the pipe
/// (`cublastp --demo | head` must not panic).
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($t)*).is_err() {
            std::process::exit(0);
        }
    }};
}

mod args;
mod report;

use args::{Args, DbCmd, Engine};
use bio_seq::fasta::read_fasta_strict;
use bio_seq::{Sequence, SequenceDb};
use blast_cpu::search::{search_parallel, search_sequential, SearchEngine};
use cublastp::{
    search_all_vs_all, search_batch_with, search_sharded_batch, AllVsAllOptions, BatchOptions,
    CuBlastp, DeviceDb, DeviceDbCache, GappedBackend, SearchError, SeedMode, ShardedBatchOptions,
    ShardedDb, ShardedOptions,
};
use cublastp_db::{build_shard_set, DbImage, ShardSetManifest};
use gpu_sim::{DeviceConfig, FaultInjector};
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

/// Exit code for configuration problems (bad flags, invalid geometry).
const EXIT_CONFIG: u8 = 2;
/// Exit code for input problems (missing or malformed FASTA).
const EXIT_INPUT: u8 = 3;
/// Exit code for device faults that survived retry and degradation.
const EXIT_DEVICE: u8 = 4;
/// Exit code for pipeline failures (worker panics, channel teardown).
const EXIT_PIPELINE: u8 = 5;
/// Exit code for a request whose deadline expired mid-search.
const EXIT_DEADLINE: u8 = 6;
/// Exit code for a request refused by the admission controller.
const EXIT_OVERLOADED: u8 = 7;
/// Exit code for a corrupt, truncated, or version-mismatched `.cdb`
/// database image (every corruption is a typed error, never a panic).
const EXIT_DB: u8 = 8;

/// Map a search error to the exit code of its category.
fn exit_code_for(err: &SearchError) -> u8 {
    match err.category() {
        "config" => EXIT_CONFIG,
        "input" => EXIT_INPUT,
        "device" => EXIT_DEVICE,
        "deadline" => EXIT_DEADLINE,
        "overloaded" => EXIT_OVERLOADED,
        "db" => EXIT_DB,
        _ => EXIT_PIPELINE,
    }
}

/// Per-phase simulated time accumulated across the batch, for the
/// `--phase-table` report (Fig. 11-style breakdown).
#[derive(Default)]
struct PhaseTable {
    /// `(kernel name, summed simulated ms)` in pipeline order.
    kernels: Vec<(String, f64)>,
    h2d_ms: f64,
    d2h_ms: f64,
    gapped_ms: f64,
    traceback_ms: f64,
    other_ms: f64,
    overlapped_ms: f64,
    serial_ms: f64,
    queries: usize,
    /// Active gapped backend name (set once from the flags).
    gapped_backend: &'static str,
    /// Host wall-clock spent queued behind earlier work, microseconds
    /// (batch scheduler / serving layer; zero for standalone searches).
    queue_wait_us: u64,
    /// Host wall-clock spent on the fault-retry path, microseconds.
    retry_wait_us: u64,
}

impl PhaseTable {
    fn absorb(&mut self, r: &cublastp::CuBlastpResult, device: &DeviceConfig) {
        for k in &r.kernels {
            let ms = k.time_ms(device);
            match self.kernels.iter_mut().find(|(n, _)| *n == k.name) {
                Some((_, acc)) => *acc += ms,
                None => self.kernels.push((k.name.clone(), ms)),
            }
        }
        self.h2d_ms += r.timing.h2d_ms;
        self.d2h_ms += r.timing.d2h_ms;
        self.gapped_ms += r.timing.gapped_ms;
        self.traceback_ms += r.timing.traceback_ms;
        self.other_ms += r.timing.other_ms;
        self.overlapped_ms += r.timing.overlapped_ms;
        self.serial_ms += r.timing.serial_ms;
        self.queue_wait_us += r.recovery.queue_wait_us;
        self.retry_wait_us += r.recovery.retry_wait_us;
        self.queries += 1;
    }

    fn print(&self) {
        let gpu: f64 = self.kernels.iter().map(|(_, ms)| ms).sum();
        let total =
            gpu + self.h2d_ms + self.d2h_ms + self.gapped_ms + self.traceback_ms + self.other_ms;
        let pct = |ms: f64| if total > 0.0 { 100.0 * ms / total } else { 0.0 };
        out!(
            "# per-phase timing, summed over {} quer{} (simulated device + modelled CPU):",
            self.queries,
            if self.queries == 1 { "y" } else { "ies" }
        );
        out!("# {:<28} {:>10} {:>7}", "phase", "ms", "%");
        for (name, ms) in &self.kernels {
            out!("# {:<28} {:>10.3} {:>6.1}%", name, ms, pct(*ms));
        }
        for (name, ms) in [
            ("h2d_transfer", self.h2d_ms),
            ("d2h_transfer", self.d2h_ms),
            ("gapped_extension", self.gapped_ms),
            ("traceback", self.traceback_ms),
            ("other (setup+merge)", self.other_ms),
        ] {
            out!("# {:<28} {:>10.3} {:>6.1}%", name, ms, pct(ms));
        }
        out!("# {:<28} {:>10.3} {:>6.1}%", "total (serial)", total, 100.0);
        let dispatch = blast_cpu::simd::dispatch_report();
        out!(
            "# cpu simd dispatch: {} (detected {}{})",
            dispatch.active.name(),
            dispatch.detected.name(),
            if dispatch.forced_scalar_env {
                ", CUBLASTP_FORCE_SCALAR=1"
            } else {
                ""
            }
        );
        if !self.gapped_backend.is_empty() {
            out!("# gapped backend: {}", self.gapped_backend);
        }
        // Host wait time, kept out of the phase totals above so retries
        // and queueing are no longer indistinguishable from compute.
        out!(
            "# recovery waits: queue {:.3} ms, retry {:.3} ms (host wall-clock, \
             excluded from phase totals)",
            self.queue_wait_us as f64 / 1e3,
            self.retry_wait_us as f64 / 1e3,
        );
        if self.serial_ms > 0.0 {
            out!(
                "# pipeline overlap: {:.3} ms overlapped vs {:.3} ms serial ({:.1}% hidden)",
                self.overlapped_ms,
                self.serial_ms,
                100.0 * (1.0 - self.overlapped_ms / self.serial_ms)
            );
        }
    }
}

/// Batch-level gapped-backend telemetry behind the `# gapped backend:`
/// summary row — the grep target of the CI backend-equivalence job, like
/// the `# grouped seeding:` row for grouped seeding.
#[derive(Default)]
struct GappedSummary {
    /// Simulated time of the fine gapped kernel, summed over queries.
    fine_kernel_ms: f64,
    /// Blocks whose device gapped phase degraded to the CPU tail.
    degraded: u64,
}

impl GappedSummary {
    fn absorb(&mut self, r: &cublastp::CuBlastpResult, device: &DeviceConfig) {
        if let Some(k) = r.kernel("gapped_extension_fine") {
            self.fine_kernel_ms += k.time_ms(device);
        }
        self.degraded += r.recovery.degraded_gapped;
    }

    /// Print the summary row (stderr under `--outfmt tab` to keep stdout
    /// machine-readable), plus a loud warning when any block silently
    /// left the device gapped path.
    fn print(&self, args: &Args) {
        let row = format!(
            "# gapped backend: {} fine-kernel-ms={:.3} degraded-gapped={}",
            args.gapped_backend.name(),
            self.fine_kernel_ms,
            self.degraded,
        );
        if args.outfmt == args::OutFmt::Tab {
            eprintln!("{row}");
        } else {
            out!("{row}");
        }
        if args.gapped_backend == GappedBackend::Gpu && self.degraded > 0 {
            eprintln!(
                "# warning: gapped device backend degraded {} block{} to the CPU tail",
                self.degraded,
                if self.degraded == 1 { "" } else { "s" },
            );
        }
    }
}

/// Write the accumulated trace / metrics exports requested by
/// `--trace-out` / `--metrics-out`. Returns an error string on I/O
/// failure.
fn write_observability(args: &Args) -> Result<(), String> {
    if let Some(path) = &args.trace_out {
        let trace = obs::take_trace();
        std::fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "# trace: {} events -> {path} (load in Perfetto or chrome://tracing)",
            trace.events.len()
        );
    }
    if let Some(path) = &args.metrics_out {
        let body = if path.ends_with(".json") {
            obs::metrics().to_json()
        } else {
            obs::metrics().to_prometheus()
        };
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("# metrics -> {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(EXIT_CONFIG);
        }
    };
    if args.help {
        out!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    if let Some(cmd) = args.db_cmd {
        return run_db(cmd, &args);
    }

    // Map and fully validate the persistent image up front: a corrupt
    // file must become a typed `db` exit before any search starts.
    let mut args = args;
    let image = match &args.db_image {
        Some(path) => match open_image(path, args.block_size) {
            Ok(img) => {
                // The image's stored block size *is* the device layout;
                // every downstream config must partition the same way.
                args.block_size = Some(img.block_size());
                Some(img)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exit_code_for(&e));
            }
        },
        None => None,
    };

    // A `--db-set` shard-set manifest maps every per-shard image up
    // front (zero flatten passes); its stored block size and shard count
    // override the flags, exactly like a single `--db-image`.
    let mut sharded_set: Option<ShardedDb> = match &args.db_set {
        Some(path) => match open_shard_set(path) {
            Ok(sharded) => {
                args.block_size = Some(sharded.block_size());
                args.shards = sharded.num_shards();
                Some(sharded)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exit_code_for(&e));
            }
        },
        None => None,
    };

    let (queries, db) = match load_inputs(&args, image.as_ref(), sharded_set.as_ref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
    };

    if args.serve {
        return run_serve(&queries, db, image.as_ref(), &args);
    }
    if args.allvsall {
        let sharded = sharded_set.take().unwrap_or_else(|| {
            ShardedDb::split(&db, args.shards, args.cublastp_config().db_block_size)
        });
        return run_allvsall(&queries, &db, &sharded, &args);
    }

    let banner = format!(
        "# cublastp: {} quer{} vs {} ({} sequences, {} residues), engine = {}",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        db.name(),
        db.len(),
        db.total_residues(),
        args.engine.name(),
    );
    if args.outfmt == args::OutFmt::Tab {
        // Keep stdout machine-readable: one tab line per hit, nothing else.
        eprintln!("{banner}");
    } else {
        out!("{banner}");
    }

    // The database is parsed once above and flattened into device layout
    // once here: every query of the stream searches the resident copy
    // (only the first is charged the upload). With `--db-image` the
    // mapped layout is installed directly — zero flatten passes. The CPU
    // worker pool is the process-wide shared one, built on first use.
    let dev_cache = DeviceDbCache::new();
    if let Some(img) = &image {
        if args.engine == Engine::CuBlastp {
            dev_cache.insert(Arc::new(DeviceDb::from_image(img)));
        }
    }
    let flattens_before = cublastp::flatten_count();
    let injector = Arc::new(FaultInjector::new(args.fault_plan.clone()));
    obs::arm(args.trace_out.is_some(), args.metrics_out.is_some());
    let mut phase_table = args.phase_table.then(PhaseTable::default);
    if let Some(table) = &mut phase_table {
        table.gapped_backend = args.gapped_backend.name();
    }
    let mut gapped_summary = (args.engine == Engine::CuBlastp).then(GappedSummary::default);
    let t_batch = std::time::Instant::now();
    let mut failures: Vec<(usize, String, SearchError)> = Vec::new();
    if args.shards > 1 || sharded_set.is_some() {
        let sharded = sharded_set.take().unwrap_or_else(|| {
            ShardedDb::split(&db, args.shards, args.cublastp_config().db_block_size)
        });
        failures = run_sharded_batch(
            &queries,
            &db,
            &sharded,
            &args,
            &injector,
            &mut phase_table,
            &mut gapped_summary,
        );
    } else if args.engine == Engine::CuBlastp && args.seed_mode == SeedMode::Grouped {
        failures = run_grouped_batch(
            &queries,
            &db,
            &args,
            &injector,
            &mut phase_table,
            &mut gapped_summary,
        );
    } else {
        for (i, query) in queries.iter().enumerate() {
            if let Err(e) = run_query(
                query,
                i,
                &db,
                &args,
                &dev_cache,
                &injector,
                &mut phase_table,
                &mut gapped_summary,
            ) {
                eprintln!("error: query {} ({}): {e}", i + 1, query.id);
                failures.push((i, query.id.clone(), e));
            }
        }
    }
    let batch_wall = t_batch.elapsed();
    if let Some(img) = &image {
        // Stderr so `--outfmt tab` stdout stays machine-readable; the CI
        // equivalence job greps this row for `flattens=0`.
        eprintln!(
            "# db image: {} format v{}, {} blocks (block-size {}), flattens={}",
            img.region().source(),
            img.format_version(),
            img.num_blocks(),
            img.block_size(),
            cublastp::flatten_count() - flattens_before,
        );
    }
    if let Some(table) = &phase_table {
        if args.outfmt != args::OutFmt::Tab {
            table.print();
        }
    }
    if let Some(summary) = &gapped_summary {
        summary.print(&args);
    }
    if let Err(e) = write_observability(&args) {
        eprintln!("error: {e}");
        return ExitCode::from(EXIT_INPUT);
    }

    let summary = format!(
        "# batch: {} quer{} in {:.2} ms ({:.2} queries/sec), {} ok, {} failed",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        batch_wall.as_secs_f64() * 1e3,
        queries.len() as f64 / batch_wall.as_secs_f64().max(1e-12),
        queries.len() - failures.len(),
        failures.len(),
    );
    if args.outfmt == args::OutFmt::Tab {
        eprintln!("{summary}");
    } else {
        out!("{summary}");
    }
    for (i, id, err) in &failures {
        let row = format!("# query {} ({id}): {} error: {err}", i + 1, err.category());
        if args.outfmt == args::OutFmt::Tab {
            eprintln!("{row}");
        } else {
            out!("{row}");
        }
    }
    match failures.first() {
        Some((_, _, err)) => ExitCode::from(exit_code_for(err)),
        None => ExitCode::SUCCESS,
    }
}

/// The `serve` subcommand: replay the query stream through the
/// admission-controlled server (cublastp-serve, DESIGN.md §3.8),
/// streaming per-block progress rows and reporting each request's
/// outcome. Shed and expired requests are *expected* outcomes of an
/// overloaded service, so the run exits 0 as long as at least one
/// request completed; a run where every request failed exits with the
/// first failure's code (6 deadline, 7 overloaded, …).
fn run_serve(
    queries: &[Sequence],
    db: SequenceDb,
    image: Option<&DbImage>,
    args: &Args,
) -> ExitCode {
    use cublastp_serve::{Event, Request, ServeConfig, Server};
    use std::time::Duration;

    obs::arm(args.trace_out.is_some(), args.metrics_out.is_some());
    let serve_cfg = ServeConfig {
        workers: args.serve_workers,
        reserved_interactive_workers: usize::from(args.serve_workers > 1),
        queue_capacity: args.serve_queue_capacity,
        shards: args.shards,
        devices: args.devices,
        default_deadline: args.serve_deadline_ms.map(Duration::from_millis),
        ..ServeConfig::default()
    };
    let injector = (!args.fault_plan.is_empty())
        .then(|| Arc::new(FaultInjector::new(args.fault_plan.clone())));
    let server = match image {
        // Serve straight off the mapped generation (zero flatten passes;
        // later generations arrive via hot swap, not process restart).
        Some(img) if injector.is_none() => Server::from_image(
            img,
            args.params(),
            args.cublastp_config(),
            DeviceConfig::k20c(),
            serve_cfg,
        ),
        Some(_) => Err(SearchError::config(
            "serve: --fault-plan is not supported with --db-image",
        )),
        None => Server::with_injector(
            db,
            args.params(),
            args.cublastp_config(),
            DeviceConfig::k20c(),
            serve_cfg,
            injector,
        ),
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serve: {e}");
            return ExitCode::from(exit_code_for(&e));
        }
    };
    out!(
        "# serve: {} worker{}, queue capacity {}, deadline {}, {} database blocks/search",
        args.serve_workers,
        if args.serve_workers == 1 { "" } else { "s" },
        args.serve_queue_capacity,
        args.serve_deadline_ms
            .map_or_else(|| "none".to_string(), |ms| format!("{ms} ms")),
        server.num_blocks(),
    );
    if args.shards > 1 {
        out!(
            "# serve shards: {} over {} simulated device{}",
            args.shards,
            args.devices,
            if args.devices == 1 { "" } else { "s" },
        );
    }

    let mut handles = Vec::new();
    let mut first_error: Option<SearchError> = None;
    let mut shed = 0usize;
    for i in 0..args.serve_requests {
        let query = queries[i % queries.len()].clone();
        // Every fourth request is bulk-class: enough to exercise the
        // weighted scheduler and the shed-bulk ladder rung in a demo run.
        let req = if i % 4 == 3 {
            Request::bulk(query, "cli-bulk")
        } else {
            Request::interactive(query, "cli")
        };
        let class = req.priority.name();
        match server.submit(req) {
            Ok(h) => handles.push((i, h)),
            Err(e) => {
                out!("# serve q{} {class}: refused: {e}", i + 1);
                if matches!(e, SearchError::Overloaded { .. }) {
                    shed += 1;
                }
                first_error.get_or_insert(e);
            }
        }
    }

    let mut ok = 0usize;
    let mut deadline = 0usize;
    let mut latencies = Vec::new();
    for (i, h) in handles {
        let class = h.priority.name();
        loop {
            match h.next_event() {
                Some(Event::Block {
                    block,
                    blocks_total,
                    partial,
                }) => {
                    out!(
                        "# serve q{} {class}: block {}/{blocks_total} streamed ({} hit{})",
                        i + 1,
                        block + 1,
                        partial.hits.len(),
                        if partial.hits.len() == 1 { "" } else { "s" },
                    );
                }
                Some(Event::Done(result)) => {
                    match *result {
                        Ok(r) => {
                            ok += 1;
                            latencies.push(r.queue_wait_ms + r.service_ms);
                            out!(
                                "# serve q{} {class}: ok, {} hits, queue-wait {:.2} ms, \
                                 service {:.2} ms{}",
                                i + 1,
                                r.result.report.hits.len(),
                                r.queue_wait_ms,
                                r.service_ms,
                                if r.degraded_placement {
                                    " (coarse gapped placement)"
                                } else {
                                    ""
                                },
                            );
                        }
                        Err(e) => {
                            out!("# serve q{} {class}: {} error: {e}", i + 1, e.category());
                            if e.category() == "deadline" {
                                deadline += 1;
                            }
                            first_error.get_or_insert(e);
                        }
                    }
                    break;
                }
                // Unreachable by the serve contract (every admitted
                // request ends in exactly one Done); keep it loud.
                None => {
                    eprintln!(
                        "# serve q{} {class}: worker channel closed without a result",
                        i + 1
                    );
                    first_error.get_or_insert(SearchError::config(
                        "serve: worker channel closed without a result",
                    ));
                    break;
                }
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    let p50 = latencies
        .get(latencies.len().saturating_sub(1) / 2)
        .copied()
        .unwrap_or(0.0);
    out!(
        "# serve summary: {} requests, {} ok, {} deadline-exceeded, {} shed, p50 latency {:.2} ms",
        args.serve_requests,
        ok,
        deadline,
        shed,
        p50,
    );
    if let Err(e) = write_observability(args) {
        eprintln!("error: {e}");
        return ExitCode::from(EXIT_INPUT);
    }
    match first_error {
        Some(e) if ok == 0 => ExitCode::from(exit_code_for(&e)),
        _ => ExitCode::SUCCESS,
    }
}

/// Map and validate a `.cdb` image, rejecting a `--block-size` flag that
/// contradicts the partitioning baked into the file.
fn open_image(path: &str, requested_block_size: Option<usize>) -> Result<DbImage, SearchError> {
    let img = DbImage::open(std::path::Path::new(path))?;
    if let Some(bs) = requested_block_size {
        if bs != img.block_size() {
            return Err(SearchError::config(format!(
                "--block-size {bs} contradicts {path}: image was built at block size {} \
                 (rebuild with `cublastp db build --block-size {bs}`)",
                img.block_size(),
            )));
        }
    }
    Ok(img)
}

/// Load a `.cdbset` manifest and map every per-shard image it lists into
/// a [`ShardedDb`] — the sharded analogue of [`open_image`]. Any stale,
/// swapped, corrupt, or missing shard is a typed `db` error up front.
fn open_shard_set(path: &str) -> Result<ShardedDb, SearchError> {
    let p = std::path::Path::new(path);
    let manifest = ShardSetManifest::load(p)?;
    let images = manifest.open_images(p)?;
    ShardedDb::from_images(&manifest.name, &images)
}

/// The built-in synthetic demo database (the `--demo` search corpus).
fn demo_db() -> SequenceDb {
    let query = bio_seq::generate::make_query(220);
    let spec = bio_seq::generate::DbSpec {
        name: "demo_db",
        num_sequences: 1_000,
        mean_length: 260,
        homolog_fraction: 0.02,
        seed: 2024,
    };
    bio_seq::generate::generate_db(&spec, &query).db
}

/// The smaller `allvsall --demo` corpus: every sequence doubles as a
/// query, so the demo stays a sub-second run instead of a 10⁶-pair one.
fn demo_allvsall_db() -> SequenceDb {
    let query = bio_seq::generate::make_query(150);
    let spec = bio_seq::generate::DbSpec {
        name: "demo_allvsall",
        num_sequences: 40,
        mean_length: 160,
        homolog_fraction: 0.3,
        seed: 77,
    };
    bio_seq::generate::generate_db(&spec, &query).db
}

fn load_inputs(
    args: &Args,
    image: Option<&DbImage>,
    sharded: Option<&ShardedDb>,
) -> Result<(Vec<Sequence>, SequenceDb), String> {
    // Read the query FASTA first so its errors surface before database
    // errors; `--demo` synthesizes queries and `allvsall` without
    // `--query` defaults to the database against itself (filled below).
    let queries_from_file = if args.demo || args.query.is_none() {
        None
    } else {
        let qpath = args.query.as_ref().ok_or("missing --query <fasta>")?;
        let queries = read_fasta_strict(BufReader::new(
            File::open(qpath).map_err(|e| format!("{qpath}: {e}"))?,
        ))
        .map_err(|e| format!("{qpath}: {e}"))?;
        if queries.is_empty() {
            return Err(format!("{qpath}: no sequences"));
        }
        Some(queries)
    };
    let db = if let Some(s) = sharded {
        // Concatenating the per-shard host views reconstructs the full
        // database in manifest order (shards are contiguous slices).
        let seqs: Vec<Sequence> = s
            .shards()
            .iter()
            .flat_map(|sh| sh.db.sequences().iter().cloned())
            .collect();
        SequenceDb::new(s.name().to_string(), seqs)
    } else if let Some(img) = image {
        // Already mapped and validated; rebuild the host-side view.
        img.to_sequence_db()
    } else if args.demo {
        if args.allvsall {
            demo_allvsall_db()
        } else {
            demo_db()
        }
    } else {
        let dpath = args.db.as_ref().ok_or("missing --db <fasta>")?;
        let subjects = read_fasta_strict(BufReader::new(
            File::open(dpath).map_err(|e| format!("{dpath}: {e}"))?,
        ))
        .map_err(|e| format!("{dpath}: {e}"))?;
        if subjects.is_empty() {
            return Err(format!("{dpath}: no sequences"));
        }
        SequenceDb::new(dpath.clone(), subjects)
    };
    let queries = match queries_from_file {
        Some(q) if !args.demo => q,
        // Many-against-many default: the database against itself.
        _ if args.allvsall => db.sequences().to_vec(),
        _ if args.demo => vec![bio_seq::generate::make_query(220)],
        _ => return Err("missing --query <fasta>".into()),
    };
    Ok((queries, db))
}

/// The `db` subcommand: `db build` serialises a FASTA database (or the
/// demo corpus) into a versioned, checksummed `.cdb` image; `db verify`
/// maps one and runs the full validation pass. Every corruption is a
/// typed error and a `db` exit (8) — never a panic.
fn run_db(cmd: DbCmd, args: &Args) -> ExitCode {
    match cmd {
        DbCmd::Build => {
            let db = if args.demo {
                demo_db()
            } else {
                match load_db_fasta(args) {
                    Ok(db) => db,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(EXIT_INPUT);
                    }
                }
            };
            let block_size = args
                .block_size
                .unwrap_or_else(|| cublastp::CuBlastpConfig::default().db_block_size);
            let out_path = args.out.as_deref().unwrap_or("db.cdb");
            match cublastp_db::build_to_file(&db, block_size, std::path::Path::new(out_path)) {
                Ok(summary) => {
                    out!(
                        "# db build: {} -> {out_path}: format v{}, {} sequences, {} residues, \
                         {} blocks (block-size {block_size}), {} bytes",
                        db.name(),
                        cublastp_db::FORMAT_VERSION,
                        summary.sequences,
                        summary.residues,
                        summary.blocks,
                        summary.bytes,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    let e = SearchError::from(e);
                    eprintln!("error: {e}");
                    ExitCode::from(exit_code_for(&e))
                }
            }
        }
        DbCmd::Verify => {
            let path = args.db_image.as_deref().unwrap_or_default();
            match open_image(path, args.block_size) {
                Ok(img) => {
                    let s = img.summary();
                    out!(
                        "# db verify: {path}: ok, format v{}, {} sequences, {} residues, \
                         {} blocks (block-size {}), {} bytes",
                        s.format_version,
                        s.sequences,
                        s.residues,
                        s.blocks,
                        s.block_size,
                        s.bytes,
                    );
                    for sec in &s.sections {
                        out!(
                            "#   section {:<12} {:>10} bytes crc32 {:08x}",
                            sec.name,
                            sec.len,
                            sec.crc
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(exit_code_for(&e))
                }
            }
        }
        DbCmd::Shard => {
            let db = if args.demo {
                demo_db()
            } else {
                match load_db_fasta(args) {
                    Ok(db) => db,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(EXIT_INPUT);
                    }
                }
            };
            let block_size = args
                .block_size
                .unwrap_or_else(|| cublastp::CuBlastpConfig::default().db_block_size);
            let dir = std::path::Path::new(args.out.as_deref().unwrap_or("shards"));
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: {}: {e}", dir.display());
                return ExitCode::from(EXIT_INPUT);
            }
            match build_shard_set(&db, block_size, args.shards, dir) {
                Ok((manifest, path)) => {
                    out!(
                        "# db shard: {} -> {}: {} shards, {} sequences, {} residues \
                         (block-size {block_size})",
                        db.name(),
                        path.display(),
                        manifest.shards.len(),
                        manifest.sequences,
                        manifest.residues,
                    );
                    for (i, s) in manifest.shards.iter().enumerate() {
                        out!(
                            "#   shard {:<3} {} start {} ({} sequences, {} residues)",
                            i,
                            s.file,
                            s.start,
                            s.sequences,
                            s.residues,
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    let e = SearchError::from(e);
                    eprintln!("error: {e}");
                    ExitCode::from(exit_code_for(&e))
                }
            }
        }
    }
}

/// Read the `--db` FASTA for `db build`.
fn load_db_fasta(args: &Args) -> Result<SequenceDb, String> {
    let dpath = args.db.as_ref().ok_or("missing --db <fasta>")?;
    let subjects = read_fasta_strict(BufReader::new(
        File::open(dpath).map_err(|e| format!("{dpath}: {e}"))?,
    ))
    .map_err(|e| format!("{dpath}: {e}"))?;
    if subjects.is_empty() {
        return Err(format!("{dpath}: no sequences"));
    }
    Ok(SequenceDb::new(dpath.clone(), subjects))
}

/// The `--seed-mode grouped` path: the whole query stream runs as one
/// grouped batch (round-packed shared word index, one seeding pass per
/// round per database block), then per-query reports print in input
/// order — bit-identical to what `run_query` prints per query.
fn run_grouped_batch(
    queries: &[Sequence],
    db: &SequenceDb,
    args: &Args,
    injector: &Arc<FaultInjector>,
    phase_table: &mut Option<PhaseTable>,
    gapped_summary: &mut Option<GappedSummary>,
) -> Vec<(usize, String, SearchError)> {
    let params = args.params();
    let config = args.cublastp_config();
    let t0 = std::time::Instant::now();
    let out = search_batch_with(
        queries,
        params,
        config,
        DeviceConfig::k20c(),
        db,
        BatchOptions {
            injector: Some(Arc::clone(injector)),
            seed_mode: SeedMode::Grouped,
            group_budget: args.group_budget,
            ..Default::default()
        },
    );
    // Individual wall-clocks are not observable in a batched run; report
    // each query's share of the batch.
    let wall = t0.elapsed().div_f64(queries.len().max(1) as f64);
    let mut failures = Vec::new();
    for (i, (query, result)) in queries.iter().zip(out.per_query).enumerate() {
        match result {
            Ok(r) => {
                if let Some(table) = phase_table {
                    table.absorb(&r, &DeviceConfig::k20c());
                }
                if let Some(summary) = gapped_summary {
                    summary.absorb(&r, &DeviceConfig::k20c());
                }
                let mut telemetry = format!(
                    "hits {} → filtered {} ({:.1}%) → extensions {}; simulated GPU {:.2} ms (grouped seeding)",
                    r.counts.hits,
                    r.counts.filtered,
                    100.0 * r.counts.survival_ratio(),
                    r.counts.extensions,
                    r.timing.gpu_ms,
                );
                if !r.recovery.is_clean() {
                    telemetry.push_str(&format!(
                        "; recovered from {} fault{} ({} block{} degraded to CPU)",
                        r.recovery.faults,
                        if r.recovery.faults == 1 { "" } else { "s" },
                        r.recovery.degraded_blocks,
                        if r.recovery.degraded_blocks == 1 {
                            ""
                        } else {
                            "s"
                        },
                    ));
                }
                report::print(query, db, &r.report, args, wall, &telemetry);
            }
            Err(e) => {
                eprintln!("error: query {} ({}): {e}", i + 1, query.id);
                failures.push((i, query.id.clone(), e));
            }
        }
    }
    match &out.grouped {
        Some(g) => {
            let mean_occ = if g.rounds.is_empty() {
                0.0
            } else {
                g.rounds.iter().map(|r| r.occupancy).sum::<f64>() / g.rounds.len() as f64
            };
            let row = format!(
                "# grouped seeding: rounds={} queries={} budget={} mean-occupancy={:.3} \
                 amortized-seeding={:.4} ms/block/query",
                g.rounds.len(),
                g.queries_covered(),
                args.group_budget,
                mean_occ,
                g.seeding_ms_per_block_query(),
            );
            if args.outfmt == args::OutFmt::Tab {
                eprintln!("{row}");
            } else {
                out!("{row}");
            }
        }
        // Unreachable by construction; keep it loud so the CI equivalence
        // job catches any future silent fallback.
        None => eprintln!("# warning: grouped seed mode fell back to per-query seeding"),
    }
    failures
}

/// The sharded path (`--shards` > 1 or `--db-set`): the whole query
/// stream runs through the sharded engine — every query searches every
/// shard, cross-shard statistics keep output bit-identical to the flat
/// path, and the work-stealing fleet schedule spans `--devices`
/// simulated devices. The `# shards:` summary row is the grep target of
/// the CI sharded-equivalence job.
#[allow(clippy::too_many_arguments)]
fn run_sharded_batch(
    queries: &[Sequence],
    db: &SequenceDb,
    sharded: &ShardedDb,
    args: &Args,
    injector: &Arc<FaultInjector>,
    phase_table: &mut Option<PhaseTable>,
    gapped_summary: &mut Option<GappedSummary>,
) -> Vec<(usize, String, SearchError)> {
    let t0 = std::time::Instant::now();
    let mut out = search_sharded_batch(
        queries,
        args.params(),
        args.cublastp_config(),
        DeviceConfig::k20c(),
        sharded,
        &ShardedBatchOptions {
            sharded: ShardedOptions {
                devices: args.devices,
                seed: args.steal_seed,
            },
            injector: Some(Arc::clone(injector)),
        },
    );
    // Individual wall-clocks are not observable in a batched run; report
    // each query's share of the batch.
    let wall = t0.elapsed().div_f64(queries.len().max(1) as f64);
    let mut failures = Vec::new();
    for (i, (query, result)) in queries
        .iter()
        .zip(std::mem::take(&mut out.per_query))
        .enumerate()
    {
        match result {
            Ok(r) => {
                if let Some(table) = phase_table {
                    table.absorb(&r, &DeviceConfig::k20c());
                }
                if let Some(summary) = gapped_summary {
                    summary.absorb(&r, &DeviceConfig::k20c());
                }
                let mut telemetry = format!(
                    "hits {} → filtered {} ({:.1}%) → extensions {}; simulated GPU {:.2} ms \
                     ({} shards)",
                    r.counts.hits,
                    r.counts.filtered,
                    100.0 * r.counts.survival_ratio(),
                    r.counts.extensions,
                    r.timing.gpu_ms,
                    sharded.num_shards(),
                );
                if !r.recovery.is_clean() {
                    telemetry.push_str(&format!(
                        "; recovered from {} fault{} ({} block{} degraded to CPU)",
                        r.recovery.faults,
                        if r.recovery.faults == 1 { "" } else { "s" },
                        r.recovery.degraded_blocks,
                        if r.recovery.degraded_blocks == 1 {
                            ""
                        } else {
                            "s"
                        },
                    ));
                }
                report::print(query, db, &r.report, args, wall, &telemetry);
            }
            Err(e) => {
                eprintln!("error: query {} ({}): {e}", i + 1, query.id);
                failures.push((i, query.id.clone(), e));
            }
        }
    }
    let row = format!(
        "# shards: {} devices={} makespan={:.3}ms single-device={:.3}ms speedup={:.2}x \
         efficiency={:.2} steals={} upload={:.3}ms",
        sharded.num_shards(),
        out.devices,
        out.schedule.makespan_ms,
        out.single_device_ms,
        out.speedup(),
        out.efficiency(),
        out.schedule.total_steals(),
        out.shard_upload_ms.iter().sum::<f64>(),
    );
    if args.outfmt == args::OutFmt::Tab {
        eprintln!("{row}");
    } else {
        out!("{row}");
    }
    if args.phase_table && args.outfmt != args::OutFmt::Tab {
        print_fleet_table(sharded, &out);
    }
    failures
}

/// The per-shard / per-device rows of `--phase-table` under the sharded
/// engine: modelled search time per shard and the fleet timeline each
/// device executed (busy, upload, items run, items stolen).
fn print_fleet_table(sharded: &ShardedDb, out: &cublastp::ShardedBatchOutcome) {
    let n = sharded.num_shards();
    let mut cost = vec![0.0f64; n];
    let mut items = vec![0usize; n];
    for (c, &s) in out.item_costs.iter().zip(&out.item_shards) {
        cost[s] += c;
        items[s] += 1;
    }
    out!(
        "# per-shard totals ({n} shards over {} devices):",
        out.devices
    );
    for (i, shard) in sharded.shards().iter().enumerate() {
        out!(
            "# shard {:<3} {:>6} seqs {:>4} items {:>10.3} ms search {:>8.3} ms upload",
            i,
            shard.len(),
            items[i],
            cost[i],
            out.shard_upload_ms[i],
        );
    }
    for (d, t) in out.schedule.per_device.iter().enumerate() {
        out!(
            "# device {:<2} busy {:>10.3} ms ({:>8.3} ms upload), {:>4} items, {} stolen",
            d,
            t.busy_ms,
            t.upload_ms,
            t.items.len(),
            t.steals,
        );
    }
}

/// The `allvsall` subcommand: many-against-many search through the
/// sharded engine, streaming one `qseqid sseqid score bitscore evalue`
/// line per above-threshold pair (the best HSP of the pair) from the
/// sparse similarity matrix.
fn run_allvsall(
    queries: &[Sequence],
    db: &SequenceDb,
    sharded: &ShardedDb,
    args: &Args,
) -> ExitCode {
    obs::arm(args.trace_out.is_some(), args.metrics_out.is_some());
    let t0 = std::time::Instant::now();
    let r = match search_all_vs_all(
        queries,
        args.params(),
        args.cublastp_config(),
        DeviceConfig::k20c(),
        sharded,
        &AllVsAllOptions {
            sharded: ShardedOptions {
                devices: args.devices,
                seed: args.steal_seed,
            },
            ..AllVsAllOptions::default()
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: allvsall: {e}");
            return ExitCode::from(exit_code_for(&e));
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for (q, query) in queries.iter().enumerate() {
        for e in r.matrix.row(q) {
            out!(
                "{}\t{}\t{}\t{:.1}\t{:.2e}",
                query.id,
                db.sequences()[e.subject as usize].id,
                e.score,
                e.bit_score,
                e.evalue,
            );
        }
    }
    let pairs = r.matrix.num_queries * r.matrix.num_subjects;
    let density = if pairs > 0 {
        100.0 * r.matrix.nnz() as f64 / pairs as f64
    } else {
        0.0
    };
    let summary = format!(
        "# allvsall: {} x {} pairs, {} above threshold ({:.2}% dense), {} tiles, {:.2} ms wall",
        r.matrix.num_queries,
        r.matrix.num_subjects,
        r.matrix.nnz(),
        density,
        r.tiles,
        wall_ms,
    );
    let row = format!(
        "# shards: {} devices={} makespan={:.3}ms single-device={:.3}ms speedup={:.2}x steals={}",
        sharded.num_shards(),
        args.devices,
        r.schedule.makespan_ms,
        r.single_device_ms,
        r.speedup(),
        r.schedule.total_steals(),
    );
    if args.outfmt == args::OutFmt::Tab {
        eprintln!("{summary}");
        eprintln!("{row}");
    } else {
        out!("{summary}");
        out!("{row}");
    }
    if let Err(e) = write_observability(args) {
        eprintln!("error: {e}");
        return ExitCode::from(EXIT_INPUT);
    }
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_arguments)]
fn run_query(
    query: &Sequence,
    index: usize,
    db: &SequenceDb,
    args: &Args,
    dev_cache: &DeviceDbCache,
    injector: &Arc<FaultInjector>,
    phase_table: &mut Option<PhaseTable>,
    gapped_summary: &mut Option<GappedSummary>,
) -> Result<(), SearchError> {
    let params = args.params();
    let t0 = std::time::Instant::now();
    let (report, telemetry) = match args.engine {
        Engine::CuBlastp => {
            let config = args.cublastp_config();
            let mut searcher =
                CuBlastp::new(query.clone(), params, config, DeviceConfig::k20c(), db);
            searcher.injector = Arc::clone(injector);
            searcher.stream_index = index as u32;
            let dev_db = dev_cache.get(db, config.db_block_size);
            let r = searcher.search_resident(db, &dev_db, index == 0)?;
            if let Some(table) = phase_table {
                table.absorb(&r, &DeviceConfig::k20c());
            }
            if let Some(summary) = gapped_summary {
                summary.absorb(&r, &DeviceConfig::k20c());
            }
            let mut telemetry = format!(
                "hits {} → filtered {} ({:.1}%) → extensions {}; simulated GPU {:.2} ms, overlapped total {:.2} ms",
                r.counts.hits,
                r.counts.filtered,
                100.0 * r.counts.survival_ratio(),
                r.counts.extensions,
                r.timing.gpu_ms,
                r.timing.total_ms(),
            );
            if !r.recovery.is_clean() {
                telemetry.push_str(&format!(
                    "; recovered from {} fault{} ({} retr{}, {} block{} degraded to CPU)",
                    r.recovery.faults,
                    if r.recovery.faults == 1 { "" } else { "s" },
                    r.recovery.retries,
                    if r.recovery.retries == 1 { "y" } else { "ies" },
                    r.recovery.degraded_blocks,
                    if r.recovery.degraded_blocks == 1 {
                        ""
                    } else {
                        "s"
                    },
                ));
            }
            (r.report, telemetry)
        }
        Engine::Cpu => {
            let engine = SearchEngine::new(query.clone(), params, db);
            let r = if args.threads > 1 {
                search_parallel(&engine, db, args.threads)
            } else {
                search_sequential(&engine, db)
            };
            let telemetry = format!(
                "hits {} → extensions {}",
                r.hit_stats.hits, r.hit_stats.extensions
            );
            (r.report, telemetry)
        }
        Engine::CudaBlastp => {
            let r = baselines::CudaBlastp::new(query.clone(), params, DeviceConfig::k20c(), db)
                .search(db);
            let telemetry = format!("fused kernel {:.2} ms (simulated)", r.timing.gpu_ms);
            (r.report, telemetry)
        }
        Engine::GpuBlastp => {
            let mut s = baselines::GpuBlastp::new(query.clone(), params, DeviceConfig::k20c(), db);
            s.total_warps = (db.len() / 160).clamp(8, 104);
            let r = s.search(db);
            let telemetry = format!("fused kernel {:.2} ms (simulated)", r.timing.gpu_ms);
            (r.report, telemetry)
        }
    };
    let wall = t0.elapsed();
    report::print(query, db, &report, args, wall, &telemetry);
    Ok(())
}
