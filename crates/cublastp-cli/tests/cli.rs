//! End-to-end tests of the `cublastp` binary: spawn the real executable
//! and assert on its stdout/stderr/exit codes.

use std::io::Write;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cublastp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_fasta(path: &std::path::Path, records: &[(&str, &str)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, seq) in records {
        writeln!(f, ">{id}").unwrap();
        writeln!(f, "{seq}").unwrap();
    }
}

/// A deterministic “protein” string long enough to seed hits.
const CORE: &str = "MKVLWAARNDCQEGHILKMFPSTWYVMKVLWAARNDCQEGHILKMFPSTWYV";

#[test]
fn help_exits_zero_with_usage() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE:"));
    assert!(text.contains("--engine"));
}

#[test]
fn unknown_flag_exits_nonzero_with_usage_on_stderr() {
    let out = run(&["--demo", "--frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown option"));
    assert!(err.contains("USAGE:"));
    assert!(out.stdout.is_empty());
}

#[test]
fn missing_inputs_is_an_error() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("need --query and --db"));
}

#[test]
fn nonexistent_file_reports_path() {
    let out = run(&["--query", "/nonexistent/q.fa", "--db", "/nonexistent/d.fa"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("/nonexistent/q.fa"));
}

#[test]
fn malformed_fault_plan_is_a_config_error() {
    let out = run(&["--demo", "--fault-plan", "flux-capacitor:perm"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("--fault-plan"));
}

#[test]
fn invalid_residue_in_fasta_is_an_input_error_with_location() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_badres_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    std::fs::write(&d, ">subject\nMKUV\n").unwrap();
    let out = run(&["--query", q.to_str().unwrap(), "--db", d.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("invalid residue 'U'"), "{err}");
    assert!(err.contains("record 1 (line 2)"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_fault_recovers_and_exits_zero() {
    let out = run(&["--demo", "--fault-plan", "launch:x1"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recovered from 1 fault"), "{text}");
    assert!(text.contains("1 retry"), "{text}");
}

#[test]
fn permanent_fault_degrades_to_cpu_and_exits_zero() {
    let out = run(&["--demo", "--fault-plan", "alloc:perm"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("degraded to CPU"), "{text}");
}

#[test]
fn unrecoverable_device_fault_exits_four() {
    let out = run(&[
        "--demo",
        "--fault-plan",
        "d2h:perm",
        "--max-retries",
        "2",
        "--no-cpu-fallback",
    ]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("device"), "{err}");
    assert!(
        err.contains("2 attempts") || err.contains("after 2"),
        "{err}"
    );
}

#[test]
fn injected_panic_exits_five_with_summary_row() {
    let out = run(&["--demo", "--fault-plan", "panic:perm"]);
    assert_eq!(out.status.code(), Some(5));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 ok, 1 failed"), "{text}");
    assert!(text.contains("pipeline error"), "{text}");
}

#[test]
fn fasta_search_finds_planted_subject_on_every_engine() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(
        &d,
        &[
            ("decoy1", "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG"),
            ("planted", &format!("PPPP{CORE}PPPP")),
            ("decoy2", "KKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKK"),
        ],
    );

    let mut tables = Vec::new();
    for engine in ["cublastp", "cpu", "cuda-blastp", "gpu-blastp"] {
        let out = run(&[
            "--query",
            q.to_str().unwrap(),
            "--db",
            d.to_str().unwrap(),
            "--engine",
            engine,
            "--max-hits",
            "3",
        ]);
        assert!(out.status.success(), "engine {engine}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("planted"), "engine {engine}: {text}");
        // Extract just the hit table for cross-engine comparison.
        let table: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("planted") || l.starts_with("decoy"))
            .collect();
        tables.push(table.join("\n"));
    }
    assert!(
        tables.windows(2).all(|w| w[0] == w[1]),
        "engines disagree:\n{tables:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alignments_flag_prints_pairwise_blocks() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_aln_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(&d, &[("hitseq", CORE)]);
    let out = run(&[
        "--query",
        q.to_str().unwrap(),
        "--db",
        d.to_str().unwrap(),
        "--alignments",
        "--max-hits",
        "1",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Query "), "{text}");
    assert!(text.contains("Sbjct "), "{text}");
    assert!(text.contains("Identities = 52/52 (100%)"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crlf_fasta_is_parsed() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_crlf_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    std::fs::write(&q, format!(">probe\r\n{CORE}\r\n")).unwrap();
    std::fs::write(&d, format!(">subject\r\n{CORE}\r\n")).unwrap();
    let out = run(&["--query", q.to_str().unwrap(), "--db", d.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains(&format!("({} letters)", CORE.len())),
        "CRLF terminator leaked into the sequence: {text}"
    );
    assert!(text.contains("subject"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multibyte_subject_id_does_not_panic() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_utf8_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(
        &d,
        &[("sübjéct_ëxtrêmely_löng_ünïcode_идентификатор", CORE)],
    );
    let out = run(&["--query", q.to_str().unwrap(), "--db", d.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout).unwrap().contains("sübjéct"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_and_metrics_flags_write_exports() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let prom = dir.join("metrics.prom");
    let mjson = dir.join("metrics.json");
    let out = run(&[
        "--demo",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        prom.to_str().unwrap(),
        "--phase-table",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("per-phase timing"), "{text}");
    assert!(text.contains("hit_detection"), "{text}");
    assert!(text.contains("gapped_extension"), "{text}");

    let trace_body = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_body.contains("\"traceEvents\""), "not a Chrome trace");
    assert!(trace_body.contains("gpu_phase"));
    assert!(trace_body.contains("gpu (modelled)"));

    let prom_body = std::fs::read_to_string(&prom).unwrap();
    assert!(
        prom_body.contains("# TYPE cublastp_hits_detected_total counter"),
        "{prom_body}"
    );
    assert!(prom_body.contains("cublastp_phase_ms"), "{prom_body}");

    // A .json metrics path selects the JSON exporter.
    let out = run(&["--demo", "--metrics-out", mjson.to_str().unwrap()]);
    assert!(out.status.success());
    let json_body = std::fs::read_to_string(&mjson).unwrap();
    assert!(json_body.trim_start().starts_with('{'), "{json_body}");
    assert!(json_body.contains("hits_detected_total"), "{json_body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tabular_output_has_twelve_columns() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_tab_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(&d, &[("hitseq", CORE)]);
    let out = run(&[
        "--query",
        q.to_str().unwrap(),
        "--db",
        d.to_str().unwrap(),
        "--outfmt",
        "tab",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let hit_line = text
        .lines()
        .find(|l| l.starts_with("probe\t"))
        .expect("one tabular hit line");
    let cols: Vec<&str> = hit_line.split('\t').collect();
    assert_eq!(cols.len(), 12, "{hit_line}");
    assert_eq!(cols[1], "hitseq");
    assert_eq!(cols[2], "100.000"); // pident
    assert_eq!(cols[3], CORE.len().to_string()); // alignment length
    assert_eq!(cols[4], "0"); // mismatches
    assert_eq!(cols[5], "0"); // gap opens
    assert_eq!(cols[6], "1"); // 1-based qstart
    assert_eq!(cols[7], CORE.len().to_string()); // inclusive qend
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_subcommand_streams_blocks_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(
        &d,
        &[
            ("planted", &format!("PPPP{CORE}PPPP")),
            ("decoy1", "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG"),
            ("decoy2", "KKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKK"),
        ],
    );
    let out = run(&[
        "serve",
        "--query",
        q.to_str().unwrap(),
        "--db",
        d.to_str().unwrap(),
        "--requests",
        "5",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Per-block streaming rows, both priority classes, and the summary.
    assert!(text.contains("block 1/1 streamed"), "{text}");
    assert!(text.contains("q4 bulk: ok"), "{text}");
    assert!(text.contains("q5 interactive: ok"), "{text}");
    assert!(
        text.contains("# serve summary: 5 requests, 5 ok, 0 deadline-exceeded, 0 shed"),
        "{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_deadline_run_exits_six_with_typed_rows() {
    let out = run(&["serve", "--demo", "--requests", "2", "--deadline-ms", "0"]);
    assert_eq!(out.status.code(), Some(6));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deadline error: deadline exceeded"), "{text}");
    assert!(text.contains("2 deadline-exceeded"), "{text}");
}

#[test]
fn serve_degrades_gapped_faults_without_shedding() {
    let out = run(&[
        "serve",
        "--demo",
        "--requests",
        "2",
        "--gapped-backend",
        "gpu",
        "--fault-plan",
        "gapped-launch:perm",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("2 ok, 0 deadline-exceeded, 0 shed"), "{text}");
}

#[test]
fn db_build_verify_and_image_search_roundtrip() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_db_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    let img = dir.join("d.cdb");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(
        &d,
        &[
            ("decoy1", "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG"),
            ("planted", &format!("PPPP{CORE}PPPP")),
            ("decoy2", "KKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKKK"),
        ],
    );

    let out = run(&[
        "db",
        "build",
        "--db",
        d.to_str().unwrap(),
        "--out",
        img.to_str().unwrap(),
        "--block-size",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("format v1, 3 sequences"), "{text}");
    assert!(text.contains("2 blocks (block-size 2)"), "{text}");

    let out = run(&["db", "verify", img.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ok, format v1, 3 sequences"), "{text}");
    assert!(text.contains("section residues"), "{text}");

    // Searching the image is byte-identical to searching the FASTA at
    // the image's block size, with zero flatten passes.
    let tab = |db_args: &[&str]| {
        let mut argv = vec!["--query", q.to_str().unwrap(), "--outfmt", "tab"];
        argv.extend_from_slice(db_args);
        let out = run(&argv);
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(out.stderr).unwrap(),
        )
    };
    let (direct, _) = tab(&["--db", d.to_str().unwrap(), "--block-size", "2"]);
    let (mapped, mapped_err) = tab(&["--db-image", img.to_str().unwrap()]);
    assert_eq!(direct, mapped, "image search diverged from FASTA search");
    assert!(mapped.contains("planted"), "{mapped}");
    assert!(mapped_err.contains("flattens=0"), "{mapped_err}");

    // A contradictory --block-size is a config error, not silent re-partitioning.
    let out = run(&[
        "--query",
        q.to_str().unwrap(),
        "--db-image",
        img.to_str().unwrap(),
        "--block-size",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_db_image_exits_eight_with_typed_error() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_dbcorrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.join("d.fa");
    let img = dir.join("d.cdb");
    write_fasta(&d, &[("planted", &format!("PPPP{CORE}PPPP"))]);
    let out = run(&[
        "db",
        "build",
        "--db",
        d.to_str().unwrap(),
        "--out",
        img.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let good = std::fs::read(&img).unwrap();

    // (corruption, expected error-kind fragment)
    type Corruptor = Box<dyn Fn(&mut Vec<u8>)>;
    let cases: [(&str, Corruptor, &str); 4] = [
        (
            "flipped magic",
            Box::new(|b: &mut Vec<u8>| b[0] ^= 0xFF),
            "bad-magic",
        ),
        (
            "truncation",
            Box::new(|b: &mut Vec<u8>| b.truncate(40)),
            "truncated",
        ),
        (
            "future version",
            Box::new(|b: &mut Vec<u8>| b[8] = 99),
            "bad-version",
        ),
        (
            "payload bit flip",
            Box::new(|b: &mut Vec<u8>| {
                let last = b.len() - 1;
                b[last] ^= 0x01;
            }),
            "section-crc",
        ),
    ];
    for (what, corrupt, kind) in &cases {
        let mut bytes = good.clone();
        corrupt(&mut bytes);
        let bad = dir.join("bad.cdb");
        std::fs::write(&bad, &bytes).unwrap();
        for argv in [
            vec!["db", "verify", bad.to_str().unwrap()],
            vec!["--demo", "--db-image", bad.to_str().unwrap()],
        ] {
            let out = run(&argv);
            assert_eq!(out.status.code(), Some(8), "{what}: {argv:?}");
            let err = String::from_utf8(out.stderr).unwrap();
            assert!(err.contains("database image"), "{what}: {err}");
            assert!(err.contains(kind), "{what}: {err}");
            assert!(!err.contains("panicked"), "{what}: {err}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_runs_from_a_mapped_image() {
    let dir = std::env::temp_dir().join(format!("cublastp_cli_dbserve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let q = dir.join("q.fa");
    let d = dir.join("d.fa");
    let img = dir.join("d.cdb");
    write_fasta(&q, &[("probe", CORE)]);
    write_fasta(&d, &[("planted", &format!("PPPP{CORE}PPPP"))]);
    let out = run(&[
        "db",
        "build",
        "--db",
        d.to_str().unwrap(),
        "--out",
        img.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "serve",
        "--query",
        q.to_str().unwrap(),
        "--db-image",
        img.to_str().unwrap(),
        "--requests",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# serve summary: 3 requests, 3 ok"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase_table_reports_recovery_waits_separately() {
    let out = run(&["--demo", "--phase-table", "--fault-plan", "launch:x1"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let row = text
        .lines()
        .find(|l| l.starts_with("# recovery waits:"))
        .expect("recovery waits row");
    assert!(row.contains("queue"), "{row}");
    assert!(row.contains("retry"), "{row}");
    assert!(row.contains("excluded from phase totals"), "{row}");
    // A retried launch spent real host time on the retry path.
    let retry_ms: f64 = row
        .split("retry ")
        .nth(1)
        .and_then(|s| s.split(" ms").next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(retry_ms > 0.0, "{row}");
}
