//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] is polled by the search driver at block boundaries
//! (and at the top of every recovery retry), so an expired or cancelled
//! query frees its device slot between database blocks instead of running
//! to completion — the serving layer's deadline mechanism (DESIGN.md
//! §3.8). The token is deliberately *cooperative*: a search never stops
//! mid-kernel, so every observable intermediate state is a whole-block
//! state and cancellation can never corrupt pooled workspaces.
//!
//! Three flavours:
//!
//! * [`CancelToken::never`] — the default; polling is a no-op returning
//!   `false` (no allocation, no atomics).
//! * [`CancelToken::with_deadline`] — trips once the wall-clock budget is
//!   spent. The budget includes any time the caller held the token before
//!   the search started, so queue wait counts against the deadline.
//! * [`CancelToken::after_checks`] — deterministic test mode: trips on the
//!   `n`-th poll regardless of wall-clock. The cancellation proptest uses
//!   this to place a cancel point between any two blocks reproducibly.
//!
//! Tokens are cheap to clone (one `Arc`) and safe to poll from any
//! thread; [`CancelToken::cancel`] from another thread trips every clone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock budget measured from `started`, if any.
    deadline: Option<Duration>,
    /// Deterministic trip point: cancel on the `n`-th `check()` call
    /// (1-based), if set. Test-only mode; never combined with `deadline`.
    after_checks: Option<u64>,
    checks: AtomicU64,
    started: Instant,
}

/// A cloneable cancellation handle polled by the search driver between
/// database blocks. See the module docs for the three flavours.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels — polling it is free. This is the
    /// default, so standalone searches pay nothing for the mechanism.
    pub fn never() -> Self {
        Self { inner: None }
    }

    /// A manually-triggered token: trips when [`cancel`](Self::cancel) is
    /// called on any clone.
    pub fn new() -> Self {
        Self::with_inner(None, None)
    }

    /// A token that trips once `budget` wall-clock has elapsed from *now*.
    /// Create it at admission time so queue wait counts against the
    /// deadline.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_inner(Some(budget), None)
    }

    /// Deterministic test mode: trips on the `n`-th [`check`](Self::check)
    /// call (1-based; `0` trips on the first poll). Wall-clock plays no
    /// part, so a cancel point between any two specific blocks is exactly
    /// reproducible.
    pub fn after_checks(n: u64) -> Self {
        Self::with_inner(None, Some(n))
    }

    fn with_inner(deadline: Option<Duration>, after_checks: Option<u64>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                after_checks,
                checks: AtomicU64::new(0),
                started: Instant::now(),
            })),
        }
    }

    /// Trip the token: every clone's next poll returns `true`.
    /// No-op on a [`never`](Self::never) token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True when this token can ever cancel (i.e. it is not
    /// [`never`](Self::never)).
    pub fn is_cancellable(&self) -> bool {
        self.inner.is_some()
    }

    /// Poll the token: returns `true` once cancelled, deadline-expired, or
    /// past the deterministic trip point. Each call counts as one
    /// checkpoint for [`after_checks`](Self::after_checks) mode.
    pub fn check(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let polls = inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let tripped = match (inner.after_checks, inner.deadline) {
            (Some(n), _) => polls >= n.max(1),
            (None, Some(budget)) => inner.started.elapsed() >= budget,
            (None, None) => false,
        };
        if tripped {
            inner.cancelled.store(true, Ordering::Release);
        }
        tripped
    }

    /// Non-counting peek: like [`check`](Self::check) but does not advance
    /// the deterministic checkpoint counter. Used for "already expired?"
    /// fast paths that must not perturb `after_checks` placement.
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match (inner.after_checks, inner.deadline) {
            (Some(_), _) => false,
            (None, Some(budget)) => inner.started.elapsed() >= budget,
            (None, None) => false,
        }
    }

    /// Milliseconds since the token was created (0 for
    /// [`never`](Self::never)) — the `elapsed_ms` a
    /// [`DeadlineExceeded`](crate::SearchError::DeadlineExceeded) error
    /// reports.
    pub fn elapsed_ms(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.started.elapsed().as_millis() as u64)
            .unwrap_or(0)
    }

    /// The wall-clock budget in milliseconds, if this is a deadline token.
    pub fn budget_ms(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|i| i.deadline)
            .map(|d| d.as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        assert!(!t.is_cancellable());
        for _ in 0..100 {
            assert!(!t.check());
        }
        t.cancel(); // no-op
        assert!(!t.check());
        assert_eq!(t.elapsed_ms(), 0);
        assert_eq!(t.budget_ms(), None);
    }

    #[test]
    fn manual_cancel_trips_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.check() && !c.check());
        c.cancel();
        assert!(t.check());
        assert!(c.is_cancelled());
    }

    #[test]
    fn after_checks_trips_deterministically() {
        let t = CancelToken::after_checks(3);
        assert!(!t.check(), "poll 1");
        assert!(!t.check(), "poll 2");
        assert!(!t.is_cancelled(), "peek does not count");
        assert!(t.check(), "poll 3 trips");
        assert!(t.check(), "stays tripped");
        // n = 0 trips immediately.
        assert!(CancelToken::after_checks(0).check());
    }

    #[test]
    fn expired_deadline_trips_and_reports_elapsed() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled());
        assert!(t.check());
        assert!(t.elapsed_ms() >= 1);
        assert_eq!(t.budget_ms(), Some(0));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.check());
        assert!(!t.is_cancelled());
        assert_eq!(t.budget_ms(), Some(3_600_000));
    }
}
