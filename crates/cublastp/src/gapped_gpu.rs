//! Gapped extension as a GPU kernel — the design alternative §3.6
//! *rejects*.
//!
//! CUDA-BLASTP ported gapped extension to the GPU; the paper argues
//! against it: only a small fraction of subjects reach the gapped stage,
//! the DP is irregular (a coarse lane per seed, data-dependent band
//! shapes), and while the GPU grinds through it the CPU sits idle —
//! whereas keeping gapped extension on the CPU lets it overlap with the
//! next block's GPU kernels (Fig. 12). This module implements the
//! rejected option so the `ablation_gapped_gpu` bench can measure the
//! paper's argument instead of asserting it.
//!
//! Functionally the kernel computes exactly
//! [`blast_cpu::gapped::gapped_phase_subject`] (so output identity is
//! preserved); the cost model maps one lane to one gapped seed, with the
//! banded-DP cell count derived from the real alignment extents.

use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::gpu_phase::ExtensionsCsr;
use blast_core::SearchParams;
use blast_cpu::gapped::{gapped_phase_subject, GappedExt};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::{launch, DeviceConfig, KernelStats, LaunchConfig};
use parking_lot::Mutex;

/// Run gapped extension for every subject of a block on the simulated
/// GPU. `extensions` is the ungapped-extension output of the block's GPU
/// phase (CSR over block-local subject ids).
pub fn gapped_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    extensions: &ExtensionsCsr,
    params: &SearchParams,
    trigger: i32,
) -> (Vec<Vec<GappedExt>>, KernelStats) {
    // Work items: subjects with at least one triggering seed.
    let work: Vec<usize> = (0..extensions.num_seqs())
        .filter(|&i| extensions.seq(i).iter().any(|e| e.score >= trigger))
        .collect();

    let launch_cfg = LaunchConfig {
        blocks: cfg.grid_blocks.max(1),
        warps_per_block: cfg.warps_per_block,
        // The DP rows live in per-thread local memory; charge a heavy
        // state footprint (the register/local pressure that caps these
        // kernels' occupancy on real hardware).
        shared_bytes_per_block: 24 * 1024,
        use_readonly_cache: false,
    };

    let results: Mutex<Vec<(usize, Vec<GappedExt>)>> = Mutex::new(Vec::new());
    let blocks = cfg.grid_blocks.max(1) as usize;
    let band = (2 * params.xdrop_gapped + 1) as u64;

    let stats = launch(device, launch_cfg, "gapped_extension_gpu", |block| {
        let mut out: Vec<(usize, Vec<GappedExt>)> = Vec::new();
        let mut lane_costs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        // Lane ↦ subject (coarse): warp batches of 32 subjects, strided
        // over blocks.
        let batches = work.len().div_ceil(WARP_SIZE as usize);
        let mut batch = block.block_id as usize;
        while batch < batches {
            let lo = batch * WARP_SIZE as usize;
            let hi = (lo + WARP_SIZE as usize).min(work.len());
            lane_costs.clear();
            let mut tx_total = 0u64;
            let mut bytes_total = 0u64;
            for &seq in &work[lo..hi] {
                let gapped = gapped_phase_subject(
                    &query.pssm,
                    db.seq(seq),
                    extensions.seq(seq),
                    params,
                    trigger,
                );
                // Banded-DP cost from the real extents: rows × band cells,
                // ~4 instructions + a scoring load per cell; subject and
                // score traffic is per-lane scattered.
                let mut cycles = 0u64;
                let mut tx = 0u64;
                for g in &gapped {
                    let rows = (g.q_end - g.q_start) as u64 + 1;
                    let cells = rows * band;
                    cycles += cells * (4 * block.device().instr_cost + 2)
                        + rows * block.device().global_transaction_cost;
                    tx += rows;
                    bytes_total += rows * 4;
                }
                tx_total += tx;
                lane_costs.push(cycles.max(1));
                out.push((seq, gapped));
            }
            block.lockstep(&lane_costs);
            block.bulk_traffic(tx_total, bytes_total, 0);
            batch += blocks;
        }
        results.lock().extend(out);
    });

    let mut gapped_by_seq: Vec<Vec<GappedExt>> = vec![Vec::new(); extensions.num_seqs()];
    for (seq, gapped) in results.into_inner() {
        gapped_by_seq[seq] = gapped;
    }
    (gapped_by_seq, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_core::{Dfa, Matrix, Pssm};

    fn setup() -> (DeviceQuery, DeviceDbBlock, SearchParams, ExtensionsCsr) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "gg",
            num_sequences: 60,
            mean_length: 140,
            homolog_fraction: 0.3,
            seed: 43,
        };
        let synth = generate_db(&spec, &q);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(synth.db.sequences(), 0);
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let out = crate::gpu_phase::run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &gpu_sim::KernelWorkspace::new(),
            &gpu_sim::FaultInjector::none(),
            gpu_sim::FaultCtx::default(),
        )
        .expect("no faults armed");
        (dq, db, p, out.extensions)
    }

    #[test]
    fn gpu_gapped_matches_cpu_gapped() {
        let (dq, db, p, exts) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let (gpu, stats) = gapped_kernel(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &exts,
            &p,
            p.gapped_trigger,
        );
        let mut any = false;
        for (i, gpu_seq) in gpu.iter().enumerate().take(exts.num_seqs()) {
            let cpu = gapped_phase_subject(&dq.pssm, db.seq(i), exts.seq(i), &p, p.gapped_trigger);
            assert_eq!(gpu_seq, &cpu, "subject {i}");
            any |= !cpu.is_empty();
        }
        assert!(any, "workload produced no gapped extensions");
        assert!(stats.warp_cycles > 0);
        assert!(
            stats.divergence_overhead() > 0.0,
            "coarse gapped DP must diverge"
        );
    }

    #[test]
    fn empty_extension_input() {
        let (dq, db, p, _) = setup();
        let cfg = CuBlastpConfig::default();
        let empty = ExtensionsCsr::from_stream(Vec::new(), db.num_seqs());
        let (gpu, stats) = gapped_kernel(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &empty,
            &p,
            p.gapped_trigger,
        );
        assert!(gpu.iter().all(|g| g.is_empty()));
        assert_eq!(stats.warp_cycles, 0);
    }
}
