//! Warp-based hit detection with binning (paper §3.2, Algorithm 2,
//! Fig. 5).
//!
//! Each warp takes database sequences round-robin (`i += numWarps`); the
//! 32 lanes take consecutive words of the sequence (`j += warpSize`), so
//! subject reads coalesce. Every hit's diagonal maps to a bin
//! (`binId = diagonal mod num_bins`); a per-warp `top` array in shared
//! memory is bumped with an atomic to claim the slot, and the packed
//! 64-bit element (Fig. 7) is written into the bin in global memory.
//!
//! Host-side the bins are one flat **hit arena** in CSR form — a single
//! `keys` buffer with `offsets[slot]..offsets[slot + 1]` delimiting bin
//! `slot` (slot = `warp * num_bins + bin`) — mirroring the device layout
//! instead of contradicting it with ragged `Vec<Vec<u64>>` bins. Each
//! simulated block records its hits in detection order, groups them by
//! slot with a stable counting sort, and returns its arena page by value
//! through [`gpu_sim::launch_map`]; the host stitches pages in block
//! order. All scratch comes from a [`KernelWorkspace`] pool, so the
//! steady state allocates nothing.
//!
//! Hierarchical buffering (§3.5, Fig. 10): the DFA state table lives in
//! shared memory; the query-position lists are fetched through the
//! read-only cache when [`crate::CuBlastpConfig::use_readonly_cache`] is
//! set, and as plain global loads otherwise — the Fig. 17 experiment.

use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::hitpack::pack;
use blast_core::{word_code, WORD_LEN};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::memory::virtual_alloc;
use gpu_sim::{launch_map, DeviceConfig, KernelStats, KernelWorkspace, LaunchConfig};

/// Shared-memory footprint of the compacted DFA state table (the paper
/// keeps states in shared memory; FSA-BLAST's compressed automaton for a
/// protein query fits in a few kilobytes).
pub const DFA_STATES_SHARED_BYTES: u32 = 8 * 1024;

/// Output of the binning kernel: the flat hit arena. Packed hits of bin
/// `slot` (slot = `warp * num_bins + bin`) sit in
/// `keys[offsets[slot]..offsets[slot + 1]]`, in detection order —
/// interleaved across diagonals, exactly the Fig. 5 situation the sorting
/// kernel exists to fix.
pub struct BinnedHits {
    /// CSR bin boundaries: `num_warps * num_bins + 1` entries.
    pub offsets: Vec<u32>,
    /// All packed hits, grouped by bin slot.
    pub keys: Vec<u64>,
    /// Bins per warp.
    pub num_bins: usize,
    /// Total warps that participated.
    pub num_warps: usize,
    /// Total hits detected.
    pub total_hits: u64,
}

impl BinnedHits {
    /// Number of bin slots (`num_warps * num_bins`).
    pub fn num_slots(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Packed hits of bin `slot`.
    #[inline]
    pub fn bin(&self, slot: usize) -> &[u64] {
        &self.keys[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }

    /// Iterate all hits (unordered across bins).
    pub fn iter_hits(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().copied()
    }

    /// Return the arena buffers to the workspace they were drawn from.
    pub fn recycle(self, ws: &KernelWorkspace) {
        ws.offsets.put(self.offsets);
        ws.keys.put(self.keys);
    }
}

/// Run the fine-grained hit-detection + binning kernel over one database
/// block. Returns the hit arena and the kernel's simulated stats.
pub fn binning_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    ws: &KernelWorkspace,
) -> (BinnedHits, KernelStats) {
    let grid_blocks = cfg.grid_blocks.max(1);
    let warps_per_block = cfg.warps_per_block.max(1);
    let num_warps = (grid_blocks * warps_per_block) as usize;
    let num_bins = cfg.num_bins;
    let qlen = query.query_len();

    // The packed bin element (Fig. 7) stores diagonal and subject position
    // in 16 bits each; debug_asserts vanish in release builds, so enforce
    // the representable range here, once per block.
    let max_slen = db.max_seq_len;
    assert!(
        qlen + max_slen <= u16::MAX as usize,
        "query ({qlen}) + longest subject ({max_slen}) exceeds the 16-bit \
         diagonal range of the packed hit format (max 65535 combined)"
    );

    // Shared memory: DFA states + the per-warp bin `top` counters
    // (4 bytes per bin per warp) — the §4.1 occupancy trade-off.
    let shared = DFA_STATES_SHARED_BYTES + (warps_per_block as usize * num_bins * 4) as u32;
    let launch_cfg = LaunchConfig {
        blocks: grid_blocks,
        warps_per_block,
        shared_bytes_per_block: shared,
        use_readonly_cache: cfg.use_readonly_cache,
    };

    // Paper capacity: one bin holds up to `query words` hits; the bins of
    // all warps live in one preallocated global buffer.
    let bin_capacity = qlen.max(1) as u64;
    let bins_base = virtual_alloc(num_warps as u64 * num_bins as u64 * bin_capacity * 8);

    let block_slots = warps_per_block as usize * num_bins;

    let (pages, stats) = launch_map(device, launch_cfg, "hit_detection", |block| {
        // Hits in detection order, as (slot, key) columns; grouped into an
        // arena page at block end. All scratch is pooled.
        let mut det_slots: Vec<u32> = ws.offsets.take();
        let mut det_keys: Vec<u64> = ws.keys.take();
        // Per-lane scratch reused across chunks.
        let mut lane_hits: Vec<Vec<(u32, u32)>> =
            (0..WARP_SIZE).map(|_| ws.lane_hits.take()).collect();
        let mut addrs: Vec<u64> = ws.addrs.take();
        let mut round_bins: Vec<u64> = ws.addrs.take();
        let mut writes: Vec<u64> = ws.addrs.take();
        let mut tops: Vec<u64> = ws.addrs.take();
        // Per-bin hit count of the current round — the worst count is the
        // atomic serialization the simulator charges, so the kernel hands
        // it over instead of having the simulator re-derive it from a
        // target list. Reset via `round_bins` after every round.
        let mut round_cnt: Vec<u64> = ws.addrs.take();
        round_cnt.resize(num_bins, 0);
        // Bin-size histogram for the block's arena page, filled from the
        // final `top` counters as each warp retires (no extra pass).
        let mut page_offsets: Vec<u32> = ws.offsets.take();
        page_offsets.resize(block_slots + 1, 0);

        for warp_in_block in 0..warps_per_block as usize {
            let warp_id = block.block_id as usize * warps_per_block as usize + warp_in_block;
            let warp_bins_base = bins_base + (warp_id * num_bins) as u64 * bin_capacity * 8;
            tops.clear();
            tops.resize(num_bins, 0);

            let mut i = warp_id;
            while i < db.num_seqs() {
                let slen = db.seq_len(i);
                let words = slen.saturating_sub(WORD_LEN - 1);
                let subject = db.seq(i);
                // Residues are contiguous bytes, so lane addresses are
                // `seq_base + column` — one base computation per sequence
                // instead of an offsets lookup per lane.
                let seq_base = db.residue_addr(i, 0);

                let mut j0 = 0usize;
                while j0 < words {
                    let active = (words - j0).min(WARP_SIZE as usize);

                    // Coalesced read of each lane's word start (lane ℓ reads
                    // column j0+ℓ; a word needs W consecutive residues). The
                    // lane addresses are a stride-1 sequence, so the
                    // coalescing is charged analytically.
                    block.global_read_seq(seq_base + j0 as u64, active as u32, 1, WORD_LEN as u32);
                    // DFA state transition via the shared-memory table.
                    block.shared_access(active as u32);

                    // Look up each lane's query-position list.
                    addrs.clear();
                    let mut max_hits = 0usize;
                    for (l, lane) in lane_hits.iter_mut().take(active).enumerate() {
                        lane.clear();
                        let col = j0 + l;
                        let code = word_code(&subject[col..col + WORD_LEN]);
                        let positions = query.dfa.neighborhood().positions(code);
                        let (base, len) = query.position_addrs(code);
                        for (k, &qpos) in positions.iter().enumerate() {
                            debug_assert!(k < len.max(1));
                            lane.push((qpos, col as u32));
                            addrs.push(base + (k * 4) as u64);
                        }
                        max_hits = max_hits.max(positions.len());
                    }
                    // Position-list traffic: read-only cache or global,
                    // depending on the Fig. 17 toggle (readonly_read
                    // degrades to a global read when the cache is off).
                    for chunk in addrs.chunks(WARP_SIZE as usize) {
                        block.readonly_read(chunk, 4);
                    }

                    // Serialized hit loop: lanes with more hits keep the
                    // warp busy while others idle (Algorithm 2's `for all
                    // hits` divergence).
                    for k in 0..max_hits {
                        round_bins.clear();
                        writes.clear();
                        let mut round_max = 0u64;
                        for lane in lane_hits.iter().take(active) {
                            if let Some(&(qpos, col)) = lane.get(k) {
                                let diagonal = (col as i64 - qpos as i64 + qlen as i64) as u32;
                                let bin_id = diagonal as usize % num_bins;
                                let top = tops[bin_id];
                                tops[bin_id] += 1;
                                let c = round_cnt[bin_id] + 1;
                                round_cnt[bin_id] = c;
                                round_max = round_max.max(c);
                                round_bins.push(bin_id as u64);
                                writes.push(
                                    warp_bins_base
                                        + (bin_id as u64 * bin_capacity + top % bin_capacity) * 8,
                                );
                                det_slots.push((warp_in_block * num_bins + bin_id) as u32);
                                det_keys.push(pack(i as u32, diagonal, col));
                            }
                        }
                        // Diagonal/bin arithmetic.
                        block.instr(writes.len() as u32);
                        // atomicAdd on the shared `top` array; conflicts
                        // were counted in the lane loop.
                        block.atomic_shared_counted(writes.len() as u32, round_max);
                        // Scattered global write of the packed hits.
                        block.global_write(&writes, 8);
                        for &b in round_bins.iter() {
                            round_cnt[b as usize] = 0;
                        }
                    }

                    j0 += WARP_SIZE as usize;
                }
                i += num_warps;
            }
            for (b, &t) in tops.iter().enumerate() {
                page_offsets[warp_in_block * num_bins + b + 1] = t as u32;
            }
        }
        ws.addrs.put(addrs);
        ws.addrs.put(round_bins);
        ws.addrs.put(writes);
        ws.addrs.put(tops);
        ws.addrs.put(round_cnt);
        for lane in lane_hits {
            ws.lane_hits.put(lane);
        }

        // Group detection-order hits by slot: stable counting sort into an
        // arena page (offsets + keys), the block's by-value result.
        for i in 1..=block_slots {
            page_offsets[i] += page_offsets[i - 1];
        }
        let mut page_keys: Vec<u64> = ws.keys.take();
        page_keys.resize(det_keys.len(), 0);
        let mut cursor: Vec<u32> = ws.offsets.take();
        cursor.extend_from_slice(&page_offsets[..block_slots]);
        for (&s, &k) in det_slots.iter().zip(det_keys.iter()) {
            let c = &mut cursor[s as usize];
            page_keys[*c as usize] = k;
            *c += 1;
        }
        ws.offsets.put(cursor);
        ws.offsets.put(det_slots);
        ws.keys.put(det_keys);
        (page_offsets, page_keys)
    });

    // Stitch per-block pages into the warp-major arena: pages arrive in
    // block order, and each page is already warp-in-block-major, so plain
    // concatenation (with rebased offsets) yields the global slot order.
    let mut offsets: Vec<u32> = ws.offsets.take();
    let mut keys: Vec<u64> = ws.keys.take();
    offsets.push(0);
    for (page_offsets, page_keys) in pages {
        let base = keys.len() as u32;
        offsets.extend(page_offsets[1..].iter().map(|&o| base + o));
        keys.extend_from_slice(&page_keys);
        ws.offsets.put(page_offsets);
        ws.keys.put(page_keys);
    }
    let total_hits = keys.len() as u64;

    (
        BinnedHits {
            offsets,
            keys,
            num_bins,
            num_warps,
            total_hits,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitpack;
    use bio_seq::generate::make_query;
    use bio_seq::Sequence;
    use blast_core::{Dfa, Matrix, Pssm, SearchParams};

    fn setup(qlen: usize, subjects: Vec<Sequence>) -> (DeviceQuery, DeviceDbBlock) {
        let q = make_query(qlen);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(&subjects, 0);
        (dq, db)
    }

    fn reference_hits(query: &DeviceQuery, db: &DeviceDbBlock) -> Vec<u64> {
        // Column-major reference scan, packed the same way.
        let qlen = query.query_len();
        let mut out = Vec::new();
        for i in 0..db.num_seqs() {
            query.dfa.scan(db.seq(i), |col, qpos| {
                let d = (col as i64 - qpos as i64 + qlen as i64) as u32;
                out.push(pack(i as u32, d, col as u32));
            });
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn binning_finds_exactly_the_reference_hits() {
        let subjects: Vec<Sequence> = (0..40)
            .map(|k| {
                let s = make_query(60 + k * 7);
                Sequence::from_residues(format!("s{k}"), s.residues().to_vec())
            })
            .collect();
        let (dq, db) = setup(64, subjects);
        let cfg = CuBlastpConfig {
            grid_blocks: 4,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let ws = KernelWorkspace::new();
        let (bins, stats) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db, &ws);
        let mut got: Vec<u64> = bins.iter_hits().collect();
        got.sort_unstable();
        let want = reference_hits(&dq, &db);
        assert_eq!(got, want);
        assert_eq!(bins.total_hits as usize, want.len());
        assert_eq!(bins.num_slots(), bins.num_warps * bins.num_bins);
        assert!(stats.warp_cycles > 0);
        assert!(stats.atomic_ops >= bins.total_hits);
    }

    #[test]
    fn hits_land_in_their_diagonal_bin() {
        let subjects = vec![Sequence::from_residues(
            "s",
            make_query(200).residues().to_vec(),
        )];
        let (dq, db) = setup(50, subjects);
        let cfg = CuBlastpConfig {
            grid_blocks: 1,
            warps_per_block: 1,
            num_bins: 8,
            ..Default::default()
        };
        let ws = KernelWorkspace::new();
        let (bins, _) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db, &ws);
        for slot in 0..bins.num_slots() {
            let bin_id = slot % bins.num_bins;
            for &e in bins.bin(slot) {
                assert_eq!(hitpack::diagonal(e) as usize % bins.num_bins, bin_id);
            }
        }
    }

    #[test]
    fn more_bins_use_more_shared_memory_and_lower_occupancy() {
        let subjects = vec![Sequence::from_residues(
            "s",
            make_query(150).residues().to_vec(),
        )];
        let (dq, db) = setup(64, subjects);
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let occ = |bins: usize| {
            let cfg = CuBlastpConfig {
                num_bins: bins,
                grid_blocks: 2,
                warps_per_block: 8,
                ..Default::default()
            };
            binning_kernel(&d, &cfg, &dq, &db, &ws).1.occupancy
        };
        assert!(occ(512) < occ(32), "512-bin occupancy must be lower");
    }

    #[test]
    fn empty_block_is_clean() {
        let (dq, db) = setup(64, vec![]);
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let (bins, _) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db, &ws);
        assert_eq!(bins.total_hits, 0);
        assert_eq!(bins.num_slots(), bins.num_warps * bins.num_bins);
        assert!(bins.offsets.iter().all(|&o| o == 0));
    }

    #[test]
    fn repeat_runs_reuse_workspace_buffers() {
        let subjects: Vec<Sequence> = (0..10)
            .map(|k| {
                Sequence::from_residues(format!("s{k}"), make_query(120 + k).residues().to_vec())
            })
            .collect();
        let (dq, db) = setup(64, subjects);
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        for _ in 0..2 {
            let (bins, _) = binning_kernel(&d, &cfg, &dq, &db, &ws);
            bins.recycle(&ws);
        }
        let warm = ws.allocations();
        for _ in 0..3 {
            let (bins, _) = binning_kernel(&d, &cfg, &dq, &db, &ws);
            bins.recycle(&ws);
        }
        assert_eq!(ws.allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn readonly_cache_reduces_cycles() {
        let subjects: Vec<Sequence> = (0..20)
            .map(|k| {
                Sequence::from_residues(format!("s{k}"), make_query(300 + k).residues().to_vec())
            })
            .collect();
        let (dq, db) = setup(127, subjects);
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let base = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 4,
            ..Default::default()
        };
        let with = binning_kernel(
            &d,
            &CuBlastpConfig {
                use_readonly_cache: true,
                ..base
            },
            &dq,
            &db,
            &ws,
        )
        .1;
        let without = binning_kernel(
            &d,
            &CuBlastpConfig {
                use_readonly_cache: false,
                ..base
            },
            &dq,
            &db,
            &ws,
        )
        .1;
        assert!(
            with.warp_cycles < without.warp_cycles,
            "cache on: {} cycles, off: {}",
            with.warp_cycles,
            without.warp_cycles
        );
        assert!(with.rocache_hits > 0);
        assert_eq!(without.rocache_hits, 0);
    }
}
