//! Warp-based hit detection with binning (paper §3.2, Algorithm 2,
//! Fig. 5).
//!
//! Each warp takes database sequences round-robin (`i += numWarps`); the
//! 32 lanes take consecutive words of the sequence (`j += warpSize`), so
//! subject reads coalesce. Every hit's diagonal maps to a bin
//! (`binId = diagonal mod num_bins`); a per-warp `top` array in shared
//! memory is bumped with an atomic to claim the slot, and the packed
//! 64-bit element (Fig. 7) is written into the bin in global memory.
//!
//! Hierarchical buffering (§3.5, Fig. 10): the DFA state table lives in
//! shared memory; the query-position lists are fetched through the
//! read-only cache when [`crate::CuBlastpConfig::use_readonly_cache`] is
//! set, and as plain global loads otherwise — the Fig. 17 experiment.

use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::hitpack::pack;
use blast_core::{word_code, WORD_LEN};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::memory::virtual_alloc;
use gpu_sim::{launch, DeviceConfig, KernelStats, LaunchConfig};
use parking_lot::Mutex;

/// Shared-memory footprint of the compacted DFA state table (the paper
/// keeps states in shared memory; FSA-BLAST's compressed automaton for a
/// protein query fits in a few kilobytes).
pub const DFA_STATES_SHARED_BYTES: u32 = 8 * 1024;

/// Output of the binning kernel.
pub struct BinnedHits {
    /// `bins[warp * num_bins + bin]` — packed hits in detection order
    /// (interleaved across diagonals, exactly the Fig. 5 situation the
    /// sorting kernel exists to fix).
    pub bins: Vec<Vec<u64>>,
    /// Bins per warp.
    pub num_bins: usize,
    /// Total warps that participated.
    pub num_warps: usize,
    /// Total hits detected.
    pub total_hits: u64,
}

impl BinnedHits {
    /// Iterate all hits (unordered across bins).
    pub fn iter_hits(&self) -> impl Iterator<Item = u64> + '_ {
        self.bins.iter().flatten().copied()
    }
}

/// Run the fine-grained hit-detection + binning kernel over one database
/// block. Returns the bins and the kernel's simulated stats.
pub fn binning_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
) -> (BinnedHits, KernelStats) {
    let grid_blocks = cfg.grid_blocks.max(1);
    let warps_per_block = cfg.warps_per_block.max(1);
    let num_warps = (grid_blocks * warps_per_block) as usize;
    let num_bins = cfg.num_bins;
    let qlen = query.query_len();

    // The packed bin element (Fig. 7) stores diagonal and subject position
    // in 16 bits each; debug_asserts vanish in release builds, so enforce
    // the representable range here, once per block.
    let max_slen = (0..db.num_seqs()).map(|i| db.seq_len(i)).max().unwrap_or(0);
    assert!(
        qlen + max_slen <= u16::MAX as usize,
        "query ({qlen}) + longest subject ({max_slen}) exceeds the 16-bit \
         diagonal range of the packed hit format (max 65535 combined)"
    );

    // Shared memory: DFA states + the per-warp bin `top` counters
    // (4 bytes per bin per warp) — the §4.1 occupancy trade-off.
    let shared = DFA_STATES_SHARED_BYTES + (warps_per_block as usize * num_bins * 4) as u32;
    let launch_cfg = LaunchConfig {
        blocks: grid_blocks,
        warps_per_block,
        shared_bytes_per_block: shared,
        use_readonly_cache: cfg.use_readonly_cache,
    };

    // Paper capacity: one bin holds up to `query words` hits; the bins of
    // all warps live in one preallocated global buffer.
    let bin_capacity = qlen.max(1) as u64;
    let bins_base = virtual_alloc(num_warps as u64 * num_bins as u64 * bin_capacity * 8);

    let results: Mutex<Vec<(usize, Vec<Vec<u64>>)>> = Mutex::new(Vec::new());

    let stats = launch(device, launch_cfg, "hit_detection", |block| {
        let mut block_bins: Vec<Vec<u64>> = vec![Vec::new(); warps_per_block as usize * num_bins];
        // Per-lane scratch reused across chunks.
        let mut lane_hits: Vec<Vec<(u32, u32)>> = vec![Vec::new(); WARP_SIZE as usize];
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut targets: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut writes: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut produced: Vec<(usize, u64)> = Vec::with_capacity(WARP_SIZE as usize);

        for warp_in_block in 0..warps_per_block as usize {
            let warp_id = block.block_id as usize * warps_per_block as usize + warp_in_block;
            let warp_bins_base = bins_base + (warp_id * num_bins) as u64 * bin_capacity * 8;
            let mut tops = vec![0u64; num_bins];

            let mut i = warp_id;
            while i < db.num_seqs() {
                let slen = db.seq_len(i);
                let words = slen.saturating_sub(WORD_LEN - 1);
                let subject = db.seq(i);

                let mut j0 = 0usize;
                while j0 < words {
                    let active = (words - j0).min(WARP_SIZE as usize);

                    // Coalesced read of each lane's word start (lane ℓ reads
                    // column j0+ℓ; a word needs W consecutive residues).
                    addrs.clear();
                    addrs.extend((0..active).map(|l| db.residue_addr(i, j0 + l)));
                    block.global_read(&addrs, WORD_LEN as u32);
                    // DFA state transition via the shared-memory table.
                    block.shared_access(active as u32);

                    // Look up each lane's query-position list.
                    addrs.clear();
                    let mut max_hits = 0usize;
                    for (l, lane) in lane_hits.iter_mut().take(active).enumerate() {
                        lane.clear();
                        let col = j0 + l;
                        let code = word_code(&subject[col..col + WORD_LEN]);
                        let positions = query.dfa.neighborhood().positions(code);
                        let (base, len) = query.position_addrs(code);
                        for (k, &qpos) in positions.iter().enumerate() {
                            debug_assert!(k < len.max(1));
                            lane.push((qpos, col as u32));
                            addrs.push(base + (k * 4) as u64);
                        }
                        max_hits = max_hits.max(positions.len());
                    }
                    // Position-list traffic: read-only cache or global,
                    // depending on the Fig. 17 toggle (readonly_read
                    // degrades to a global read when the cache is off).
                    for chunk in addrs.chunks(WARP_SIZE as usize) {
                        block.readonly_read(chunk, 4);
                    }

                    // Serialized hit loop: lanes with more hits keep the
                    // warp busy while others idle (Algorithm 2's `for all
                    // hits` divergence).
                    for k in 0..max_hits {
                        targets.clear();
                        writes.clear();
                        produced.clear();
                        for lane in lane_hits.iter().take(active) {
                            if let Some(&(qpos, col)) = lane.get(k) {
                                let diagonal = (col as i64 - qpos as i64 + qlen as i64) as u32;
                                let bin_id = diagonal as usize % num_bins;
                                let slot = tops[bin_id];
                                tops[bin_id] += 1;
                                targets.push((warp_in_block * num_bins + bin_id) as u64);
                                writes.push(
                                    warp_bins_base
                                        + (bin_id as u64 * bin_capacity + slot % bin_capacity) * 8,
                                );
                                produced.push((bin_id, pack(i as u32, diagonal, col)));
                            }
                        }
                        // Diagonal/bin arithmetic.
                        block.instr(targets.len() as u32);
                        // atomicAdd on the shared `top` array.
                        block.atomic_shared(&targets);
                        // Scattered global write of the packed hits.
                        block.global_write(&writes, 8);
                        for &(bin_id, element) in &produced {
                            block_bins[warp_in_block * num_bins + bin_id].push(element);
                        }
                    }

                    j0 += WARP_SIZE as usize;
                }
                i += num_warps;
            }
        }
        results.lock().push((block.block_id as usize, block_bins));
    });

    // Stitch per-block bins into warp-major order.
    let mut per_block = results.into_inner();
    per_block.sort_by_key(|(id, _)| *id);
    let mut bins: Vec<Vec<u64>> = Vec::with_capacity(num_warps * num_bins);
    for (_, mut block_bins) in per_block {
        bins.append(&mut block_bins);
    }
    let total_hits = bins.iter().map(|b| b.len() as u64).sum();

    (
        BinnedHits {
            bins,
            num_bins,
            num_warps,
            total_hits,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitpack;
    use bio_seq::generate::make_query;
    use bio_seq::Sequence;
    use blast_core::{Dfa, Matrix, Pssm, SearchParams};

    fn setup(qlen: usize, subjects: Vec<Sequence>) -> (DeviceQuery, DeviceDbBlock) {
        let q = make_query(qlen);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(&subjects, 0);
        (dq, db)
    }

    fn reference_hits(query: &DeviceQuery, db: &DeviceDbBlock) -> Vec<u64> {
        // Column-major reference scan, packed the same way.
        let qlen = query.query_len();
        let mut out = Vec::new();
        for i in 0..db.num_seqs() {
            query.dfa.scan(db.seq(i), |col, qpos| {
                let d = (col as i64 - qpos as i64 + qlen as i64) as u32;
                out.push(pack(i as u32, d, col as u32));
            });
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn binning_finds_exactly_the_reference_hits() {
        let subjects: Vec<Sequence> = (0..40)
            .map(|k| {
                let s = make_query(60 + k * 7);
                Sequence::from_residues(format!("s{k}"), s.residues().to_vec())
            })
            .collect();
        let (dq, db) = setup(64, subjects);
        let cfg = CuBlastpConfig {
            grid_blocks: 4,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let (bins, stats) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db);
        let mut got: Vec<u64> = bins.iter_hits().collect();
        got.sort_unstable();
        let want = reference_hits(&dq, &db);
        assert_eq!(got, want);
        assert_eq!(bins.total_hits as usize, want.len());
        assert!(stats.warp_cycles > 0);
        assert!(stats.atomic_ops >= bins.total_hits);
    }

    #[test]
    fn hits_land_in_their_diagonal_bin() {
        let subjects = vec![Sequence::from_residues(
            "s",
            make_query(200).residues().to_vec(),
        )];
        let (dq, db) = setup(50, subjects);
        let cfg = CuBlastpConfig {
            grid_blocks: 1,
            warps_per_block: 1,
            num_bins: 8,
            ..Default::default()
        };
        let (bins, _) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db);
        for (slot, bin) in bins.bins.iter().enumerate() {
            let bin_id = slot % bins.num_bins;
            for &e in bin {
                assert_eq!(hitpack::diagonal(e) as usize % bins.num_bins, bin_id);
            }
        }
    }

    #[test]
    fn more_bins_use_more_shared_memory_and_lower_occupancy() {
        let subjects = vec![Sequence::from_residues(
            "s",
            make_query(150).residues().to_vec(),
        )];
        let (dq, db) = setup(64, subjects);
        let d = DeviceConfig::k20c();
        let occ = |bins: usize| {
            let cfg = CuBlastpConfig {
                num_bins: bins,
                grid_blocks: 2,
                warps_per_block: 8,
                ..Default::default()
            };
            binning_kernel(&d, &cfg, &dq, &db).1.occupancy
        };
        assert!(occ(512) < occ(32), "512-bin occupancy must be lower");
    }

    #[test]
    fn empty_block_is_clean() {
        let (dq, db) = setup(64, vec![]);
        let cfg = CuBlastpConfig::default();
        let (bins, _) = binning_kernel(&DeviceConfig::k20c(), &cfg, &dq, &db);
        assert_eq!(bins.total_hits, 0);
    }

    #[test]
    fn readonly_cache_reduces_cycles() {
        let subjects: Vec<Sequence> = (0..20)
            .map(|k| {
                Sequence::from_residues(format!("s{k}"), make_query(300 + k).residues().to_vec())
            })
            .collect();
        let (dq, db) = setup(127, subjects);
        let d = DeviceConfig::k20c();
        let base = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 4,
            ..Default::default()
        };
        let with = binning_kernel(
            &d,
            &CuBlastpConfig {
                use_readonly_cache: true,
                ..base
            },
            &dq,
            &db,
        )
        .1;
        let without = binning_kernel(
            &d,
            &CuBlastpConfig {
                use_readonly_cache: false,
                ..base
            },
            &dq,
            &db,
        )
        .1;
        assert!(
            with.warp_cycles < without.warp_cycles,
            "cache on: {} cycles, off: {}",
            with.warp_cycles,
            without.warp_cycles
        );
        assert!(with.rocache_hits > 0);
        assert_eq!(without.rocache_hits, 0);
    }
}
