//! Grouped multi-query seeding: one database pass per query group.
//!
//! The per-query path (`binning_kernel`) scans every database block once
//! per query through that query's DFA. This kernel inverts the loop the
//! way Chorus does: the neighbourhood words of a whole query group live
//! in one hashed [`QueryIndex`] resident in device memory, and a single
//! pass over each [`DeviceDbBlock`] serves every group member at once —
//! subject reads and word hashing are paid once per group instead of
//! once per query.
//!
//! The warp structure mirrors `binning_kernel` exactly (round-robin
//! sequences, 32-column chunks, coalesced subject reads, serialized
//! per-hit rounds with shared-memory atomics), with two differences in
//! the cost model:
//!
//! * hit detection is a Murmur hash plus a linear-probe read of the slot
//!   table through the read-only cache, then a postings-span read —
//!   replacing the shared-memory DFA transition and per-query position
//!   lists. The slot table of a small group fits the 48 KB read-only
//!   cache; a large group's table thrashes it, which is exactly the
//!   occupancy trade-off the round scheduler's budget bounds;
//! * the per-warp `top` counters hash `(diagonal, member)` into the bin
//!   space so concurrent members shear across bins instead of piling
//!   onto the same counters.
//!
//! The **demux is the scatter itself**: every detected hit carries its
//! group-local member, and the host groups hits per member into the same
//! flat CSR arena pages `binning_kernel` produces — same slot formula
//! (`warp * num_bins + diagonal % num_bins`), same packed key. Each
//! member's arena holds exactly the multiset of hits the per-query DFA
//! scan finds (the within-bin order differs, which downstream sorting is
//! insensitive to — see `reorder`), so binning, sorting, filtering,
//! extension, and reporting run unchanged and per-query output stays
//! bit-identical.

use crate::binning::BinnedHits;
use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::hitpack::pack;
use blast_core::qindex::{QueryIndex, POSTING_BYTES, SLOT_BYTES};
use blast_core::WORD_LEN;
use blast_core::{word_code, WordNeighborhood};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::memory::virtual_alloc;
use gpu_sim::{launch_map, DeviceConfig, KernelStats, KernelWorkspace, LaunchConfig};

/// Modelled instruction count of the Murmur-finalizer word hash (three
/// shifts-and-xors, two multiplies, one mask).
const HASH_INSTRS: u64 = 6;

/// Stride decorrelating member bins: hits of different members on the
/// same diagonal land on different per-warp `top` counters.
const MEMBER_BIN_STRIDE: usize = 131;

/// A query group's index, resident in device memory: the open-addressing
/// slot table and the flat postings array, plus the per-member metadata
/// the demux and the driver need.
pub struct DeviceGroupIndex {
    index: QueryIndex,
    slots_base: u64,
    postings_base: u64,
    qlens: Vec<usize>,
}

impl DeviceGroupIndex {
    /// Build the group index from the member queries (in batch order) and
    /// place it in device memory.
    pub fn upload(members: &[&DeviceQuery]) -> Self {
        let hoods: Vec<&WordNeighborhood> = members.iter().map(|m| m.dfa.neighborhood()).collect();
        let index = QueryIndex::build(&hoods);
        let slots_base = virtual_alloc(index.capacity() as u64 * SLOT_BYTES);
        let postings_base = virtual_alloc((index.entries() as u64 * POSTING_BYTES).max(8));
        DeviceGroupIndex {
            index,
            slots_base,
            postings_base,
            qlens: members.iter().map(|m| m.query_len()).collect(),
        }
    }

    /// Group size.
    pub fn members(&self) -> usize {
        self.qlens.len()
    }

    /// The host-side index (probe access for tests and verification).
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// Modelled H2D payload of the index.
    pub fn upload_bytes(&self) -> u64 {
        self.index.device_bytes()
    }

    /// Query length of group member `m`.
    pub fn member_qlen(&self, m: usize) -> usize {
        self.qlens[m]
    }
}

/// One grouped seeding pass over a database block: probe the group index
/// with every subject word and scatter each hit into its member's arena.
/// Returns one [`BinnedHits`] per group member — shaped exactly like
/// `binning_kernel` output for that member — plus the pass's simulated
/// stats.
pub fn grouped_seeding_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    group: &DeviceGroupIndex,
    db: &DeviceDbBlock,
    ws: &KernelWorkspace,
) -> (Vec<BinnedHits>, KernelStats) {
    let grid_blocks = cfg.grid_blocks.max(1);
    let warps_per_block = cfg.warps_per_block.max(1);
    let num_warps = (grid_blocks * warps_per_block) as usize;
    let num_bins = cfg.num_bins;
    let members = group.members();

    let max_slen = db.max_seq_len;
    for (m, &qlen) in group.qlens.iter().enumerate() {
        assert!(
            qlen + max_slen <= u16::MAX as usize,
            "group member {m}: query ({qlen}) + longest subject ({max_slen}) exceeds \
             the 16-bit diagonal range of the packed hit format (max 65535 combined)"
        );
    }

    // Shared memory: only the per-warp bin `top` counters — the DFA state
    // table of the per-query path is gone, which is where the grouped
    // kernel wins back the occupancy its bigger working set costs.
    let shared = (warps_per_block as usize * num_bins * 4) as u32;
    let launch_cfg = LaunchConfig {
        blocks: grid_blocks,
        warps_per_block,
        shared_bytes_per_block: shared,
        use_readonly_cache: cfg.use_readonly_cache,
    };

    // One write arena sized for the longest member, shared by the group.
    let bin_capacity = group.qlens.iter().copied().max().unwrap_or(0).max(1) as u64;
    let bins_base = virtual_alloc(num_warps as u64 * num_bins as u64 * bin_capacity * 8);

    let block_slots = warps_per_block as usize * num_bins;
    let slot_mask = (group.index.capacity() - 1) as u32;

    let (pages, stats) = launch_map(device, launch_cfg, "grouped_seeding", |block| {
        // Per-member detection streams; demuxed into per-member arena
        // pages at block end. All scratch is pooled.
        let mut det_slots: Vec<Vec<u32>> = (0..members).map(|_| ws.offsets.take()).collect();
        let mut det_keys: Vec<Vec<u64>> = (0..members).map(|_| ws.keys.take()).collect();
        // Per-lane merged hit lists: ((member << 16) | qpos, column).
        let mut lane_hits: Vec<Vec<(u32, u32)>> =
            (0..WARP_SIZE).map(|_| ws.lane_hits.take()).collect();
        let mut probe_addrs: Vec<u64> = ws.addrs.take();
        let mut posting_addrs: Vec<u64> = ws.addrs.take();
        let mut round_bins: Vec<u64> = ws.addrs.take();
        let mut writes: Vec<u64> = ws.addrs.take();
        let mut tops: Vec<u64> = ws.addrs.take();
        let mut round_cnt: Vec<u64> = ws.addrs.take();
        round_cnt.resize(num_bins, 0);

        for warp_in_block in 0..warps_per_block as usize {
            let warp_id = block.block_id as usize * warps_per_block as usize + warp_in_block;
            let warp_bins_base = bins_base + (warp_id * num_bins) as u64 * bin_capacity * 8;
            tops.clear();
            tops.resize(num_bins, 0);

            let mut i = warp_id;
            while i < db.num_seqs() {
                let slen = db.seq_len(i);
                let words = slen.saturating_sub(WORD_LEN - 1);
                let subject = db.seq(i);
                let seq_base = db.residue_addr(i, 0);

                let mut j0 = 0usize;
                while j0 < words {
                    let active = (words - j0).min(WARP_SIZE as usize);

                    // Coalesced subject read — identical to the per-query
                    // kernel, but paid once for the whole group.
                    block.global_read_seq(seq_base + j0 as u64, active as u32, 1, WORD_LEN as u32);
                    // Murmur word hash instead of a DFA transition.
                    block.instr_n(active as u32, HASH_INSTRS);

                    // Linear-probe the slot table: every lane walks its
                    // chain of consecutive slots, scattered across the
                    // table by the hash.
                    probe_addrs.clear();
                    posting_addrs.clear();
                    let mut max_hits = 0usize;
                    for (l, lane) in lane_hits.iter_mut().take(active).enumerate() {
                        lane.clear();
                        let col = j0 + l;
                        let code = word_code(&subject[col..col + WORD_LEN]);
                        let probe = group.index.probe(code);
                        for step in 0..probe.steps {
                            let slot = (probe.home + step) & slot_mask;
                            probe_addrs.push(group.slots_base + slot as u64 * SLOT_BYTES);
                        }
                        for (k, p) in probe.postings.iter().enumerate() {
                            lane.push((((p.query as u32) << 16) | p.qpos as u32, col as u32));
                            posting_addrs.push(
                                group.postings_base
                                    + (probe.offset as usize + k) as u64 * POSTING_BYTES,
                            );
                        }
                        max_hits = max_hits.max(probe.postings.len());
                    }
                    for chunk in probe_addrs.chunks(WARP_SIZE as usize) {
                        block.readonly_read(chunk, SLOT_BYTES as u32);
                    }
                    // Postings-span traffic for the lanes that hit.
                    for chunk in posting_addrs.chunks(WARP_SIZE as usize) {
                        block.readonly_read(chunk, POSTING_BYTES as u32);
                    }

                    // Serialized hit rounds, exactly as in the per-query
                    // kernel; the merged postings list makes a lane's
                    // round count the *group's* hit count on its column.
                    for k in 0..max_hits {
                        round_bins.clear();
                        writes.clear();
                        let mut round_max = 0u64;
                        for lane in lane_hits.iter().take(active) {
                            if let Some(&(mq, col)) = lane.get(k) {
                                let member = (mq >> 16) as usize;
                                let qpos = mq & 0xFFFF;
                                let qlen = group.qlens[member];
                                let diagonal = (col as i64 - qpos as i64 + qlen as i64) as u32;
                                // Device bin: member-sheared so the group
                                // doesn't serialize on shared counters.
                                let bin_id =
                                    (diagonal as usize + member * MEMBER_BIN_STRIDE) % num_bins;
                                let top = tops[bin_id];
                                tops[bin_id] += 1;
                                let c = round_cnt[bin_id] + 1;
                                round_cnt[bin_id] = c;
                                round_max = round_max.max(c);
                                round_bins.push(bin_id as u64);
                                writes.push(
                                    warp_bins_base
                                        + (bin_id as u64 * bin_capacity + top % bin_capacity) * 8,
                                );
                                // Demux scatter: the member's arena slot
                                // uses the same formula as binning_kernel,
                                // so the per-member pages are shaped
                                // identically to the per-query path.
                                det_slots[member].push(
                                    (warp_in_block * num_bins + diagonal as usize % num_bins)
                                        as u32,
                                );
                                det_keys[member].push(pack(i as u32, diagonal, col));
                            }
                        }
                        block.instr(writes.len() as u32);
                        block.atomic_shared_counted(writes.len() as u32, round_max);
                        block.global_write(&writes, 8);
                        for &b in round_bins.iter() {
                            round_cnt[b as usize] = 0;
                        }
                    }

                    j0 += WARP_SIZE as usize;
                }
                i += num_warps;
            }
        }
        ws.addrs.put(probe_addrs);
        ws.addrs.put(posting_addrs);
        ws.addrs.put(round_bins);
        ws.addrs.put(writes);
        ws.addrs.put(tops);
        ws.addrs.put(round_cnt);
        for lane in lane_hits {
            ws.lane_hits.put(lane);
        }

        // Per-member stable counting sort into arena pages — the same
        // epilogue as binning_kernel, once per member.
        let mut member_pages: Vec<(Vec<u32>, Vec<u64>)> = Vec::with_capacity(members);
        for (slots, keys) in det_slots.into_iter().zip(det_keys) {
            let mut page_offsets: Vec<u32> = ws.offsets.take();
            page_offsets.resize(block_slots + 1, 0);
            for &s in &slots {
                page_offsets[s as usize + 1] += 1;
            }
            for i in 1..=block_slots {
                page_offsets[i] += page_offsets[i - 1];
            }
            let mut page_keys: Vec<u64> = ws.keys.take();
            page_keys.resize(keys.len(), 0);
            let mut cursor: Vec<u32> = ws.offsets.take();
            cursor.extend_from_slice(&page_offsets[..block_slots]);
            for (&s, &k) in slots.iter().zip(keys.iter()) {
                let c = &mut cursor[s as usize];
                page_keys[*c as usize] = k;
                *c += 1;
            }
            ws.offsets.put(cursor);
            member_pages.push((page_offsets, page_keys));
            ws.offsets.put(slots);
            ws.keys.put(keys);
        }
        member_pages
    });

    // Stitch per-block pages into one arena per member, in block order —
    // the same stitching as the per-query path, fanned out per member.
    let mut out = Vec::with_capacity(members);
    let mut per_member: Vec<Vec<(Vec<u32>, Vec<u64>)>> = (0..members)
        .map(|_| Vec::with_capacity(pages.len()))
        .collect();
    for block_pages in pages {
        for (m, page) in block_pages.into_iter().enumerate() {
            per_member[m].push(page);
        }
    }
    for member_pages in per_member {
        let mut offsets: Vec<u32> = ws.offsets.take();
        let mut keys: Vec<u64> = ws.keys.take();
        offsets.push(0);
        for (page_offsets, page_keys) in member_pages {
            let base = keys.len() as u32;
            offsets.extend(page_offsets[1..].iter().map(|&o| base + o));
            keys.extend_from_slice(&page_keys);
            ws.offsets.put(page_offsets);
            ws.keys.put(page_keys);
        }
        let total_hits = keys.len() as u64;
        out.push(BinnedHits {
            offsets,
            keys,
            num_bins,
            num_warps,
            total_hits,
        });
    }

    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::binning_kernel;
    use bio_seq::generate::make_query;
    use bio_seq::Sequence;
    use blast_core::{Dfa, Matrix, Pssm, SearchParams};
    use std::collections::HashMap;

    fn device_query(qlen: usize) -> DeviceQuery {
        let q = make_query(qlen);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m))
    }

    fn subjects(n: usize, base_len: usize) -> Vec<Sequence> {
        (0..n)
            .map(|k| {
                let s = make_query(base_len + k * 7);
                Sequence::from_residues(format!("s{k}"), s.residues().to_vec())
            })
            .collect()
    }

    /// Per-slot hit multiset: (slot, sorted keys in slot).
    fn slot_multisets(bins: &BinnedHits) -> HashMap<usize, Vec<u64>> {
        (0..bins.num_slots())
            .filter(|&s| !bins.bin(s).is_empty())
            .map(|s| {
                let mut v = bins.bin(s).to_vec();
                v.sort_unstable();
                (s, v)
            })
            .collect()
    }

    #[test]
    fn grouped_arena_matches_per_query_binning_per_slot() {
        let queries: Vec<DeviceQuery> = [48, 64, 80, 57].iter().map(|&l| device_query(l)).collect();
        let refs: Vec<&DeviceQuery> = queries.iter().collect();
        let db = DeviceDbBlock::upload(&subjects(30, 60), 0);
        let cfg = CuBlastpConfig {
            grid_blocks: 4,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();

        let group = DeviceGroupIndex::upload(&refs);
        let (grouped, stats) = grouped_seeding_kernel(&d, &cfg, &group, &db, &ws);
        assert_eq!(grouped.len(), queries.len());
        assert!(stats.warp_cycles > 0);

        for (m, q) in queries.iter().enumerate() {
            let (solo, _) = binning_kernel(&d, &cfg, q, &db, &ws);
            assert_eq!(
                grouped[m].total_hits, solo.total_hits,
                "member {m} hit count"
            );
            assert_eq!(grouped[m].num_slots(), solo.num_slots());
            assert_eq!(
                slot_multisets(&grouped[m]),
                slot_multisets(&solo),
                "member {m}: per-slot hit multisets must match the per-query path"
            );
        }
    }

    #[test]
    fn singleton_group_matches_per_query_binning() {
        let q = device_query(72);
        let db = DeviceDbBlock::upload(&subjects(12, 90), 0);
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            num_bins: 32,
            ..Default::default()
        };
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let group = DeviceGroupIndex::upload(&[&q]);
        let (grouped, _) = grouped_seeding_kernel(&d, &cfg, &group, &db, &ws);
        let (solo, _) = binning_kernel(&d, &cfg, &q, &db, &ws);
        assert_eq!(slot_multisets(&grouped[0]), slot_multisets(&solo));
    }

    #[test]
    fn one_group_pass_amortizes_across_members() {
        // The point of the grouped kernel: one pass over the block for 8
        // members must be much cheaper than 8 singleton-group passes —
        // the subject reads, hashing, and index probes are shared, and
        // only the per-hit work scales with the group. (Relative to the
        // per-query DFA path the grouped pass trades cheap shared-memory
        // transitions for read-only-cache index probes; the crossover is
        // characterized in `bench --bin grouped_seeding`.)
        let queries: Vec<DeviceQuery> = (0..8).map(|k| device_query(48 + 4 * k)).collect();
        let refs: Vec<&DeviceQuery> = queries.iter().collect();
        let db = DeviceDbBlock::upload(&subjects(24, 100), 0);
        let cfg = CuBlastpConfig::default();
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();

        let group = DeviceGroupIndex::upload(&refs);
        let (_, grouped_stats) = grouped_seeding_kernel(&d, &cfg, &group, &db, &ws);
        let singleton_total: u64 = queries
            .iter()
            .map(|q| {
                let solo = DeviceGroupIndex::upload(&[q]);
                grouped_seeding_kernel(&d, &cfg, &solo, &db, &ws)
                    .1
                    .warp_cycles
            })
            .sum();
        assert!(
            grouped_stats.warp_cycles * 2 < singleton_total,
            "one grouped pass ({} cycles) must amortize at least 2x over {} singleton passes \
             ({} cycles)",
            grouped_stats.warp_cycles,
            queries.len(),
            singleton_total
        );
    }

    #[test]
    fn readonly_cache_serves_the_slot_table() {
        let queries: Vec<DeviceQuery> = (0..4).map(|k| device_query(60 + k)).collect();
        let refs: Vec<&DeviceQuery> = queries.iter().collect();
        let db = DeviceDbBlock::upload(&subjects(16, 120), 0);
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let group = DeviceGroupIndex::upload(&refs);
        let on = CuBlastpConfig {
            use_readonly_cache: true,
            ..Default::default()
        };
        let off = CuBlastpConfig {
            use_readonly_cache: false,
            ..Default::default()
        };
        let (_, with) = grouped_seeding_kernel(&d, &on, &group, &db, &ws);
        let (_, without) = grouped_seeding_kernel(&d, &off, &group, &db, &ws);
        assert!(with.rocache_hits > 0);
        assert_eq!(without.rocache_hits, 0);
        assert!(
            with.warp_cycles < without.warp_cycles,
            "cache on: {} cycles, off: {}",
            with.warp_cycles,
            without.warp_cycles
        );
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let queries: Vec<DeviceQuery> = (0..3).map(|k| device_query(50 + k)).collect();
        let refs: Vec<&DeviceQuery> = queries.iter().collect();
        let db = DeviceDbBlock::upload(&subjects(10, 80), 0);
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let group = DeviceGroupIndex::upload(&refs);
        for _ in 0..2 {
            let (bins, _) = grouped_seeding_kernel(&d, &cfg, &group, &db, &ws);
            for b in bins {
                b.recycle(&ws);
            }
        }
        let warm = ws.allocations();
        for _ in 0..3 {
            let (bins, _) = grouped_seeding_kernel(&d, &cfg, &group, &db, &ws);
            for b in bins {
                b.recycle(&ws);
            }
        }
        assert_eq!(ws.allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn empty_block_yields_empty_arenas() {
        let q = device_query(64);
        let db = DeviceDbBlock::upload(&[], 0);
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let group = DeviceGroupIndex::upload(&[&q]);
        let (bins, _) = grouped_seeding_kernel(&DeviceConfig::k20c(), &cfg, &group, &db, &ws);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].total_hits, 0);
        assert!(bins[0].offsets.iter().all(|&o| o == 0));
    }
}
