//! Fine-grained gapped extension + traceback on the device (DESIGN.md
//! §3.7) — the `--gapped-backend gpu` path.
//!
//! Where [`crate::gapped_gpu`] models the *coarse* port the paper rejects
//! (one lane per gapped seed, per-lane scattered traffic, divergence
//! bounded only by the slowest seed of a warp), this kernel decomposes the
//! banded x-drop DP the way the paper decomposes hit detection:
//!
//! * **one warp per gapped seed** — the warp sweeps the band in
//!   anti-diagonal wavefronts, `ceil(band / 32)` warp-wide steps per DP
//!   row, all 32 lanes in lockstep (zero intra-warp divergence);
//! * **SaLoBa-style work packing** — seeds are tiled into bounded row
//!   chunks, sorted by band area, and assigned longest-processing-time
//!   first across the launch's warp slots, so one giant alignment cannot
//!   idle the rest of the grid;
//! * **constant-memory interval traceback** — no per-cell direction
//!   matrix lives on the device. The forward pass checkpoints the rolling
//!   D/F rows every `interval` rows into a pooled workspace buffer and
//!   the backtrack re-fills one interval at a time, keeping at most
//!   O(band × interval) direction bytes resident
//!   ([`blast_cpu::itrace`]); the kernel asserts that bound against the
//!   measured peak.
//!
//! Functionally the module computes exactly
//! [`blast_cpu::gapped::gapped_phase_subject`] followed by
//! [`blast_cpu::itrace::traceback_interval`] per reportable extension —
//! both bit-identical to the CPU reference — so swapping the backend can
//! never change a search's output, only where the cost model charges it.

use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::gpu_phase::ExtensionsCsr;
use bio_seq::alphabet::Residue;
use blast_core::SearchParams;
use blast_cpu::gapped::{gapped_phase_subject, GappedExt};
use blast_cpu::itrace::{default_interval, traceback_interval, ItraceReport, ItraceScratch};
use blast_cpu::report::Alignment;
use gpu_sim::device::{TRANSACTION_BYTES, WARP_SIZE};
use gpu_sim::{
    launch, DeviceConfig, DeviceError, FaultCtx, FaultInjector, FaultSite, KernelStats,
    KernelWorkspace, LaunchConfig,
};

/// Stats name of the fine gapped kernel (the pipeline's 6th kernel entry).
pub const FINE_GAPPED_KERNEL: &str = "gapped_extension_fine";

/// Work-packing tile height in DP rows: extensions taller than this are
/// split so the LPT packing below can balance them across warp slots
/// (SaLoBa's inter-sequence tiling of oversized subjects).
const TILE_ROWS: u64 = 512;

/// Warp instructions per 32-cell wavefront chunk: the affine recurrence
/// (F, E, M, D plus the x-drop accept test and band bookkeeping).
const CHUNK_INSTRS: u64 = 6;

/// Warp-wide shared-memory accesses per chunk (rolling D/F row read +
/// write; the band lives in shared memory, not per-thread local arrays).
const CHUNK_SHARED: u64 = 2;

/// Serialized size of one downloaded alignment record: the fixed header
/// (coordinates, score, identity counters, op count) plus one byte per op.
const ALIGN_HEADER_BYTES: u64 = 44;

/// Output of the fine gapped kernel for one database block.
#[derive(Debug)]
pub struct GappedDeviceOutput {
    /// Per block-local subject: the alignments of its reportable gapped
    /// extensions (score ≥ report cutoff), in gapped-phase order —
    /// exactly what [`blast_cpu::SearchEngine::report_from_alignments`]
    /// expects.
    pub alignments: Vec<Vec<Alignment>>,
    /// Per block-local subject: every gapped extension (reportable or
    /// not), bit-identical to `gapped_phase_subject`.
    pub gapped: Vec<Vec<GappedExt>>,
    /// Simulated kernel counters (merges into the pipeline's kernel list
    /// as its 6th entry).
    pub stats: KernelStats,
    /// Bytes of the alignment download (the D2H leg this backend adds).
    pub download_bytes: u64,
    /// Interval-traceback work/memory counters, merged across extensions.
    pub itrace: ItraceReport,
}

/// One packed work tile: a row slice of one extension's banded DP, with
/// its share of the traceback re-fill and checkpoint traffic.
struct Tile {
    /// Warp-cycles of the wavefront sweep (forward + re-fill chunks).
    cycles: u64,
    /// 128-byte global transactions (subject stage-in, checkpoint
    /// write/read, resident-interval direction bytes).
    tx: u64,
    /// Useful bytes behind those transactions.
    useful_bytes: u64,
    /// Warp-wide shared-memory accesses of the sweep.
    shared: u64,
}

/// Run fine-grained gapped extension + interval traceback for one block.
///
/// `trigger` and `report_cutoff` are the engine's gapped-trigger and
/// report cutoffs; `query_seq` is the raw query (the traceback needs
/// residues, not just PSSM scores). Scratch (checkpoint words, direction
/// bytes) comes from `ws` and returns to it before the call ends.
///
/// The injector is consulted at the two sites this backend adds:
/// [`FaultSite::GappedLaunch`] before the kernel and
/// [`FaultSite::GappedD2h`] on the alignment download.
#[allow(clippy::too_many_arguments)]
pub fn gapped_fine_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    query_seq: &[Residue],
    db: &DeviceDbBlock,
    extensions: &ExtensionsCsr,
    params: &SearchParams,
    trigger: i32,
    report_cutoff: i32,
    ws: &KernelWorkspace,
    injector: &FaultInjector,
    ctx: FaultCtx,
) -> Result<GappedDeviceOutput, DeviceError> {
    injector.check(FaultSite::GappedLaunch, ctx, FINE_GAPPED_KERNEL)?;

    // One checkpoint interval per launch (merged reports must agree, and
    // a uniform interval gives the workspace one fixed budget to honour).
    let interval = default_interval(query.query_len());
    let band = (2 * params.xdrop_gapped + 1).max(1) as u64;

    // ---- Functional pass: the exact CPU semantics, per subject in
    // block order (the gapped phase is serial per subject — containment
    // skipping makes its output order-dependent).
    let num_seqs = extensions.num_seqs();
    let mut gapped_by_seq: Vec<Vec<GappedExt>> = vec![Vec::new(); num_seqs];
    let mut aligns_by_seq: Vec<Vec<Alignment>> = vec![Vec::new(); num_seqs];
    let mut itrace = ItraceReport::default();
    let mut tiles: Vec<Tile> = Vec::new();
    let mut download_bytes = 0u64;
    let mut scratch = ItraceScratch {
        ckpt: ws.ckpt.take(),
        dirs: ws.dirs.take(),
    };
    for i in 0..num_seqs {
        let seeds = extensions.seq(i);
        if !seeds.iter().any(|e| e.score >= trigger) {
            continue;
        }
        let subject = db.seq(i);
        let gapped = gapped_phase_subject(&query.pssm, subject, seeds, params, trigger);
        for g in &gapped {
            let rows = (g.q_end - g.q_start) as u64 + 1;
            let span_bytes = (g.s_end - g.s_start) as u64 + 1;
            let (mut refill_cells, mut ckpt_words) = (0u64, 0u64);
            if g.score >= report_cutoff {
                let (al, rep) = traceback_interval(
                    &query.pssm,
                    query_seq,
                    subject,
                    g,
                    params,
                    interval,
                    &mut scratch,
                );
                // The constant-memory contract: the resident direction
                // buffer never exceeds one interval of the widest band.
                assert!(
                    rep.peak_dir_bytes <= rep.dir_budget(),
                    "device traceback broke its memory bound: \
                     {} resident direction bytes > band {} x interval {}",
                    rep.peak_dir_bytes,
                    rep.band_max,
                    rep.interval,
                );
                refill_cells = rep.refill_cells;
                ckpt_words = rep.checkpoint_words;
                itrace.absorb(&rep);
                download_bytes += ALIGN_HEADER_BYTES + al.ops.len() as u64;
                aligns_by_seq[i].push(al);
            }
            push_tiles(
                &mut tiles,
                device,
                rows,
                band.min(subject.len() as u64 + 1),
                span_bytes,
                refill_cells,
                ckpt_words,
            );
        }
        gapped_by_seq[i] = gapped;
    }
    ws.ckpt.put(scratch.ckpt);
    ws.dirs.put(scratch.dirs);

    // ---- SaLoBa work packing: LPT over every warp slot of the grid.
    tiles.sort_by_key(|t| std::cmp::Reverse(t.cycles));
    let blocks = cfg.grid_blocks.max(1);
    let warps = cfg.warps_per_block.max(1);
    let slots = (blocks * warps) as usize;
    let mut slot_tiles: Vec<Vec<usize>> = vec![Vec::new(); slots];
    let mut slot_load = vec![0u64; slots];
    for (t, tile) in tiles.iter().enumerate() {
        let s = slot_load
            .iter()
            .enumerate()
            .min_by_key(|&(i, &load)| (load, i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        slot_tiles[s].push(t);
        slot_load[s] += tile.cycles;
    }

    // Rolling D/F band rows per resident warp, in shared memory — far
    // below the coarse port's 24 kB per-block footprint, which is what
    // buys this kernel its occupancy.
    let shared_bytes = (warps * 4 * band as u32 * 4).min(device.shared_mem_per_sm);
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: warps,
        shared_bytes_per_block: shared_bytes,
        use_readonly_cache: false,
    };

    let stats = launch(device, launch_cfg, FINE_GAPPED_KERNEL, |block| {
        let lanes = [0u64; WARP_SIZE as usize];
        for w in 0..warps {
            let slot = (block.block_id * warps + w) as usize;
            for &t in &slot_tiles[slot] {
                let tile = &tiles[t];
                // All 32 lanes sweep the wavefront in lockstep: the warp
                // serializes `cycles`, no lane idles (the fine kernel's
                // whole point versus the coarse lane-per-seed port).
                let mut lanes = lanes;
                lanes.fill(tile.cycles.max(1));
                block.lockstep(&lanes);
                block.bulk_traffic(tile.tx, tile.useful_bytes, tile.shared);
            }
        }
    });

    // D2H leg: the finished alignments the CPU reporting tail consumes.
    injector.check(FaultSite::GappedD2h, ctx, "alignment download")?;

    Ok(GappedDeviceOutput {
        alignments: aligns_by_seq,
        gapped: gapped_by_seq,
        stats,
        download_bytes,
        itrace,
    })
}

/// Split one extension's DP into `TILE_ROWS`-row tiles and append their
/// modelled costs. Re-fill cells and checkpoint words are spread evenly
/// across the extension's tiles (remainder to the first).
fn push_tiles(
    tiles: &mut Vec<Tile>,
    device: &DeviceConfig,
    rows: u64,
    band: u64,
    span_bytes: u64,
    refill_cells: u64,
    ckpt_words: u64,
) {
    let band = band.max(1);
    let n = rows.div_ceil(TILE_ROWS).max(1);
    let chunk_cost = CHUNK_INSTRS * device.instr_cost + CHUNK_SHARED * device.shared_access_cost;
    for t in 0..n {
        let tile_rows = if t == n - 1 {
            rows - t * TILE_ROWS
        } else {
            TILE_ROWS
        };
        let extra = if t == 0 {
            (refill_cells % n, ckpt_words % n, span_bytes % n)
        } else {
            (0, 0, 0)
        };
        let refill = refill_cells / n + extra.0;
        let ckpt = ckpt_words / n + extra.1;
        let stage = span_bytes / n + extra.2;
        // Forward wavefront plus traceback re-fill, both warp-wide.
        let chunks =
            tile_rows * band.div_ceil(WARP_SIZE as u64) + refill.div_ceil(WARP_SIZE as u64);
        // Global traffic: subject stage-in (coalesced, once), checkpoint
        // rows written then re-read (4 bytes per word), and the resident
        // interval's direction bytes written and drained once each.
        let ckpt_bytes = ckpt * 4;
        let dir_bytes = refill * 2;
        let useful = stage + 2 * ckpt_bytes + dir_bytes;
        let tx = stage.div_ceil(TRANSACTION_BYTES)
            + (2 * ckpt_bytes).div_ceil(TRANSACTION_BYTES)
            + dir_bytes.div_ceil(TRANSACTION_BYTES);
        tiles.push(Tile {
            cycles: chunks * chunk_cost,
            tx,
            useful_bytes: useful,
            shared: chunks * CHUNK_SHARED,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_core::{Dfa, Matrix, Pssm};
    use blast_cpu::traceback::traceback;

    fn setup() -> (
        bio_seq::Sequence,
        DeviceQuery,
        DeviceDbBlock,
        SearchParams,
        ExtensionsCsr,
    ) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "gd",
            num_sequences: 60,
            mean_length: 140,
            homolog_fraction: 0.3,
            seed: 43,
        };
        let synth = generate_db(&spec, &q);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(synth.db.sequences(), 0);
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let out = crate::gpu_phase::run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &gpu_sim::KernelWorkspace::new(),
            &gpu_sim::FaultInjector::none(),
            gpu_sim::FaultCtx::default(),
        )
        .expect("no faults armed");
        (q, dq, db, p, out.extensions)
    }

    #[test]
    fn fine_kernel_matches_cpu_gapped_and_traceback() {
        let (q, dq, db, p, exts) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let ws = KernelWorkspace::new();
        let out = gapped_fine_kernel(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            q.residues(),
            &db,
            &exts,
            &p,
            p.gapped_trigger,
            0,
            &ws,
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        let mut any = false;
        for i in 0..exts.num_seqs() {
            let cpu = gapped_phase_subject(&dq.pssm, db.seq(i), exts.seq(i), &p, p.gapped_trigger);
            assert_eq!(out.gapped[i], cpu, "subject {i} gapped extensions");
            let cpu_aligns: Vec<Alignment> = cpu
                .iter()
                .filter(|g| g.score >= 0)
                .map(|g| traceback(&dq.pssm, q.residues(), db.seq(i), g, &p))
                .collect();
            assert_eq!(out.alignments[i], cpu_aligns, "subject {i} alignments");
            any |= !cpu.is_empty();
        }
        assert!(any, "workload produced no gapped extensions");
        assert!(out.stats.warp_cycles > 0);
        assert!(out.download_bytes > 0);
        // Warp-cooperative sweep: zero intra-warp divergence by design.
        assert_eq!(out.stats.divergence_overhead(), 0.0);
        // The memory bound the backend exists for.
        assert!(out.itrace.peak_dir_bytes <= out.itrace.dir_budget());
        assert!(out.itrace.refill_passes > 0);
    }

    #[test]
    fn fine_kernel_beats_coarse_on_modelled_time() {
        let (q, dq, db, p, exts) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let dev = DeviceConfig::k20c();
        let fine = gapped_fine_kernel(
            &dev,
            &cfg,
            &dq,
            q.residues(),
            &db,
            &exts,
            &p,
            p.gapped_trigger,
            0,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        let (_, coarse) =
            crate::gapped_gpu::gapped_kernel(&dev, &cfg, &dq, &db, &exts, &p, p.gapped_trigger);
        assert!(
            fine.stats.time_ms(&dev) < coarse.time_ms(&dev),
            "fine {} ms must beat coarse {} ms",
            fine.stats.time_ms(&dev),
            coarse.time_ms(&dev)
        );
    }

    #[test]
    fn gapped_fault_sites_surface_and_clear() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let (q, dq, db, p, exts) = setup();
        let cfg = CuBlastpConfig::default();
        for site in FaultSite::GAPPED {
            let inj = FaultInjector::new(FaultPlan::none().with(FaultSpec::once(site)));
            let ws = KernelWorkspace::new();
            let run = |inj: &FaultInjector, ws: &KernelWorkspace| {
                gapped_fine_kernel(
                    &DeviceConfig::k20c(),
                    &cfg,
                    &dq,
                    q.residues(),
                    &db,
                    &exts,
                    &p,
                    p.gapped_trigger,
                    0,
                    ws,
                    inj,
                    FaultCtx::block(0),
                )
            };
            run(&inj, &ws).expect_err("armed fault must surface");
            assert_eq!(inj.injected(), 1, "site {}", site.name());
            run(&inj, &ws).unwrap_or_else(|e| panic!("site {} must clear, got {e}", site.name()));
        }
    }

    #[test]
    fn empty_extension_input_is_free() {
        let (q, dq, db, p, _) = setup();
        let empty = ExtensionsCsr::from_stream(Vec::new(), db.num_seqs());
        let out = gapped_fine_kernel(
            &DeviceConfig::k20c(),
            &CuBlastpConfig::default(),
            &dq,
            q.residues(),
            &db,
            &empty,
            &p,
            p.gapped_trigger,
            0,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        assert_eq!(out.stats.warp_cycles, 0);
        assert_eq!(out.download_bytes, 0);
        assert!(out.alignments.iter().all(|a| a.is_empty()));
    }
}
