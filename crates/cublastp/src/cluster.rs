//! GPU-cluster scaling — the paper's stated future work (§6).
//!
//! "In the future, we plan to extend our research for very large databases
//! on GPU clusters. Our preliminary research with mpiBLAST revealed that
//! the result sorting, merging, and ranking from multiple nodes could
//! become a time-consuming step, which in turn, would be the performance
//! bottleneck on GPU clusters."
//!
//! This module implements that design point: the database is sharded
//! across simulated nodes (mpiBLAST-style segmentation), every node runs
//! the full fine-grained cuBLASTP pipeline against its shard using
//! *global* Karlin–Altschul statistics (so e-values and cutoffs — and
//! therefore the merged output — are identical to a single-node search),
//! and the per-node hit lists are merged and re-ranked over a binary
//! reduction tree with a modelled interconnect. Exactly as the paper
//! predicts, the search phase scales with nodes while the merge phase
//! grows, eventually bounding speedup — the `cluster_scaling` bench
//! plots the crossover.

use crate::error::SearchError;
use crate::search::CuBlastp;
use crate::shard::{search_sharded, ShardedDb, ShardedOptions};
use bio_seq::SequenceDb;
use blast_cpu::report::SearchReport;
use serde::{Deserialize, Serialize};

/// Interconnect and cluster geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (each with one simulated K20c + its CPU workers).
    pub nodes: usize,
    /// Link bandwidth in GB/s (FDR InfiniBand of the paper's era ≈ 6).
    pub link_gb_per_s: f64,
    /// Per-message latency in microseconds.
    pub link_latency_us: f64,
    /// Per-record merge/rank cost on the receiving node, in nanoseconds
    /// (comparison-based merging of ranked lists).
    pub rank_ns_per_record: f64,
    /// Serialized size of one result record in bytes (alignment
    /// coordinates, scores, traceback operations).
    pub record_bytes: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            link_gb_per_s: 6.0,
            link_latency_us: 2.0,
            rank_ns_per_record: 25.0,
            record_bytes: 96,
        }
    }
}

/// Outcome of a cluster search.
pub struct ClusterResult {
    /// Merged, re-ranked report — identical to a single-node search.
    pub report: SearchReport,
    /// Modelled per-node end-to-end times (ms).
    pub per_node_ms: Vec<f64>,
    /// Hits each node contributed before the report cap.
    pub per_node_hits: Vec<usize>,
    /// Search-phase makespan: the slowest node (ms).
    pub search_ms: f64,
    /// Merge/rank phase over the reduction tree (ms).
    pub merge_ms: f64,
}

impl ClusterResult {
    /// Total makespan.
    pub fn total_ms(&self) -> f64 {
        self.search_ms + self.merge_ms
    }

    /// Fraction of the makespan spent merging — the paper's predicted
    /// bottleneck as nodes grow.
    pub fn merge_share(&self) -> f64 {
        if self.total_ms() <= 0.0 {
            0.0
        } else {
            self.merge_ms / self.total_ms()
        }
    }
}

/// Model the binary-tree merge of per-node hit lists: at every level,
/// half the nodes ship their (already ranked) lists to a partner that
/// merges them. Level time is the slowest pairwise merge; list sizes cap
/// at `max_reported` after every merge, as real rankers do.
pub fn merge_tree_ms(per_node_hits: &[usize], cfg: &ClusterConfig, max_reported: usize) -> f64 {
    let mut sizes: Vec<usize> = per_node_hits.to_vec();
    let mut total = 0.0f64;
    while sizes.len() > 1 {
        let mut next = Vec::with_capacity(sizes.len().div_ceil(2));
        let mut level = 0.0f64;
        for pair in sizes.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let shipped = pair[1];
            let transfer = cfg.link_latency_us / 1e3
                + (shipped as u64 * cfg.record_bytes) as f64 / (cfg.link_gb_per_s * 1e6);
            let rank = (pair[0] + shipped) as f64 * cfg.rank_ns_per_record / 1e6;
            level = level.max(transfer + rank);
            next.push((pair[0] + shipped).min(max_reported));
        }
        total += level;
        sizes = next;
    }
    total
}

/// Run a cluster search: shard the database across one shard per node,
/// execute every shard through the sharded engine
/// ([`crate::shard::search_sharded`]) with one simulated device per node,
/// and model the reduction-tree merge on top of the merged report.
///
/// The searcher must have been built against the **full** database so
/// cutoffs and e-values use global statistics (what mpiBLAST distributes
/// to its workers); this function shards internally.
///
/// A node whose shard search fails (device fault that survived recovery)
/// fails the whole cluster search — per-node partial results would break
/// the identical-to-single-node merge contract.
pub fn search_cluster(
    searcher: &CuBlastp,
    db: &SequenceDb,
    cluster: &ClusterConfig,
) -> Result<ClusterResult, SearchError> {
    let nodes = cluster.nodes.max(1);
    let sharded = ShardedDb::split(db, nodes, searcher.config.db_block_size);
    let opts = ShardedOptions {
        devices: nodes,
        ..ShardedOptions::default()
    };
    let r = search_sharded(searcher, &sharded, &opts)?;
    let merge_ms = merge_tree_ms(
        &r.per_shard_hits,
        cluster,
        searcher.engine.params.max_reported,
    );

    Ok(ClusterResult {
        report: r.result.report,
        per_node_ms: r.per_shard_ms,
        per_node_hits: r.per_shard_hits,
        search_ms: r.schedule.makespan_ms,
        merge_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CuBlastpConfig;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_core::SearchParams;
    use gpu_sim::DeviceConfig;

    fn workload() -> (CuBlastp, SequenceDb) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "cluster",
            num_sequences: 160,
            mean_length: 140,
            homolog_fraction: 0.2,
            seed: 61,
        };
        let db = generate_db(&spec, &q).db;
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        let searcher = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        (searcher, db)
    }

    #[test]
    fn cluster_output_identical_to_single_node() {
        let (searcher, db) = workload();
        let single = searcher.search(&db).expect("fault-free search");
        for nodes in [1usize, 2, 3, 5, 8] {
            let cluster = ClusterConfig {
                nodes,
                ..ClusterConfig::default()
            };
            let r = search_cluster(&searcher, &db, &cluster).expect("fault-free cluster");
            assert_eq!(
                r.report.identity_key(),
                single.report.identity_key(),
                "nodes = {nodes}"
            );
            assert_eq!(r.per_node_ms.len(), nodes);
        }
    }

    #[test]
    fn more_nodes_shrink_search_phase() {
        let (searcher, db) = workload();
        let run = |nodes| {
            search_cluster(
                &searcher,
                &db,
                &ClusterConfig {
                    nodes,
                    ..ClusterConfig::default()
                },
            )
            .expect("fault-free cluster")
        };
        let one = run(1);
        let eight = run(8);
        assert!(eight.search_ms < one.search_ms);
        assert_eq!(one.merge_ms, 0.0, "single node has nothing to merge");
        assert!(eight.merge_ms > 0.0);
    }

    #[test]
    fn merge_tree_grows_with_nodes_and_hits() {
        let cfg = ClusterConfig::default();
        let small = merge_tree_ms(&[100; 2], &cfg, 500);
        let wide = merge_tree_ms(&[100; 16], &cfg, 500);
        assert!(wide > small);
        let heavy = merge_tree_ms(&[10_000; 16], &cfg, 500_000);
        assert!(heavy > wide);
        assert_eq!(merge_tree_ms(&[42], &cfg, 500), 0.0);
        assert_eq!(merge_tree_ms(&[], &cfg, 500), 0.0);
    }

    #[test]
    fn ragged_shards_cover_everything() {
        // 160 sequences over 7 nodes: last shard short, none dropped.
        let (searcher, db) = workload();
        let r = search_cluster(
            &searcher,
            &db,
            &ClusterConfig {
                nodes: 7,
                ..ClusterConfig::default()
            },
        )
        .expect("fault-free cluster");
        let single = searcher.search(&db).expect("fault-free search");
        assert_eq!(r.report.identity_key(), single.report.identity_key());
    }
}
