//! The GPU side of cuBLASTP for one database block: the five fine-grained
//! kernels (hit detection with binning → assembling → sorting → filtering
//! → ungapped extension) run back to back, as in §3.2–3.4.

use crate::binning::binning_kernel;
use crate::config::{CuBlastpConfig, ExtensionStrategy};
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::extension::{extension_kernel, ExtensionResult};
use crate::reorder::{assemble_kernel, sort_kernel};
use blast_core::SearchParams;
use blast_cpu::ungapped::UngappedExt;
use gpu_sim::{
    DeviceConfig, DeviceError, FaultCtx, FaultInjector, FaultSite, KernelStats, KernelWorkspace,
};

/// Counters describing what the block produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuPhaseCounts {
    /// Word hits detected.
    pub hits: u64,
    /// Hits surviving the filter.
    pub filtered: u64,
    /// Ungapped extensions computed (after de-duplication).
    pub extensions: u64,
    /// Redundant extensions discarded (hit-based strategy only).
    pub redundant: u64,
}

impl GpuPhaseCounts {
    /// Fraction of hits that survived filtering (§3.3 reports 5–11 %).
    pub fn survival_ratio(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.filtered as f64 / self.hits as f64
        }
    }
}

/// Extension records grouped by block-local subject id in CSR form:
/// `offsets[i]..offsets[i+1]` delimits subject `i`'s records in one flat
/// buffer. Two allocations per block regardless of subject count — the
/// dense `Vec<Vec<_>>` it replaces allocated per subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionsCsr {
    offsets: Vec<u32>,
    records: Vec<UngappedExt>,
}

impl ExtensionsCsr {
    /// Group an unordered record stream by `seq_id` via a stable counting
    /// sort; within a subject, stream order is preserved.
    pub fn from_stream(stream: Vec<UngappedExt>, num_seqs: usize) -> Self {
        let mut offsets = vec![0u32; num_seqs + 1];
        for e in &stream {
            offsets[e.seq_id as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut records = match stream.first() {
            Some(&first) => vec![first; stream.len()],
            None => Vec::new(),
        };
        let mut cursor: Vec<u32> = offsets[..num_seqs].to_vec();
        for e in stream {
            let c = &mut cursor[e.seq_id as usize];
            records[*c as usize] = e;
            *c += 1;
        }
        Self { offsets, records }
    }

    /// Number of subjects (including those without records).
    pub fn num_seqs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of extension records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no subject has records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of subject `i` (block-local index); empty slice when none.
    #[inline]
    pub fn seq(&self, i: usize) -> &[UngappedExt] {
        &self.records[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The flat record buffer, grouped by subject.
    pub fn records(&self) -> &[UngappedExt] {
        &self.records
    }
}

/// Output of the GPU phase for one database block.
#[derive(Debug)]
pub struct GpuPhaseOutput {
    /// Extensions grouped by block-local subject id (CSR over one flat
    /// buffer; subjects without extensions have empty spans).
    pub extensions: ExtensionsCsr,
    /// Per-kernel stats in execution order: hit detection, assembling,
    /// sorting, filtering, ungapped extension.
    pub kernels: Vec<KernelStats>,
    /// Hit/extension counters.
    pub counts: GpuPhaseCounts,
    /// Bytes the CPU must download (the extension records, Fig. 12's
    /// D2H leg).
    pub download_bytes: u64,
}

impl GpuPhaseOutput {
    /// Total simulated GPU time for the block in milliseconds.
    pub fn gpu_ms(&self, device: &DeviceConfig) -> f64 {
        self.kernels.iter().map(|k| k.time_ms(device)).sum()
    }

    /// Find one kernel's stats by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name.contains(name))
    }
}

/// Map a kernel's stats name onto its static span label (modelled trace
/// events need `&'static str`; the extension kernel name varies by
/// strategy).
fn kernel_label(name: &str) -> &'static str {
    match name {
        "hit_detection" => "hit_detection",
        "hit_assembling" => "hit_assembling",
        "hit_sorting" => "hit_sorting",
        "hit_filtering" => "hit_filtering",
        "ungapped_extension_diagonal" => "ungapped_extension_diagonal",
        "ungapped_extension_hit" => "ungapped_extension_hit",
        "ungapped_extension_window" => "ungapped_extension_window",
        "gapped_extension_fine" => "gapped_extension_fine",
        _ => "kernel",
    }
}

/// Run the five fine-grained kernels over one uploaded database block.
/// Hit-path scratch (arena pages, sort ping-pong, compaction buffers)
/// comes from `ws` and is returned to it before the call ends, so a warm
/// workspace makes the whole phase allocation-free on the host.
///
/// The `injector` is consulted at every fault site a real driver could
/// fail at — scratch allocation, workspace checkout, each transfer leg,
/// and each of the five kernel launches. With a disarmed injector every
/// check is two relaxed atomic loads and the phase is infallible in
/// practice; an armed one returns the planned [`DeviceError`] so the
/// recovery layer above can retry or degrade.
#[allow(clippy::too_many_arguments)]
pub fn run_gpu_phase(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    params: &SearchParams,
    ws: &KernelWorkspace,
    injector: &FaultInjector,
    ctx: FaultCtx,
) -> Result<GpuPhaseOutput, DeviceError> {
    let _phase_span = obs::span("gpu_phase", "gpu")
        .with_block(ctx.block)
        .with_query(ctx.query);

    check_phase_preamble(injector, ctx)?;

    // Kernel 1: warp-based hit detection with binning (Algorithm 2).
    injector.check(FaultSite::KernelLaunch, ctx, "hit_detection")?;
    let mut k_span = obs::span("hit_detection", "kernel").with_block(ctx.block);
    let (binned, k_bin) = binning_kernel(device, cfg, query, db, ws);
    k_span.set_arg("sim_ms", k_bin.time_ms(device));
    drop(k_span);

    run_gpu_tail(
        device, cfg, query, db, params, ws, injector, ctx, binned, k_bin,
    )
}

/// The device-footprint fault checks every GPU phase starts with: scratch
/// arena, workspace checkout, and the H2D leg that made the block resident
/// (Fig. 12 upload). Shared between the per-query phase and the grouped
/// seeding driver, which runs them once per member before the tail.
pub(crate) fn check_phase_preamble(
    injector: &FaultInjector,
    ctx: FaultCtx,
) -> Result<(), DeviceError> {
    injector.check(FaultSite::DeviceAlloc, ctx, "block scratch arena")?;
    injector.check(FaultSite::Workspace, ctx, "hit-arena pools")?;
    injector.check(FaultSite::H2d, ctx, "db block upload")?;
    injector.check(FaultSite::H2dTimeout, ctx, "db block upload")?;
    injector.check(FaultSite::HostPanic, ctx, "gpu phase")?;
    Ok(())
}

/// Kernels 2–5 over an already-binned hit arena: assembling → sorting →
/// filtering → ungapped extension, plus the D2H leg and the phase's
/// metrics. The per-query path feeds this the `binning_kernel` arena; the
/// grouped path feeds it one member's demuxed slice of a grouped seeding
/// pass — either way `binned` holds that query's hits in the standard
/// arena shape, so downstream semantics are identical by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_gpu_tail(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    params: &SearchParams,
    ws: &KernelWorkspace,
    injector: &FaultInjector,
    ctx: FaultCtx,
    binned: crate::binning::BinnedHits,
    k_bin: KernelStats,
) -> Result<GpuPhaseOutput, DeviceError> {
    let hits = binned.total_hits;

    // Kernel 2: assemble bins into a contiguous array (Fig. 6a) — the
    // arena moves, only the offsets are collapsed.
    injector.check(FaultSite::KernelLaunch, ctx, "hit_assembling")?;
    let mut k_span = obs::span("hit_assembling", "kernel").with_block(ctx.block);
    let (mut assembled, k_asm) = assemble_kernel(device, cfg, binned, ws);
    k_span.set_arg("sim_ms", k_asm.time_ms(device));
    drop(k_span);

    // Kernel 3: segmented sort on the packed 64-bit keys (Fig. 6b, Fig. 7).
    injector.check(FaultSite::KernelLaunch, ctx, "hit_sorting")?;
    let mut k_span = obs::span("hit_sorting", "kernel").with_block(ctx.block);
    let k_sort = sort_kernel(device, &mut assembled, ws);
    k_span.set_arg("sim_ms", k_sort.time_ms(device));
    drop(k_span);

    // Kernel 4: filter non-extendable hits (Fig. 6c); in one-hit mode the
    // pass degenerates to compaction.
    injector.check(FaultSite::KernelLaunch, ctx, "hit_filtering")?;
    let mut k_span = obs::span("hit_filtering", "kernel").with_block(ctx.block);
    let (filtered, k_filter) = crate::reorder::filter_kernel_mode(
        device,
        cfg,
        &assembled,
        params.two_hit,
        params.two_hit_window as i64,
        ws,
    );
    k_span.set_arg("sim_ms", k_filter.time_ms(device));
    drop(k_span);
    assembled.recycle(ws);
    let n_filtered = filtered.hits.len() as u64;

    // Kernel 5: fine-grained ungapped extension (Algorithms 3–5).
    injector.check(FaultSite::KernelLaunch, ctx, "ungapped_extension")?;
    let ext_span_name = match cfg.extension {
        ExtensionStrategy::Diagonal => "ungapped_extension_diagonal",
        ExtensionStrategy::Hit => "ungapped_extension_hit",
        ExtensionStrategy::Window => "ungapped_extension_window",
    };
    let mut k_span = obs::span(ext_span_name, "kernel").with_block(ctx.block);
    let ExtensionResult {
        extensions,
        stats: k_ext,
        redundant,
    } = extension_kernel(device, cfg, query, db, &filtered, params);
    k_span.set_arg("sim_ms", k_ext.time_ms(device));
    drop(k_span);
    filtered.recycle(ws);

    let n_ext = extensions.len() as u64;
    let extensions = ExtensionsCsr::from_stream(extensions, db.num_seqs());

    let download_bytes = n_ext * std::mem::size_of::<UngappedExt>() as u64;

    // D2H leg: the extension records the CPU tail consumes (Fig. 12).
    injector.check(FaultSite::D2h, ctx, "extension download")?;
    injector.check(FaultSite::D2hTimeout, ctx, "extension download")?;

    if obs::state() != 0 {
        for k in [&k_bin, &k_asm, &k_sort, &k_filter, &k_ext] {
            let sim_ms = k.time_ms(device);
            obs::modelled(
                "gpu (modelled)",
                kernel_label(&k.name),
                sim_ms,
                Some(ctx.block),
                None,
            );
            obs::observe("kernel_sim_ms", &[("kernel", &k.name)], sim_ms);
        }
        obs::counter("hits_detected_total", &[], hits);
        obs::counter("hits_survived_total", &[], n_filtered);
        obs::counter("extensions_total", &[], n_ext);
        obs::counter("extensions_redundant_total", &[], redundant);
        if hits > 0 {
            obs::observe(
                "filter_survival_pct",
                &[],
                100.0 * n_filtered as f64 / hits as f64,
            );
        }
    }

    Ok(GpuPhaseOutput {
        extensions,
        kernels: vec![k_bin, k_asm, k_sort, k_filter, k_ext],
        counts: GpuPhaseCounts {
            hits,
            filtered: n_filtered,
            extensions: n_ext,
            redundant,
        },
        download_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_core::{Dfa, Matrix, Pssm};

    fn setup() -> (DeviceQuery, DeviceDbBlock, SearchParams) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "t",
            num_sequences: 80,
            mean_length: 150,
            homolog_fraction: 0.3,
            seed: 5,
        };
        let synth = generate_db(&spec, &q);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(synth.db.sequences(), 0);
        (dq, db, p)
    }

    #[test]
    fn phase_produces_all_five_kernels() {
        let (dq, db, p) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 4,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        assert_eq!(out.kernels.len(), 5);
        assert!(out.kernel("hit_detection").is_some());
        assert!(out.kernel("hit_sorting").is_some());
        assert!(out.kernel("hit_filtering").is_some());
        assert!(out.kernel("ungapped_extension").is_some());
        assert!(out.counts.hits > 0);
        assert!(out.counts.extensions > 0);
        assert!(out.gpu_ms(&DeviceConfig::k20c()) > 0.0);
    }

    #[test]
    fn filtering_rejects_most_hits() {
        let (dq, db, p) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 4,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        let ratio = out.counts.survival_ratio();
        assert!(
            ratio < 0.35,
            "filter must reject the bulk of hits, survival = {ratio}"
        );
        assert!(ratio > 0.0);
    }

    #[test]
    fn extensions_match_cpu_reference() {
        // The decisive semantics test: binning → sorting → filtering →
        // diagonal walk must reproduce exactly the extension set of the
        // column-major CPU scan with the two-hit rule.
        let (dq, db, p) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            ..Default::default()
        };
        let out = run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");

        let mut cpu_exts: Vec<Vec<UngappedExt>> = vec![Vec::new(); db.num_seqs()];
        let mut scratch = blast_cpu::hit::DiagonalScratch::new(0);
        let mut stats = blast_cpu::hit::HitStats::default();
        for (i, slot) in cpu_exts.iter_mut().enumerate() {
            let mut v = Vec::new();
            blast_cpu::hit::scan_subject(
                &dq.dfa,
                &dq.pssm,
                db.seq(i),
                i as u32,
                p.two_hit_window as i64,
                p.xdrop_ungapped,
                &mut scratch,
                &mut v,
                &mut stats,
            );
            *slot = v;
        }
        for v in cpu_exts.iter_mut() {
            v.sort_by_key(|e| (e.seq_id, e.s_start, e.q_start, e.len));
        }
        assert_eq!(out.extensions.num_seqs(), cpu_exts.len());
        for (i, v) in cpu_exts.iter().enumerate() {
            assert_eq!(out.extensions.seq(i), v.as_slice(), "subject {i}");
        }
        assert_eq!(out.counts.hits, stats.hits);
    }

    #[test]
    fn every_device_fault_site_surfaces_as_err() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let (dq, db, p) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            ..Default::default()
        };
        for site in FaultSite::DEVICE {
            let inj = FaultInjector::new(FaultPlan::none().with(FaultSpec::once(site)));
            let err = run_gpu_phase(
                &DeviceConfig::k20c(),
                &cfg,
                &dq,
                &db,
                &p,
                &KernelWorkspace::new(),
                &inj,
                FaultCtx::block(0),
            )
            .expect_err("armed fault must surface");
            assert_eq!(inj.injected(), 1, "site {}", site.name());
            // Second run: the transient single-shot fault has cleared.
            run_gpu_phase(
                &DeviceConfig::k20c(),
                &cfg,
                &dq,
                &db,
                &p,
                &KernelWorkspace::new(),
                &inj,
                FaultCtx::block(0),
            )
            .unwrap_or_else(|e| panic!("site {} must clear, got {e}", site.name()));
            let _ = err;
        }
    }

    #[test]
    fn launch_faults_name_the_failing_kernel_and_respect_block_scope() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let (dq, db, p) = setup();
        let cfg = CuBlastpConfig {
            grid_blocks: 3,
            ..Default::default()
        };
        let inj = FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::KernelLaunch).on_block(2)),
        );
        // Block 0 is out of scope — the phase runs clean.
        run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &inj,
            FaultCtx::block(0),
        )
        .expect("fault scoped to block 2 must not fire on block 0");
        // Block 2 fails, naming the first kernel launch.
        let err = run_gpu_phase(
            &DeviceConfig::k20c(),
            &cfg,
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &inj,
            FaultCtx::block(2),
        )
        .expect_err("scoped fault must fire on block 2");
        assert_eq!(
            err,
            gpu_sim::DeviceError::LaunchFailed {
                kernel: "hit_detection".into()
            }
        );
    }

    #[test]
    fn csr_grouping_matches_per_seq_vectors() {
        let e = |seq_id: u32, s_start: u32| UngappedExt {
            seq_id,
            q_start: 1,
            s_start,
            len: 4,
            score: 13,
        };
        let stream = vec![e(2, 9), e(0, 1), e(2, 3), e(1, 7), e(2, 5)];
        let csr = ExtensionsCsr::from_stream(stream, 4);
        assert_eq!(csr.num_seqs(), 4);
        assert_eq!(csr.len(), 5);
        assert_eq!(csr.seq(0), &[e(0, 1)]);
        assert_eq!(csr.seq(1), &[e(1, 7)]);
        // Stream order within a subject is preserved (stable grouping).
        assert_eq!(csr.seq(2), &[e(2, 9), e(2, 3), e(2, 5)]);
        assert!(csr.seq(3).is_empty());

        let empty = ExtensionsCsr::from_stream(Vec::new(), 0);
        assert_eq!(empty.num_seqs(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_block() {
        let q = make_query(32);
        let m = Matrix::blosum62();
        let p = SearchParams::default();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, p.threshold), Pssm::build(&q, &m));
        let db = DeviceDbBlock::upload(&[], 0);
        let out = run_gpu_phase(
            &DeviceConfig::k20c(),
            &CuBlastpConfig::default(),
            &dq,
            &db,
            &p,
            &KernelWorkspace::new(),
            &FaultInjector::none(),
            FaultCtx::default(),
        )
        .expect("no faults armed");
        assert_eq!(out.counts.hits, 0);
        assert_eq!(out.extensions.num_seqs(), 0);
        assert!(out.extensions.is_empty());
    }
}
