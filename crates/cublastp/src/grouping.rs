//! Round packing for the grouped seeding engine.
//!
//! The grouped kernel probes one [`blast_core::QueryIndex`] per *round* —
//! a contiguous run of batch queries whose combined neighbourhood size
//! fits the configured device index budget. Packing is first-fit in
//! input order: batch order is preserved (so per-query output order never
//! changes), and a query whose neighbourhood alone exceeds the budget
//! still gets a singleton round — the grouped path never silently falls
//! back to per-query seeding.

use std::ops::Range;

/// Pack queries into index-budget-bounded rounds.
///
/// `entry_counts[q]` is the neighbourhood size (total word → position
/// entries) of batch query `q`; `budget` is the device index capacity in
/// entries. Returns contiguous, in-order, non-empty ranges that cover
/// `0..entry_counts.len()` exactly once.
pub fn plan_rounds(entry_counts: &[usize], budget: usize) -> Vec<Range<usize>> {
    let budget = budget.max(1);
    let mut rounds = Vec::new();
    let mut start = 0usize;
    let mut used = 0usize;
    for (q, &entries) in entry_counts.iter().enumerate() {
        if q > start && used + entries > budget {
            rounds.push(start..q);
            start = q;
            used = 0;
        }
        used += entries;
    }
    if start < entry_counts.len() {
        rounds.push(start..entry_counts.len());
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(rounds: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in rounds {
            assert_eq!(r.start, next, "rounds must be contiguous and in order");
            assert!(r.start < r.end, "rounds must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "rounds must cover every query");
    }

    #[test]
    fn everything_fits_one_round() {
        let rounds = plan_rounds(&[10, 20, 30], 100);
        assert_eq!(rounds, vec![0..3]);
    }

    #[test]
    fn splits_at_the_budget() {
        let rounds = plan_rounds(&[40, 40, 40, 40], 100);
        assert_eq!(rounds, vec![0..2, 2..4]);
        covers_exactly(&rounds, 4);
    }

    #[test]
    fn oversized_query_gets_a_singleton_round() {
        let rounds = plan_rounds(&[10, 500, 10], 100);
        assert_eq!(rounds, vec![0..1, 1..2, 2..3]);
        covers_exactly(&rounds, 3);
    }

    #[test]
    fn leading_oversized_query_does_not_drag_neighbours_in() {
        let rounds = plan_rounds(&[500, 10, 10], 100);
        assert_eq!(rounds, vec![0..1, 1..3]);
        covers_exactly(&rounds, 3);
    }

    #[test]
    fn empty_and_zero_cases() {
        assert!(plan_rounds(&[], 100).is_empty());
        // Zero-entry queries (empty neighbourhoods) still get scheduled.
        let rounds = plan_rounds(&[0, 0, 0], 1);
        covers_exactly(&rounds, 3);
        assert_eq!(rounds, vec![0..3]);
        // A degenerate budget still covers everything, one query at a time.
        let rounds = plan_rounds(&[5, 5], 0);
        covers_exactly(&rounds, 2);
    }

    #[test]
    fn coverage_invariant_over_a_sweep() {
        let counts: Vec<usize> = (0..37).map(|i| (i * 97) % 250).collect();
        for budget in [1, 64, 250, 251, 1000, 100_000] {
            let rounds = plan_rounds(&counts, budget);
            covers_exactly(&rounds, counts.len());
            for r in &rounds {
                // Either the round respects the budget, or it is a
                // singleton forced by an oversized query.
                let sum: usize = counts[r.clone()].iter().sum();
                assert!(
                    sum <= budget || r.len() == 1,
                    "round {r:?} sum {sum} over budget {budget}"
                );
            }
        }
    }
}
