//! Runtime configuration of the fine-grained pipeline.
//!
//! The paper exposes three run-time choices and evaluates each:
//! the number of bins per warp (Fig. 14), the ungapped-extension strategy
//! (Fig. 16), and the scoring-matrix placement (Fig. 15); plus the
//! read-only-cache toggle of Fig. 17. All of them live here.

use crate::error::SearchError;
use serde::{Deserialize, Serialize};

/// Which fine-grained ungapped-extension kernel to run (§3.4, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtensionStrategy {
    /// Algorithm 3: one thread per diagonal; divergent but no redundancy.
    Diagonal,
    /// Algorithm 4: one thread per hit; redundant computation (needs
    /// de-duplication) traded for less divergence.
    Hit,
    /// Algorithm 5: a window of threads per diagonal; the paper's best.
    Window,
}

/// Scoring-table placement for the extension kernels (§3.5, Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoringMode {
    /// Query-specific PSS matrix: shared memory while it fits (query ≤ 768
    /// residues), global memory beyond.
    Pssm,
    /// Fixed 2 kB BLOSUM62 matrix, always in shared memory.
    Blosum62,
    /// The paper's tuned choice: PSSM for short queries, BLOSUM62 for
    /// long ones (§4.1 picks PSSM for query127, BLOSUM62 for query517 and
    /// query1054).
    Auto,
}

/// Where the gapped extension + traceback phase runs (DESIGN.md §3.7).
///
/// The paper's pipeline leaves gapped extension on the CPU (§3.6); the
/// device backend moves it into the per-block GPU timeline as a
/// warp-cooperative banded-DP kernel with constant-memory interval
/// traceback. Output is bit-identical either way — the backend only moves
/// where the same arithmetic happens and what the cost model charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GappedBackend {
    /// Gapped extension + traceback on the host CPU pool (paper §3.6).
    #[default]
    Cpu,
    /// Fine-grained device kernel: one warp per gapped seed, anti-diagonal
    /// wavefronts within the band, interval-checkpoint traceback.
    Gpu,
}

impl GappedBackend {
    /// Stable lowercase name, matching the CLI flag values.
    pub fn name(self) -> &'static str {
        match self {
            GappedBackend::Cpu => "cpu",
            GappedBackend::Gpu => "gpu",
        }
    }
}

/// Query length above which the PSS matrix no longer fits in the 48 kB of
/// shared memory (64 bytes per query column, §3.5).
pub const PSSM_SHARED_LIMIT: usize = 768;

/// Query length at which [`ScoringMode::Auto`] switches from PSSM to
/// BLOSUM62. The paper measures PSSM winning at 127 and losing at 517; the
/// crossover sits where the PSSM's shared-memory footprint starts to
/// depress occupancy.
pub const AUTO_SCORING_CROSSOVER: usize = 320;

/// How the pipeline reacts to device faults (see DESIGN.md §3.3).
///
/// Transient faults (kernel-launch failures, transfer errors/timeouts)
/// are retried up to [`max_attempts`](Self::max_attempts) times with a
/// linear backoff and a [`gpu_sim::KernelWorkspace`] reset between
/// attempts. Permanent faults (allocation OOM, pool exhaustion) — or
/// transient ones that exhaust the budget — degrade to the `blast-cpu`
/// reference path for that database block when
/// [`cpu_fallback`](Self::cpu_fallback) is on, producing bit-identical
/// results; otherwise the search fails with a `SearchError::Device`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Total launch attempts per block (1 = no retry). Must be ≥ 1.
    pub max_attempts: u32,
    /// Milliseconds of backoff before retry `n` (scaled by `n`).
    pub backoff_ms: f64,
    /// Re-run permanently failed blocks on the CPU reference path.
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_ms: 0.1,
            cpu_fallback: true,
        }
    }
}

/// Tuning for the executable CPU–GPU overlap pipeline (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Database blocks the GPU side may run ahead of the CPU side (the
    /// bound of the channel between them). 1 reproduces the paper's
    /// one-staged-block regime; larger values smooth GPU-side jitter at
    /// the cost of holding more extension records in host memory. Must be
    /// ≥ 1. Per-block results are bit-identical at any depth.
    pub depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { depth: 1 }
    }
}

/// Full cuBLASTP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CuBlastpConfig {
    /// Bins per warp for diagonal binning (Fig. 14; paper default 128).
    pub num_bins: usize,
    /// Ungapped-extension strategy (paper default: window-based).
    pub extension: ExtensionStrategy,
    /// Threads per extension window (Fig. 8 uses 8).
    pub window_size: usize,
    /// Scoring-table placement.
    pub scoring: ScoringMode,
    /// Route DFA query positions through the read-only cache (Fig. 17).
    pub use_readonly_cache: bool,
    /// Warps per thread block for the fine-grained kernels.
    pub warps_per_block: u32,
    /// Thread blocks per grid.
    pub grid_blocks: u32,
    /// Database sequences per pipeline block (Fig. 12 granularity).
    pub db_block_size: usize,
    /// CPU worker threads for gapped extension and traceback (§3.6).
    pub cpu_threads: usize,
    /// Overlap CPU phases and transfers with GPU kernels (Fig. 12).
    pub overlap: bool,
    /// Overlap-executor tuning (in-flight block depth).
    #[serde(default)]
    pub pipeline: PipelineConfig,
    /// Where the gapped phase runs (CPU tail vs device kernel, §3.7).
    #[serde(default)]
    pub gapped_backend: GappedBackend,
    /// Device-fault recovery policy (retry budget, backoff, degradation).
    pub recovery: RecoveryPolicy,
}

impl Default for CuBlastpConfig {
    fn default() -> Self {
        Self {
            num_bins: 128,
            extension: ExtensionStrategy::Window,
            window_size: 8,
            scoring: ScoringMode::Auto,
            use_readonly_cache: true,
            warps_per_block: 8,
            grid_blocks: 26, // 2 blocks per K20c SM
            db_block_size: 1024,
            cpu_threads: 4,
            overlap: true,
            pipeline: PipelineConfig::default(),
            gapped_backend: GappedBackend::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl CuBlastpConfig {
    /// Resolve [`ScoringMode::Auto`] for a concrete query length.
    pub fn resolved_scoring(&self, query_len: usize) -> ScoringMode {
        match self.scoring {
            ScoringMode::Auto => {
                if query_len <= AUTO_SCORING_CROSSOVER {
                    ScoringMode::Pssm
                } else {
                    ScoringMode::Blosum62
                }
            }
            other => other,
        }
    }

    /// Shared-memory bytes per block consumed by the scoring table.
    pub fn scoring_shared_bytes(&self, query_len: usize) -> u32 {
        match self.resolved_scoring(query_len) {
            ScoringMode::Pssm => {
                if query_len <= PSSM_SHARED_LIMIT {
                    (query_len * 64) as u32
                } else {
                    0 // spilled to global memory
                }
            }
            ScoringMode::Blosum62 => 2 * 1024,
            ScoringMode::Auto => unreachable!("resolved above"),
        }
    }

    /// True when the PSSM path reads from global memory (query too long
    /// for shared memory).
    pub fn pssm_in_global(&self, query_len: usize) -> bool {
        matches!(self.resolved_scoring(query_len), ScoringMode::Pssm)
            && query_len > PSSM_SHARED_LIMIT
    }

    /// Reject configurations the pipeline cannot run. Checked once at the
    /// top of every search, so downstream layers can rely on nonzero
    /// geometry instead of panicking on division by zero.
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.num_bins == 0 {
            return Err(SearchError::config("num_bins must be > 0"));
        }
        if self.extension == ExtensionStrategy::Window && self.window_size == 0 {
            return Err(SearchError::config(
                "window_size must be > 0 for the window extension strategy",
            ));
        }
        if self.warps_per_block == 0 || self.grid_blocks == 0 {
            return Err(SearchError::config(
                "kernel geometry (warps_per_block, grid_blocks) must be > 0",
            ));
        }
        if self.db_block_size == 0 {
            return Err(SearchError::config("db_block_size must be > 0"));
        }
        if self.cpu_threads == 0 {
            return Err(SearchError::config("cpu_threads must be > 0"));
        }
        if self.pipeline.depth == 0 {
            return Err(SearchError::config(
                "pipeline.depth must be >= 1 (blocks in flight)",
            ));
        }
        if self.recovery.max_attempts == 0 {
            return Err(SearchError::config(
                "recovery.max_attempts must be >= 1 (1 = no retry)",
            ));
        }
        if !self.recovery.backoff_ms.is_finite() || self.recovery.backoff_ms < 0.0 {
            return Err(SearchError::config(
                "recovery.backoff_ms must be finite and >= 0",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CuBlastpConfig::default();
        assert_eq!(c.num_bins, 128);
        assert_eq!(c.extension, ExtensionStrategy::Window);
        assert_eq!(c.window_size, 8);
        assert!(c.use_readonly_cache);
        assert_eq!(c.cpu_threads, 4);
        assert_eq!(c.pipeline.depth, 1, "default depth is the paper regime");
        assert_eq!(c.gapped_backend, GappedBackend::Cpu, "paper tail is CPU");
    }

    #[test]
    fn gapped_backend_names_are_cli_values() {
        assert_eq!(GappedBackend::Cpu.name(), "cpu");
        assert_eq!(GappedBackend::Gpu.name(), "gpu");
        assert_eq!(GappedBackend::default(), GappedBackend::Cpu);
    }

    #[test]
    fn auto_scoring_matches_paper_choices() {
        let c = CuBlastpConfig::default();
        assert_eq!(c.resolved_scoring(127), ScoringMode::Pssm);
        assert_eq!(c.resolved_scoring(517), ScoringMode::Blosum62);
        assert_eq!(c.resolved_scoring(1054), ScoringMode::Blosum62);
    }

    #[test]
    fn pssm_footprint_matches_section_3_5() {
        let c = CuBlastpConfig {
            scoring: ScoringMode::Pssm,
            ..Default::default()
        };
        assert_eq!(c.scoring_shared_bytes(768), 48 * 1024);
        assert_eq!(c.scoring_shared_bytes(769), 0, "spills to global");
        assert!(c.pssm_in_global(769));
        assert!(!c.pssm_in_global(768));
    }

    #[test]
    fn auto_crossover_boundary() {
        let c = CuBlastpConfig::default();
        assert_eq!(
            c.resolved_scoring(AUTO_SCORING_CROSSOVER),
            ScoringMode::Pssm
        );
        assert_eq!(
            c.resolved_scoring(AUTO_SCORING_CROSSOVER + 1),
            ScoringMode::Blosum62
        );
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_zero_geometry() {
        assert!(CuBlastpConfig::default().validate().is_ok());
        for bad in [
            CuBlastpConfig {
                num_bins: 0,
                ..Default::default()
            },
            CuBlastpConfig {
                window_size: 0,
                ..Default::default()
            },
            CuBlastpConfig {
                grid_blocks: 0,
                ..Default::default()
            },
            CuBlastpConfig {
                db_block_size: 0,
                ..Default::default()
            },
            CuBlastpConfig {
                cpu_threads: 0,
                ..Default::default()
            },
            CuBlastpConfig {
                recovery: RecoveryPolicy {
                    max_attempts: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            CuBlastpConfig {
                pipeline: PipelineConfig { depth: 0 },
                ..Default::default()
            },
        ] {
            let err = bad.validate().expect_err("must reject");
            assert_eq!(err.category(), "config");
        }
        // Zero window size is fine off the window strategy.
        let c = CuBlastpConfig {
            extension: ExtensionStrategy::Diagonal,
            window_size: 0,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn blosum_is_always_2kb() {
        let c = CuBlastpConfig {
            scoring: ScoringMode::Blosum62,
            ..Default::default()
        };
        assert_eq!(c.scoring_shared_bytes(127), 2048);
        assert_eq!(c.scoring_shared_bytes(10_000), 2048);
        assert!(!c.pssm_in_global(10_000));
    }
}
