//! Deterministic work-stealing scheduler for the sharded engine
//! (DESIGN.md §3.10).
//!
//! Work items are (query × shard) searches whose device cost is already
//! known from the modelled pipeline timeline, so scheduling is a pure
//! function: LPT (longest-processing-time) seeding places every item on
//! the least-loaded device's deque, then a discrete-event simulation runs
//! the fleet — each device pops its own deque from the front and, when it
//! runs dry, steals from the *back* of the richest victim's deque (the
//! classic owner-LIFO / thief-FIFO split that steals the largest staged
//! work). Shard residence is charged faithfully: the first time a device
//! touches a shard it pays that shard's modelled H2D upload, so a steal
//! that drags a new shard onto a device is not free and the schedule
//! prefers affinity when costs tie.
//!
//! Everything — victim choice, tie-breaks, the steal log — is a
//! deterministic function of `(costs, shards, uploads, devices, seed)`.
//! The seed feeds a xorshift64* generator used only to rotate the victim
//! scan origin, so two runs with the same seed produce byte-identical
//! schedules (the perf gate and the bit-identity tests rely on this) and
//! different seeds still produce valid, merely differently-tied
//! schedules.

use std::collections::VecDeque;

/// Default seed for the steal-order generator; any fixed value keeps the
/// schedule reproducible, this one is just the crate's convention.
pub const DEFAULT_STEAL_SEED: u64 = 0x5EED_CB1A;

/// Modelled latency of one steal operation (deque CAS + task migration),
/// in milliseconds. Charged to the thief.
pub const STEAL_LATENCY_MS: f64 = 0.002;

/// One recorded steal, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Device that ran out of local work.
    pub thief: usize,
    /// Device whose deque was robbed.
    pub victim: usize,
    /// The migrated work item.
    pub item: usize,
}

/// One device's simulated timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceTimeline {
    /// Modelled busy time: item costs + shard uploads + steal latency.
    pub busy_ms: f64,
    /// Of which, time spent uploading shards on first touch.
    pub upload_ms: f64,
    /// Items this device executed, in execution order.
    pub items: Vec<usize>,
    /// Steals this device performed.
    pub steals: u64,
    /// Distinct shards resident on this device at the end of the run.
    pub shards_resident: usize,
}

/// The complete schedule: per-device timelines plus the merged view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StealSchedule {
    /// One timeline per device.
    pub per_device: Vec<DeviceTimeline>,
    /// Makespan: the busiest device's clock when the last item finishes.
    pub makespan_ms: f64,
    /// Steals across the fleet, in execution order.
    pub steal_log: Vec<StealEvent>,
    /// Device each item ran on (`assignment[item] = device`).
    pub assignment: Vec<usize>,
}

impl StealSchedule {
    /// Total steals across the fleet.
    pub fn total_steals(&self) -> u64 {
        self.per_device.iter().map(|d| d.steals).sum()
    }

    /// Scaling efficiency against a given single-device makespan:
    /// `serial / (devices × makespan)`, 1.0 = perfect linear scaling.
    pub fn efficiency(&self, single_device_ms: f64) -> f64 {
        let n = self.per_device.len().max(1) as f64;
        if self.makespan_ms <= 0.0 {
            1.0
        } else {
            single_device_ms / (n * self.makespan_ms)
        }
    }
}

/// xorshift64* — tiny, seedable, and good enough for tie-break rotation.
/// A zero seed is mapped to a fixed odd constant (xorshift's one bad
/// state).
fn xorshift64(state: &mut u64) -> u64 {
    if *state == 0 {
        *state = 0x9E37_79B9_7F4A_7C15;
    }
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Remaining queued cost of one device's deque.
fn queued_cost(deque: &VecDeque<usize>, costs: &[f64]) -> f64 {
    deque.iter().map(|&i| costs[i]).sum()
}

/// Schedule `costs.len()` work items over `devices` identical simulated
/// devices with LPT seeding and deque-based work stealing.
///
/// * `costs[i]` — modelled execution time of item `i` in ms.
/// * `shards[i]` — shard item `i` reads; the first item of a shard on a
///   device charges `uploads[shard]` to that device (per-shard residence).
/// * `seed` — steal-order seed; the schedule is a deterministic function
///   of all five arguments.
///
/// Zero devices is treated as one; zero items yields an empty schedule.
pub fn schedule_work_stealing(
    costs: &[f64],
    shards: &[usize],
    uploads: &[f64],
    devices: usize,
    seed: u64,
) -> StealSchedule {
    let n_dev = devices.max(1);
    let n = costs.len();
    let mut per_device = vec![DeviceTimeline::default(); n_dev];
    let mut schedule = StealSchedule {
        assignment: vec![0; n],
        ..Default::default()
    };

    // LPT seeding: longest item first onto the least-loaded deque. Stable
    // tie-break on item id keeps the seeding deterministic.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_dev];
    let mut seeded = vec![0.0f64; n_dev];
    for &item in &order {
        let mut best = 0usize;
        for d in 1..n_dev {
            if seeded[d] < seeded[best] - 1e-12 {
                best = d;
            }
        }
        seeded[best] += costs[item];
        deques[best].push_back(item);
    }

    // Discrete-event simulation: the device with the earliest clock acts
    // next. Owners pop the front of their own deque; a dry device steals
    // from the back of the richest victim (scan origin rotated by the
    // seeded generator so equal-cost victims break ties reproducibly).
    let mut rng = seed;
    let mut clocks = vec![0.0f64; n_dev];
    let mut resident: Vec<Vec<bool>> = vec![vec![false; uploads.len()]; n_dev];
    let mut remaining = n;
    let mut parked = vec![false; n_dev];
    while remaining > 0 {
        let mut dev = usize::MAX;
        for d in 0..n_dev {
            if parked[d] {
                continue;
            }
            if dev == usize::MAX || clocks[d] < clocks[dev] - 1e-12 {
                dev = d;
            }
        }
        if dev == usize::MAX {
            break; // unreachable: remaining > 0 implies a non-parked owner
        }

        let (item, stolen_from) = if let Some(item) = deques[dev].pop_front() {
            (item, None)
        } else {
            // Steal from the victim with the most queued cost. The scan
            // starts at a seed-rotated origin so exact ties resolve
            // deterministically but not always toward device 0.
            let origin = (xorshift64(&mut rng) % n_dev as u64) as usize;
            let mut victim = usize::MAX;
            let mut victim_cost = 0.0f64;
            for k in 0..n_dev {
                let v = (origin + k) % n_dev;
                if v == dev || deques[v].is_empty() {
                    continue;
                }
                let c = queued_cost(&deques[v], costs);
                if victim == usize::MAX || c > victim_cost + 1e-12 {
                    victim = v;
                    victim_cost = c;
                }
            }
            match victim {
                usize::MAX => {
                    // Nothing left anywhere: this device is done.
                    parked[dev] = true;
                    continue;
                }
                v => match deques[v].pop_back() {
                    Some(item) => (item, Some(v)),
                    None => continue, // unreachable: non-empty by scan
                },
            }
        };

        let tl = &mut per_device[dev];
        if let Some(victim) = stolen_from {
            clocks[dev] += STEAL_LATENCY_MS;
            tl.busy_ms += STEAL_LATENCY_MS;
            tl.steals += 1;
            schedule.steal_log.push(StealEvent {
                thief: dev,
                victim,
                item,
            });
        }
        let shard = shards.get(item).copied().unwrap_or(0);
        if let Some(slot) = resident[dev].get_mut(shard) {
            if !*slot {
                *slot = true;
                let up = uploads.get(shard).copied().unwrap_or(0.0);
                clocks[dev] += up;
                tl.busy_ms += up;
                tl.upload_ms += up;
                tl.shards_resident += 1;
            }
        }
        clocks[dev] += costs[item];
        tl.busy_ms += costs[item];
        tl.items.push(item);
        schedule.assignment[item] = dev;
        remaining -= 1;
    }

    schedule.makespan_ms = clocks.iter().copied().fold(0.0, f64::max);
    schedule.per_device = per_device;
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_item_schedules() {
        let s = schedule_work_stealing(&[], &[], &[], 4, 1);
        assert_eq!(s.makespan_ms, 0.0);
        assert_eq!(s.total_steals(), 0);
        let s = schedule_work_stealing(&[3.0], &[0], &[0.5], 4, 1);
        assert_eq!(s.makespan_ms, 3.5, "one item: cost + its shard upload");
        assert_eq!(s.assignment, vec![s.assignment[0]]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let costs: Vec<f64> = (0..37).map(|i| 1.0 + (i % 7) as f64).collect();
        let shards: Vec<usize> = (0..37).map(|i| i % 5).collect();
        let uploads = vec![0.25; 5];
        let s = schedule_work_stealing(&costs, &shards, &uploads, 6, 9);
        let mut seen = vec![0usize; costs.len()];
        for tl in &s.per_device {
            for &i in &tl.items {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each item exactly once");
        assert_eq!(s.assignment.len(), costs.len());
    }

    #[test]
    fn same_seed_reproduces_schedule_and_steal_order() {
        let costs: Vec<f64> = (0..64).map(|i| 1.0 + ((i * 31) % 13) as f64).collect();
        let shards: Vec<usize> = (0..64).map(|i| i % 8).collect();
        let uploads = vec![0.5; 8];
        let a = schedule_work_stealing(&costs, &shards, &uploads, 8, 42);
        let b = schedule_work_stealing(&costs, &shards, &uploads, 8, 42);
        assert_eq!(a, b, "same inputs, same seed: identical schedule");
    }

    #[test]
    fn stealing_rescues_a_skewed_seeding() {
        // One huge item plus many small ones: without stealing, the LPT
        // deque holding the small items after the giant would idle the
        // rest of the fleet. The makespan must beat the serial sum by a
        // wide margin and steals must actually happen.
        let mut costs = vec![100.0];
        costs.extend(std::iter::repeat_n(1.0, 99));
        let shards = vec![0usize; 100];
        let uploads = vec![0.0];
        let s = schedule_work_stealing(&costs, &shards, &uploads, 4, 7);
        let serial: f64 = costs.iter().sum();
        assert!(
            s.makespan_ms <= serial / 1.9,
            "4 devices must roughly halve"
        );
        assert!(s.makespan_ms >= 100.0, "bounded by the giant item");
    }

    #[test]
    fn uploads_charge_once_per_device_shard_pair() {
        // Two shards, four equal items each, two devices, huge uploads:
        // the best schedule keeps each shard on one device.
        let costs = vec![1.0; 8];
        let shards = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let uploads = vec![10.0, 10.0];
        let s = schedule_work_stealing(&costs, &shards, &uploads, 2, 3);
        let total_upload: f64 = s.per_device.iter().map(|d| d.upload_ms).sum();
        // At most every (device, shard) pair uploads; at least each shard
        // uploads somewhere.
        assert!((20.0..=40.0).contains(&total_upload));
        for tl in &s.per_device {
            assert_eq!(
                tl.upload_ms,
                10.0 * tl.shards_resident as f64,
                "upload charged exactly once per resident shard"
            );
        }
    }

    #[test]
    fn makespan_shrinks_with_devices() {
        let costs: Vec<f64> = (0..48).map(|i| 2.0 + (i % 5) as f64).collect();
        let shards: Vec<usize> = (0..48).map(|i| i % 8).collect();
        let uploads = vec![0.1; 8];
        let m = |d| schedule_work_stealing(&costs, &shards, &uploads, d, 1).makespan_ms;
        let (m1, m2, m4, m8) = (m(1), m(2), m(4), m(8));
        assert!(m2 < m1 && m4 < m2 && m8 < m4);
        assert!(m1 / m4 >= 2.0, "4 devices at least halve 48 even items");
    }
}
