//! The public cuBLASTP search driver.
//!
//! Orchestrates the whole paper: database blocks stream through the five
//! fine-grained GPU kernels (§3.2–3.5), their extension records cross the
//! modelled PCIe link, and a multicore CPU pool finishes gapped extension
//! and alignment with traceback (§3.6), overlapped block-against-block as
//! in Fig. 12. Output is bit-identical to the FSA-BLAST reference
//! (`blast_cpu::search_sequential`) — the property §4.3 claims and the
//! integration tests enforce.

use crate::binning::BinnedHits;
use crate::cancel::CancelToken;
use crate::config::{CuBlastpConfig, ExtensionStrategy, GappedBackend};
use crate::devicedata::{DeviceDb, DeviceDbBlock, DeviceQuery};
use crate::error::{panic_message, PipelineError, SearchError};
use crate::gapped_device::{gapped_fine_kernel, GappedDeviceOutput, FINE_GAPPED_KERNEL};
use crate::gpu_phase::{
    check_phase_preamble, run_gpu_phase, run_gpu_tail, ExtensionsCsr, GpuPhaseCounts,
    GpuPhaseOutput,
};
use crate::grouped::{grouped_seeding_kernel, DeviceGroupIndex};
use crate::grouping::plan_rounds;
use crate::pipeline::{overlap_blocks_depth, schedule, BlockTiming, PipelineSchedule};
use bio_seq::{DbBlock, Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::report::{Alignment, PhaseTimes, SearchReport};
use blast_cpu::search::SearchEngine;
use gpu_sim::{DeviceConfig, FaultCtx, FaultInjector, KernelStats, KernelWorkspace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing summary of one cuBLASTP search (figure inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CuBlastpTiming {
    /// Simulated GPU kernel time (the paper's "critical phases").
    pub gpu_ms: f64,
    /// Modelled host→device transfer time.
    pub h2d_ms: f64,
    /// Modelled device→host transfer time.
    pub d2h_ms: f64,
    /// Measured CPU gapped-extension time.
    pub gapped_ms: f64,
    /// Measured CPU traceback time.
    pub traceback_ms: f64,
    /// Setup + ranking + output ("Other" in Fig. 19d).
    pub other_ms: f64,
    /// Wall-clock of the CPU phase (gapped + traceback) summed over
    /// blocks — the denominator of the Fig. 13 strong-scaling study.
    pub cpu_wall_ms: f64,
    /// Makespan with the Fig. 12 overlap.
    pub overlapped_ms: f64,
    /// Makespan without overlap.
    pub serial_ms: f64,
}

impl CuBlastpTiming {
    /// Total reported time: overlapped pipeline plus the serial "other"
    /// work (database read, DFA/PSSM build, final output).
    pub fn total_ms(&self) -> f64 {
        self.overlapped_ms + self.other_ms
    }

    /// The paper's "critical phases" time: the GPU kernels.
    pub fn critical_ms(&self) -> f64 {
        self.gpu_ms
    }
}

/// What the recovery policy had to do to complete a search (see
/// DESIGN.md §3.3). All zeros on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Device faults observed across all blocks and attempts.
    pub faults: u64,
    /// Block launches retried after a transient fault.
    pub retries: u64,
    /// Blocks re-run on the CPU degradation path.
    pub degraded_blocks: u64,
    /// Blocks whose *gapped* device phase fell back to the CPU tail
    /// (`--gapped-backend gpu` only; the hit-path kernels still ran).
    #[serde(default)]
    pub degraded_gapped: u64,
    /// Host wall-clock spent on the retry path, in microseconds: failed
    /// launch attempts, workspace resets and backoff sleeps. Separated
    /// from compute so `--phase-table` can report retry cost distinctly
    /// instead of folding it into phase times.
    #[serde(default)]
    pub retry_wait_us: u64,
    /// Host wall-clock this query spent queued behind earlier work before
    /// its search started, in microseconds. Set by the batch drivers and
    /// the serving layer; zero for a standalone search.
    #[serde(default)]
    pub queue_wait_us: u64,
}

impl RecoveryReport {
    /// True when the search completed without touching the recovery path.
    /// Wait telemetry (`queue_wait_us`, `retry_wait_us`) does not count:
    /// a query that merely queued behind a batch is still clean.
    pub fn is_clean(&self) -> bool {
        self.faults == 0
            && self.retries == 0
            && self.degraded_blocks == 0
            && self.degraded_gapped == 0
    }

    /// Fold another report into this one (batch drivers, the serving
    /// layer, and the sharded engine sum recovery telemetry per query).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.faults += other.faults;
        self.retries += other.retries;
        self.degraded_blocks += other.degraded_blocks;
        self.degraded_gapped += other.degraded_gapped;
        self.retry_wait_us += other.retry_wait_us;
        self.queue_wait_us += other.queue_wait_us;
    }
}

/// Progress notification for one completed database block, delivered to
/// [`SearchHooks::on_block`] from the CPU side of the pipeline as soon as
/// the block's tail finishes — the serving layer streams these to clients
/// incrementally instead of waiting for the whole search.
#[derive(Debug)]
pub struct BlockProgress<'a> {
    /// Database block index (pipeline order).
    pub block: u32,
    /// Total database blocks in this search.
    pub blocks_total: u32,
    /// This block's alignments, pre-merge and pre-ranking. Hits from
    /// different blocks never alias, so a consumer can accumulate these
    /// and reach the exact final report (minus `finalize` ranking).
    pub partial: &'a SearchReport,
}

/// Per-search hooks for the serving layer (see DESIGN.md §3.8):
/// cooperative cancellation polled at block boundaries, and an optional
/// per-block streaming callback. [`SearchHooks::default`] is inert — the
/// plain [`CuBlastp::search_resident`] path uses it and pays nothing.
#[derive(Default)]
pub struct SearchHooks<'a> {
    /// Polled between database blocks and at every recovery retry; when it
    /// trips, the search stops at the next checkpoint and returns
    /// [`SearchError::DeadlineExceeded`] with partial-phase telemetry.
    pub cancel: CancelToken,
    /// Called on the consumer thread after each block's CPU tail, with
    /// that block's partial report. Must be cheap; the pipeline blocks on
    /// it.
    pub on_block: Option<&'a (dyn Fn(BlockProgress<'_>) + Sync)>,
}

impl SearchHooks<'_> {
    fn deadline_error(&self, blocks_completed: u32, blocks_total: u32) -> SearchError {
        SearchError::DeadlineExceeded {
            elapsed_ms: self.cancel.elapsed_ms(),
            blocks_completed,
            blocks_total,
        }
    }
}

/// Result of a cuBLASTP search.
#[derive(Debug)]
pub struct CuBlastpResult {
    /// Ranked hit list — identical to the CPU reference.
    pub report: SearchReport,
    /// Per-kernel stats merged across database blocks, in pipeline order.
    pub kernels: Vec<KernelStats>,
    /// Hit/extension counters summed across blocks.
    pub counts: GpuPhaseCounts,
    /// Timing summary.
    pub timing: CuBlastpTiming,
    /// Pipeline schedule details.
    pub pipeline: PipelineSchedule,
    /// Per-block stage times in pipeline order — the raw schedule input,
    /// kept so batch drivers can chain several queries into one timeline.
    pub block_timings: Vec<BlockTiming>,
    /// What the fault-recovery policy did (all zeros when fault-free).
    pub recovery: RecoveryReport,
}

impl CuBlastpResult {
    /// Stats of one kernel by (partial) name.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name.contains(name))
    }
}

/// A configured cuBLASTP searcher for one query.
pub struct CuBlastp {
    /// Shared query state (PSSM, DFA, cutoffs) — also used by the CPU
    /// phases.
    pub engine: SearchEngine,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Pipeline configuration.
    pub config: CuBlastpConfig,
    /// Pooled hit-path scratch, reused across database blocks and across
    /// searches. Batch drivers share one workspace between all queries of
    /// a stream, so after warm-up the hot path performs zero allocations
    /// (see [`KernelWorkspace`]).
    pub workspace: Arc<KernelWorkspace>,
    /// Fault injector consulted at every device fault site. Defaults to
    /// disarmed (never fires); tests and chaos runs arm it with a
    /// [`gpu_sim::FaultPlan`].
    pub injector: Arc<FaultInjector>,
    /// This query's index in a batch stream (0 standalone) — the `query`
    /// coordinate fault specs can scope to.
    pub stream_index: u32,
    query_device: DeviceQuery,
    setup_ms: f64,
}

impl CuBlastp {
    /// Build the searcher: constructs the DFA, PSSM and cutoffs (counted
    /// as "other" time, as the paper does) and uploads the query-side
    /// structures.
    pub fn new(
        query: Sequence,
        params: SearchParams,
        config: CuBlastpConfig,
        device: DeviceConfig,
        db: &SequenceDb,
    ) -> Self {
        Self::with_db_stats(query, params, config, device, db.total_residues(), db.len())
    }

    /// [`new`](Self::new) with explicit database statistics instead of the
    /// database itself — the sharded engine's constructor (DESIGN.md
    /// §3.10). Passing the *global* database's residue and sequence totals
    /// makes every cutoff and E-value identical to a single-database run
    /// while the searches themselves only ever touch shard-local
    /// [`SequenceDb`]s, which is exactly the statistics distribution
    /// mpiBLAST performs for its workers.
    pub fn with_db_stats(
        query: Sequence,
        params: SearchParams,
        config: CuBlastpConfig,
        device: DeviceConfig,
        db_residues: usize,
        db_sequences: usize,
    ) -> Self {
        let t0 = Instant::now();
        let setup_span = obs::span("query_setup", "host");
        let engine = SearchEngine::with_db_stats(query, params, db_residues, db_sequences);
        let query_device = DeviceQuery::upload(engine.dfa.clone(), engine.pssm.clone());
        drop(setup_span);
        let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
        Self {
            engine,
            device,
            config,
            workspace: Arc::new(KernelWorkspace::new()),
            injector: Arc::new(FaultInjector::none()),
            stream_index: 0,
            query_device,
            setup_ms,
        }
    }

    /// Search the database: flatten it into device layout once, then run
    /// the pipeline against the resident copy (charging the upload).
    pub fn search(&self, db: &SequenceDb) -> Result<CuBlastpResult, SearchError> {
        let dev_db = DeviceDb::upload(db, self.config.db_block_size);
        self.search_resident(db, &dev_db, true)
    }

    /// Run one block's GPU phase under the recovery policy: retry
    /// transient faults (workspace reset + linear backoff between
    /// attempts), degrade permanent or retry-exhausted ones to the CPU
    /// reference path when the policy allows, and fail the search with a
    /// [`SearchError::Device`] otherwise.
    fn run_block_recovered(
        &self,
        dev_block: &DeviceDbBlock,
        block_idx: u32,
        blocks_total: u32,
        cancel: &CancelToken,
    ) -> Result<(GpuPhaseOutput, RecoveryReport), SearchError> {
        let ctx = FaultCtx {
            query: self.stream_index,
            block: block_idx,
        };
        let policy = self.config.recovery;
        let mut recovery = RecoveryReport::default();
        let mut attempts = 0u32;
        let final_err = loop {
            attempts += 1;
            // A retry is a fresh launch the deadline must cover: poll the
            // token so an expired query stops retrying and frees its slot.
            if attempts > 1 && cancel.check() {
                return Err(SearchError::DeadlineExceeded {
                    elapsed_ms: cancel.elapsed_ms(),
                    blocks_completed: block_idx,
                    blocks_total,
                });
            }
            // Re-launches after a fault get their own span, so retry storms
            // are visible as repeated `block_retry` lanes in the trace.
            let _retry_span = if attempts > 1 {
                obs::span("block_retry", "recovery")
                    .with_block(block_idx)
                    .with_query(self.stream_index)
                    .with_arg("attempt", attempts as f64)
            } else {
                obs::PhaseSpan::inert()
            };
            let t_attempt = Instant::now();
            match run_gpu_phase(
                &self.device,
                &self.config,
                &self.query_device,
                dev_block,
                &self.engine.params,
                &self.workspace,
                &self.injector,
                ctx,
            ) {
                Ok(out) => return Ok((out, recovery)),
                Err(e) => {
                    recovery.faults += 1;
                    obs::counter("recovery_faults_total", &[], 1);
                    if e.is_transient() && attempts < policy.max_attempts {
                        // A retry starts from known-good device state: drop
                        // pooled buffers the failed launch may have left
                        // inconsistent, then back off linearly.
                        recovery.retries += 1;
                        obs::counter("recovery_retries_total", &[], 1);
                        self.workspace.reset();
                        if policy.backoff_ms > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(
                                policy.backoff_ms * attempts as f64 / 1e3,
                            ));
                        }
                        // The failed attempt, the reset and the backoff are
                        // retry cost, not compute — billed separately so
                        // phase tables stay honest.
                        recovery.retry_wait_us += t_attempt.elapsed().as_micros() as u64;
                        continue;
                    }
                    recovery.retry_wait_us += t_attempt.elapsed().as_micros() as u64;
                    break e;
                }
            }
        };
        if policy.cpu_fallback {
            recovery.degraded_blocks += 1;
            obs::counter("recovery_degraded_blocks_total", &[], 1);
            let _fb_span = obs::span("cpu_fallback", "recovery")
                .with_block(block_idx)
                .with_query(self.stream_index);
            Ok((self.cpu_fallback_phase(dev_block), recovery))
        } else {
            Err(SearchError::Device {
                source: final_err,
                block: block_idx,
                attempts,
            })
        }
    }

    /// Run the fine-grained device gapped kernel over one block's
    /// extension CSR under the recovery policy (`--gapped-backend gpu`,
    /// DESIGN.md §3.7): transient faults retry with workspace reset and
    /// linear backoff; permanent or retry-exhausted faults degrade *only
    /// this block's gapped phase* back to the CPU tail when the policy
    /// allows (`Ok(None)` — the hit-path kernels' output is already
    /// downloaded and stays valid), and fail the search otherwise.
    fn run_gapped_device_recovered(
        &self,
        dev_block: &DeviceDbBlock,
        extensions: &ExtensionsCsr,
        block_idx: u32,
    ) -> Result<(Option<GappedDeviceOutput>, RecoveryReport), SearchError> {
        let ctx = FaultCtx {
            query: self.stream_index,
            block: block_idx,
        };
        let policy = self.config.recovery;
        let mut recovery = RecoveryReport::default();
        let mut attempts = 0u32;
        let final_err = loop {
            attempts += 1;
            let _retry_span = if attempts > 1 {
                obs::span("gapped_retry", "recovery")
                    .with_block(block_idx)
                    .with_query(self.stream_index)
                    .with_arg("attempt", attempts as f64)
            } else {
                obs::PhaseSpan::inert()
            };
            let t_attempt = Instant::now();
            let run = {
                let _span = obs::span("gapped_device", "gpu")
                    .with_block(block_idx)
                    .with_query(self.stream_index);
                gapped_fine_kernel(
                    &self.device,
                    &self.config,
                    &self.query_device,
                    self.engine.query.residues(),
                    dev_block,
                    extensions,
                    &self.engine.params,
                    self.engine.cutoffs.gapped_trigger,
                    self.engine.cutoffs.report_cutoff,
                    &self.workspace,
                    &self.injector,
                    ctx,
                )
            };
            match run {
                Ok(out) => {
                    if obs::state() != 0 {
                        let sim_ms = out.stats.time_ms(&self.device);
                        obs::modelled(
                            "gpu (modelled)",
                            "gapped_extension_fine",
                            sim_ms,
                            Some(block_idx),
                            None,
                        );
                        obs::observe("kernel_sim_ms", &[("kernel", FINE_GAPPED_KERNEL)], sim_ms);
                    }
                    return Ok((Some(out), recovery));
                }
                Err(e) => {
                    recovery.faults += 1;
                    obs::counter("recovery_faults_total", &[], 1);
                    if e.is_transient() && attempts < policy.max_attempts {
                        recovery.retries += 1;
                        obs::counter("recovery_retries_total", &[], 1);
                        self.workspace.reset();
                        if policy.backoff_ms > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(
                                policy.backoff_ms * attempts as f64 / 1e3,
                            ));
                        }
                        recovery.retry_wait_us += t_attempt.elapsed().as_micros() as u64;
                        continue;
                    }
                    recovery.retry_wait_us += t_attempt.elapsed().as_micros() as u64;
                    break e;
                }
            }
        };
        if policy.cpu_fallback {
            recovery.degraded_gapped += 1;
            obs::counter("recovery_degraded_gapped_total", &[], 1);
            Ok((None, recovery))
        } else {
            Err(SearchError::Device {
                source: final_err,
                block: block_idx,
                attempts,
            })
        }
    }

    /// Run the gapped backend for one block whose hit phase is done:
    /// under [`GappedBackend::Gpu`] the fine kernel produces the block's
    /// alignments on the device (its stats join `out.kernels` as the 6th
    /// entry — zeroed when the gapped phase degraded — and its alignment
    /// download joins `out.download_bytes`); under [`GappedBackend::Cpu`]
    /// this is a no-op and the CPU tail owns the gapped phase.
    fn attach_gapped_backend(
        &self,
        dev_block: &DeviceDbBlock,
        out: &mut GpuPhaseOutput,
        recovery: &mut RecoveryReport,
        block_idx: u32,
    ) -> Result<Option<Vec<Vec<Alignment>>>, SearchError> {
        if self.config.gapped_backend != GappedBackend::Gpu {
            return Ok(None);
        }
        let (dev_out, gr) =
            self.run_gapped_device_recovered(dev_block, &out.extensions, block_idx)?;
        recovery.absorb(&gr);
        match dev_out {
            Some(g) => {
                out.download_bytes += g.download_bytes;
                out.kernels.push(g.stats);
                Ok(Some(g.alignments))
            }
            None => {
                // A zeroed 6th entry keeps the positional per-kernel merge
                // aligned across blocks; `None` routes this block's tail to
                // the CPU gapped phase (bit-identical by construction).
                out.kernels.push(KernelStats::new(FINE_GAPPED_KERNEL));
                Ok(None)
            }
        }
    }

    /// Degradation path: reproduce the GPU phase for one block on the CPU
    /// reference scan (`blast_cpu::hit`). The extension records — and so
    /// every downstream alignment — are bit-identical to what the kernels
    /// produce (the equivalence the `extensions_match_cpu_reference` test
    /// pins down); only the performance counters differ (zeroed kernel
    /// stats: the block did no simulated GPU work).
    fn cpu_fallback_phase(&self, db: &DeviceDbBlock) -> GpuPhaseOutput {
        let p = &self.engine.params;
        let mut scratch = blast_cpu::hit::DiagonalScratch::new(0);
        let mut stats = blast_cpu::hit::HitStats::default();
        let mut stream = Vec::new();
        for i in 0..db.num_seqs() {
            blast_cpu::hit::scan_subject_mode(
                &self.query_device.dfa,
                &self.query_device.pssm,
                db.seq(i),
                i as u32,
                p.two_hit,
                p.two_hit_window as i64,
                p.xdrop_ungapped,
                &mut scratch,
                &mut stream,
                &mut stats,
            );
        }
        // The GPU phase emits each subject's records sorted by the packed
        // hit key; the same order here keeps the CSR bit-identical.
        stream.sort_by_key(|e| (e.seq_id, e.s_start, e.q_start, e.len));
        let n_ext = stream.len() as u64;
        let download_bytes = n_ext * std::mem::size_of::<blast_cpu::ungapped::UngappedExt>() as u64;
        let extension_kernel_name = match self.config.extension {
            ExtensionStrategy::Diagonal => "ungapped_extension_diagonal",
            ExtensionStrategy::Hit => "ungapped_extension_hit",
            ExtensionStrategy::Window => "ungapped_extension_window",
        };
        GpuPhaseOutput {
            extensions: ExtensionsCsr::from_stream(stream, db.num_seqs()),
            // Zeroed stats under the standard names keep the per-kernel
            // merge across blocks aligned.
            kernels: [
                "hit_detection",
                "hit_assembling",
                "hit_sorting",
                "hit_filtering",
                extension_kernel_name,
            ]
            .into_iter()
            .map(KernelStats::new)
            .collect(),
            counts: GpuPhaseCounts {
                hits: stats.hits,
                filtered: stats.triggers,
                extensions: n_ext,
                redundant: 0,
            },
            download_bytes,
        }
    }

    /// CPU tail for one block: gapped extension + traceback over the
    /// block's extension CSR on the shared pool, with the Fig. 13
    /// multicore wall-clock model and the phase's metrics. Shared between
    /// the per-query pipeline and the grouped-seeding member tails.
    fn cpu_finish_block(
        &self,
        db: &SequenceDb,
        base: usize,
        csr: &ExtensionsCsr,
    ) -> (SearchReport, PhaseTimes, f64) {
        let mut cpu_span = obs::span("cpu_phase", "cpu").with_query(self.stream_index);
        let mut times = PhaseTimes::default();
        let partials: Vec<(SearchReport, PhaseTimes)> =
            blast_cpu::search::shared_pool().install(|| {
                (0..csr.num_seqs())
                    .into_par_iter()
                    .filter(|&local| !csr.seq(local).is_empty())
                    .map(|local| {
                        let idx = base + local;
                        let mut report = SearchReport::default();
                        let mut t = PhaseTimes::default();
                        self.engine.finish_subject(
                            idx,
                            &db.sequences()[idx],
                            csr.seq(local),
                            &mut report,
                            Some(&mut t),
                        );
                        (report, t)
                    })
                    .collect()
            });
        let mut report = SearchReport::default();
        for (partial, t) in partials {
            report.hits.extend(partial.hits);
            times.add(&t);
        }
        // Modelled multicore wall-clock: summed per-subject phase time
        // over the Fig. 13 scaling curve.
        let cpu_scale = 1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
        let gapped_ms = times.gapped.as_secs_f64() * 1e3 * cpu_scale;
        let traceback_ms = times.traceback.as_secs_f64() * 1e3 * cpu_scale;
        let cpu_wall_ms = gapped_ms + traceback_ms;
        if obs::state() != 0 {
            cpu_span.set_arg("gapped_ms", gapped_ms);
            cpu_span.set_arg("traceback_ms", traceback_ms);
            // The two CPU sub-phases interleave per subject on the pool,
            // so their wall-clocks are modelled lanes (like the GPU
            // kernels), while `cpu_phase` above is the measured host span.
            let q = Some(self.stream_index);
            obs::modelled(
                "cpu tail (modelled)",
                "gapped_extension",
                gapped_ms,
                None,
                q,
            );
            obs::modelled("cpu tail (modelled)", "traceback", traceback_ms, None, q);
            obs::observe("gapped_ms", &[], gapped_ms);
            obs::observe("traceback_ms", &[], traceback_ms);
            obs::counter("alignments_total", &[], report.hits.len() as u64);
        }
        drop(cpu_span);
        (report, times, cpu_wall_ms)
    }

    /// CPU reporting tail for one block whose gapped extension *and*
    /// traceback already ran on the device (`--gapped-backend gpu`):
    /// statistics and e-value filtering over the downloaded alignments
    /// only. Returns the block report and the measured host wall-clock of
    /// the reporting pass (the CPU lane all but vanishes — the gapped
    /// work now shows up in the block's kernel time instead).
    fn cpu_report_block(
        &self,
        db: &SequenceDb,
        base: usize,
        alignments: &[Vec<Alignment>],
    ) -> (SearchReport, f64) {
        let t0 = Instant::now();
        let cpu_span = obs::span("cpu_report", "cpu").with_query(self.stream_index);
        let mut report = SearchReport::default();
        for (local, aligns) in alignments.iter().enumerate() {
            if aligns.is_empty() {
                continue;
            }
            let idx = base + local;
            self.engine
                .report_from_alignments(idx, &db.sequences()[idx], aligns, &mut report);
        }
        if obs::state() != 0 {
            obs::counter("alignments_total", &[], report.hits.len() as u64);
        }
        drop(cpu_span);
        (report, t0.elapsed().as_secs_f64() * 1e3)
    }

    /// Finish a search whose hit detection already happened: one demuxed
    /// [`BinnedHits`] arena per database block (this query's slice of a
    /// grouped seeding pass) runs through kernels 2–5 and the CPU tail.
    ///
    /// The per-member `hit_detection` stats are zeroed — the grouped pass
    /// is a round-level cost accounted once by the batch driver, not
    /// re-billed to each member. Device faults on a member's tail degrade
    /// straight to the CPU reference path when the policy allows (the
    /// binned arena is consumed by the failed tail, so the retry path of
    /// the per-query driver does not apply) and fail the member otherwise.
    fn search_resident_prebinned(
        &self,
        db: &SequenceDb,
        dev_db: &DeviceDb,
        binned: Vec<BinnedHits>,
    ) -> Result<CuBlastpResult, SearchError> {
        let _search_span = obs::span("search", "host").with_query(self.stream_index);
        self.config.validate()?;
        let device = self.device;
        debug_assert_eq!(binned.len(), dev_db.blocks().len());

        let mut report = SearchReport::default();
        let mut kernels: Vec<KernelStats> = Vec::new();
        let mut counts = GpuPhaseCounts::default();
        let mut timings: Vec<BlockTiming> = Vec::new();
        let mut timing = CuBlastpTiming::default();
        let mut recovery_total = RecoveryReport::default();
        for ((idx, (block, dev_block)), member_bins) in
            dev_db.blocks().iter().enumerate().zip(binned)
        {
            let ctx = FaultCtx {
                query: self.stream_index,
                block: idx as u32,
            };
            let tail = {
                let _phase_span = obs::span("gpu_phase", "gpu")
                    .with_block(ctx.block)
                    .with_query(ctx.query);
                check_phase_preamble(&self.injector, ctx).and_then(|()| {
                    run_gpu_tail(
                        &device,
                        &self.config,
                        &self.query_device,
                        dev_block,
                        &self.engine.params,
                        &self.workspace,
                        &self.injector,
                        ctx,
                        member_bins,
                        KernelStats::new("hit_detection"),
                    )
                })
            };
            let mut out = match tail {
                Ok(out) => out,
                Err(e) => {
                    recovery_total.faults += 1;
                    obs::counter("recovery_faults_total", &[], 1);
                    if self.config.recovery.cpu_fallback {
                        recovery_total.degraded_blocks += 1;
                        obs::counter("recovery_degraded_blocks_total", &[], 1);
                        let _fb_span = obs::span("cpu_fallback", "recovery")
                            .with_block(ctx.block)
                            .with_query(ctx.query);
                        self.cpu_fallback_phase(dev_block)
                    } else {
                        return Err(SearchError::Device {
                            source: e,
                            block: ctx.block,
                            attempts: 1,
                        });
                    }
                }
            };
            let aligns =
                self.attach_gapped_backend(dev_block, &mut out, &mut recovery_total, ctx.block)?;
            let d2h = device.transfer_ms(out.download_bytes);
            obs::modelled(
                "pcie d2h (modelled)",
                "d2h_transfer",
                d2h,
                Some(ctx.block),
                Some(self.stream_index),
            );
            obs::counter("pcie_bytes_total", &[("dir", "d2h")], out.download_bytes);
            let (partial, times, cpu_wall_ms) = match aligns {
                Some(a) => {
                    let (partial, wall_ms) = self.cpu_report_block(db, block.start, &a);
                    (partial, PhaseTimes::default(), wall_ms)
                }
                None => self.cpu_finish_block(db, block.start, &out.extensions),
            };
            report.hits.extend(partial.hits);
            counts.hits += out.counts.hits;
            counts.filtered += out.counts.filtered;
            counts.extensions += out.counts.extensions;
            counts.redundant += out.counts.redundant;
            let gpu_ms = out.gpu_ms(&device);
            if kernels.is_empty() {
                kernels = out.kernels;
            } else {
                for (k, o) in kernels.iter_mut().zip(&out.kernels) {
                    k.merge(o);
                }
            }
            timings.push(BlockTiming {
                h2d_ms: 0.0,
                gpu_ms,
                d2h_ms: d2h,
                cpu_ms: cpu_wall_ms,
            });
            timing.gpu_ms += gpu_ms;
            timing.d2h_ms += d2h;
            let cpu_scale =
                1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            timing.gapped_ms += times.gapped.as_secs_f64() * 1e3 * cpu_scale;
            timing.traceback_ms += times.traceback.as_secs_f64() * 1e3 * cpu_scale;
            timing.cpu_wall_ms += cpu_wall_ms;
        }
        let t_merge = Instant::now();
        report.finalize(self.engine.params.max_reported);
        let pipeline = schedule(&timings);
        timing.overlapped_ms = pipeline.overlapped_ms;
        timing.serial_ms = pipeline.serial_ms;
        timing.other_ms = self.setup_ms + t_merge.elapsed().as_secs_f64() * 1e3;

        Ok(CuBlastpResult {
            report,
            kernels,
            counts,
            timing,
            pipeline,
            block_timings: timings,
            recovery: recovery_total,
        })
    }

    /// Search against a database already resident on the device (see
    /// [`DeviceDb`]). `charge_h2d` controls whether the database upload is
    /// billed to this query's timing: a standalone search pays it; in a
    /// batch only the first query does, the rest reuse the resident copy.
    pub fn search_resident(
        &self,
        db: &SequenceDb,
        dev_db: &DeviceDb,
        charge_h2d: bool,
    ) -> Result<CuBlastpResult, SearchError> {
        self.search_resident_with_hooks(db, dev_db, charge_h2d, &SearchHooks::default())
    }

    /// [`search_resident`](Self::search_resident) with serving-layer hooks
    /// (DESIGN.md §3.8): the hooks' [`CancelToken`] is polled at every
    /// block boundary (GPU side, CPU side, and recovery retries) so an
    /// expired query returns [`SearchError::DeadlineExceeded`] between
    /// blocks instead of running to completion, and `on_block` streams
    /// each block's partial report as soon as its CPU tail finishes.
    /// With default hooks this is exactly `search_resident`.
    pub fn search_resident_with_hooks(
        &self,
        db: &SequenceDb,
        dev_db: &DeviceDb,
        charge_h2d: bool,
        hooks: &SearchHooks<'_>,
    ) -> Result<CuBlastpResult, SearchError> {
        let _search_span = obs::span("search", "host").with_query(self.stream_index);
        self.config.validate()?;
        // Record which SIMD instruction set the CPU phases (gapped
        // extension, traceback) dispatch to for this search.
        let dispatch = blast_cpu::simd::dispatch_report();
        obs::gauge("cpu_simd_dispatch", &[("isa", dispatch.active.name())], 1.0);
        // ... and which backend owns the gapped phase (§3.7).
        obs::gauge(
            "gapped_backend",
            &[("backend", self.config.gapped_backend.name())],
            1.0,
        );
        if dev_db.block_size() != self.config.db_block_size {
            return Err(SearchError::config(format!(
                "resident database was partitioned at block size {}, config wants {}",
                dev_db.block_size(),
                self.config.db_block_size
            )));
        }
        let device = self.device;

        let blocks_total = dev_db.blocks().len() as u32;
        // Reject an already-expired request before any device work: the
        // serving layer admits with the deadline clock already running.
        if hooks.cancel.is_cancelled() {
            return Err(hooks.deadline_error(0, blocks_total));
        }

        // GPU side of one block: five kernels over the resident block
        // (six under the device gapped backend), under the recovery
        // policy. `Some(alignments)` routes the block's CPU tail to the
        // reporting-only path.
        type GpuSideOut = Result<
            (
                u32,
                usize,
                GpuPhaseOutput,
                Option<Vec<Vec<Alignment>>>,
                RecoveryReport,
                f64,
                f64,
            ),
            SearchError,
        >;
        let gpu_side =
            |(idx, (block, dev_block)): (usize, (DbBlock, Arc<DeviceDbBlock>))| -> GpuSideOut {
                // Cancellation checkpoint between blocks: an expired query
                // stops launching kernels and frees the device mid-search.
                if hooks.cancel.check() {
                    return Err(hooks.deadline_error(idx as u32, blocks_total));
                }
                let h2d = if charge_h2d {
                    let ms = device.transfer_ms(dev_block.upload_bytes());
                    obs::modelled(
                        "pcie h2d (modelled)",
                        "h2d_transfer",
                        ms,
                        Some(idx as u32),
                        Some(self.stream_index),
                    );
                    obs::counter(
                        "pcie_bytes_total",
                        &[("dir", "h2d")],
                        dev_block.upload_bytes(),
                    );
                    ms
                } else {
                    0.0
                };
                let (mut out, mut recovery) =
                    self.run_block_recovered(&dev_block, idx as u32, blocks_total, &hooks.cancel)?;
                let aligns =
                    self.attach_gapped_backend(&dev_block, &mut out, &mut recovery, idx as u32)?;
                let d2h = device.transfer_ms(out.download_bytes);
                obs::modelled(
                    "pcie d2h (modelled)",
                    "d2h_transfer",
                    d2h,
                    Some(idx as u32),
                    Some(self.stream_index),
                );
                obs::counter("pcie_bytes_total", &[("dir", "d2h")], out.download_bytes);
                Ok((idx as u32, block.start, out, aligns, recovery, h2d, d2h))
            };

        // CPU side of one block: gapped extension + traceback on the
        // shared pool. The pool never oversubscribes the host; wall-clock
        // at the requested thread count is modelled from the summed
        // per-subject times (see `blast_cpu::search::modeled_parallel_speedup`).
        // A failed block skips the CPU phase and carries its error through.
        type CpuSideOut = Result<
            (
                SearchReport,
                PhaseTimes,
                GpuPhaseOutput,
                RecoveryReport,
                f64,
                f64,
                f64,
            ),
            SearchError,
        >;
        let cpu_side = |gpu_out: GpuSideOut| -> CpuSideOut {
            let (idx, base, out, aligns, recovery, h2d, d2h) = gpu_out?;
            // Checkpoint before the CPU tail: the GPU side may be a block
            // ahead, so an expired query skips its remaining host work too.
            if hooks.cancel.check() {
                return Err(hooks.deadline_error(idx, blocks_total));
            }
            let (report, times, cpu_wall_ms) = match aligns {
                // Device gapped backend: the alignments came down the PCIe
                // link already — the CPU lane only does statistics.
                Some(a) => {
                    let (report, wall_ms) = self.cpu_report_block(db, base, &a);
                    (report, PhaseTimes::default(), wall_ms)
                }
                None => self.cpu_finish_block(db, base, &out.extensions),
            };
            if let Some(on_block) = hooks.on_block {
                on_block(BlockProgress {
                    block: idx,
                    blocks_total,
                    partial: &report,
                });
            }
            Ok((report, times, out, recovery, h2d, d2h, cpu_wall_ms))
        };

        // Run the pipeline: actually overlapped (two host threads) when
        // configured, serial otherwise. Functional output is identical.
        let inputs: Vec<(usize, (DbBlock, Arc<DeviceDbBlock>))> = dev_db
            .blocks()
            .iter()
            .map(|(b, d)| (*b, Arc::clone(d)))
            .enumerate()
            .collect();
        let block_results: Vec<CpuSideOut> = if self.config.overlap {
            overlap_blocks_depth(self.config.pipeline.depth, inputs, gpu_side, cpu_side)
                .map_err(SearchError::Pipeline)?
        } else {
            inputs.into_iter().map(|b| cpu_side(gpu_side(b))).collect()
        };

        // Merge.
        let t_merge = Instant::now();
        let merge_span = obs::span("merge", "host").with_query(self.stream_index);
        let mut report = SearchReport::default();
        let mut kernels: Vec<KernelStats> = Vec::new();
        let mut counts = GpuPhaseCounts::default();
        let mut timings: Vec<BlockTiming> = Vec::new();
        let mut timing = CuBlastpTiming::default();
        let mut recovery_total = RecoveryReport::default();
        for block_result in block_results {
            let (partial, times, out, recovery, h2d, d2h, cpu_wall_ms) = block_result?;
            report.hits.extend(partial.hits);
            recovery_total.absorb(&recovery);
            counts.hits += out.counts.hits;
            counts.filtered += out.counts.filtered;
            counts.extensions += out.counts.extensions;
            counts.redundant += out.counts.redundant;
            let gpu_ms = out.gpu_ms(&device);
            let block_kernels = out.kernels;
            if kernels.is_empty() {
                kernels = block_kernels;
            } else {
                for (k, o) in kernels.iter_mut().zip(&block_kernels) {
                    k.merge(o);
                }
            }
            timings.push(BlockTiming {
                h2d_ms: h2d,
                gpu_ms,
                d2h_ms: d2h,
                cpu_ms: cpu_wall_ms,
            });
            timing.gpu_ms += gpu_ms;
            timing.h2d_ms += h2d;
            timing.d2h_ms += d2h;
            let cpu_scale =
                1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            timing.gapped_ms += times.gapped.as_secs_f64() * 1e3 * cpu_scale;
            timing.traceback_ms += times.traceback.as_secs_f64() * 1e3 * cpu_scale;
            timing.cpu_wall_ms += cpu_wall_ms;
        }
        report.finalize(self.engine.params.max_reported);
        let pipeline = schedule(&timings);
        timing.overlapped_ms = pipeline.overlapped_ms;
        timing.serial_ms = pipeline.serial_ms;
        timing.other_ms = self.setup_ms + t_merge.elapsed().as_secs_f64() * 1e3;
        drop(merge_span);
        if obs::metrics_enabled() {
            let checkouts = self.workspace.checkouts();
            let allocs = self.workspace.allocations();
            if checkouts > 0 {
                let hit_rate = 1.0 - allocs as f64 / checkouts as f64;
                obs::gauge("workspace_pool_hit_rate", &[], hit_rate);
            }
        }

        Ok(CuBlastpResult {
            report,
            kernels,
            counts,
            timing,
            pipeline,
            block_timings: timings,
            recovery: recovery_total,
        })
    }
}

/// How a batch detects word hits (see DESIGN.md §3.6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// One hit-detection pass per query through that query's DFA — the
    /// paper's Algorithm 2, and the default.
    #[default]
    PerQuery,
    /// One pass per query *group*: queries are packed into
    /// index-budget-bounded rounds, each round probes a shared
    /// [`blast_core::QueryIndex`] over every database block once, and hits
    /// are demuxed back into per-query arenas. Per-query output is
    /// bit-identical to [`SeedMode::PerQuery`].
    Grouped,
}

/// Default device index budget for [`SeedMode::Grouped`], in word →
/// (query, position) entries. Roughly the combined neighbourhood of 16–24
/// typical queries; see DESIGN.md §3.6 for the occupancy trade-off.
pub const DEFAULT_GROUP_BUDGET: usize = 65_536;

/// One grouped seeding round: the group it covered and what its shared
/// index looked like.
#[derive(Debug, Clone, Serialize)]
pub struct RoundReport {
    /// Batch indices covered by this round (contiguous, in input order).
    pub first_query: usize,
    /// Number of group members.
    pub members: usize,
    /// Word → (query, position) entries in the round's index.
    pub index_entries: usize,
    /// Slot-table capacity (power of two).
    pub index_capacity: usize,
    /// Filled fraction of the slot table.
    pub occupancy: f64,
    /// Modelled H2D payload of the index upload.
    pub index_upload_bytes: u64,
    /// Simulated time of the round's seeding passes, summed over database
    /// blocks.
    pub seeding_ms: f64,
    /// Database blocks the round passed over.
    pub blocks: usize,
}

impl RoundReport {
    /// Amortized seeding cost: simulated milliseconds per database block
    /// per group member — the quantity `bench --bin grouped_seeding`
    /// sweeps against batch size.
    pub fn seeding_ms_per_block_query(&self) -> f64 {
        if self.blocks == 0 || self.members == 0 {
            0.0
        } else {
            self.seeding_ms / (self.blocks as f64 * self.members as f64)
        }
    }
}

/// What the grouped seeding engine did for a batch. Present on
/// [`BatchOutcome`] exactly when the batch ran with
/// [`SeedMode::Grouped`] — callers (and the CI equivalence job) use it to
/// verify the grouped path actually ran instead of silently falling back.
#[derive(Debug, Clone, Serialize)]
pub struct GroupedReport {
    /// One entry per seeding round, in batch order.
    pub rounds: Vec<RoundReport>,
}

impl GroupedReport {
    /// Total simulated seeding time across rounds and blocks.
    pub fn total_seeding_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.seeding_ms).sum()
    }

    /// Queries covered by the rounds (must equal the batch size).
    pub fn queries_covered(&self) -> usize {
        self.rounds.iter().map(|r| r.members).sum()
    }

    /// Amortized seeding cost over the whole batch: simulated
    /// milliseconds per database block per query.
    pub fn seeding_ms_per_block_query(&self) -> f64 {
        let block_queries: usize = self.rounds.iter().map(|r| r.blocks * r.members).sum();
        if block_queries == 0 {
            0.0
        } else {
            self.total_seeding_ms() / block_queries as f64
        }
    }
}

/// Outcome of a multi-query batch (see [`search_batch`]).
pub struct BatchOutcome {
    /// Per-query results, in input order. A failed (or panicked) query is
    /// an `Err` in its slot; the rest of the batch completes normally.
    pub per_query: Vec<Result<CuBlastpResult, SearchError>>,
    /// Modelled makespan with the database resident on the device: one
    /// pipeline timeline chained over every (query, block) pair, with the
    /// host→device upload paid once for the whole batch.
    pub batch_ms: f64,
    /// Modelled makespan if each query ran standalone, re-uploading the
    /// database and draining the pipeline between queries.
    pub unbatched_ms: f64,
    /// Measured host wall-clock for the whole batch (setup included).
    pub wall_ms: f64,
    /// Grouped seeding telemetry — `Some` exactly when the batch ran with
    /// [`SeedMode::Grouped`], `None` on the per-query path.
    pub grouped: Option<GroupedReport>,
}

impl BatchOutcome {
    /// Fraction of time saved by keeping the database resident.
    pub fn saving(&self) -> f64 {
        if self.unbatched_ms <= 0.0 {
            0.0
        } else {
            1.0 - self.batch_ms / self.unbatched_ms
        }
    }

    /// Modelled batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.batch_ms <= 0.0 {
            0.0
        } else {
            self.per_query.len() as f64 * 1e3 / self.batch_ms
        }
    }

    /// Queries that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.per_query.iter().filter(|r| r.is_ok()).count()
    }

    /// Queries that failed, with their input index and error.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &SearchError)> {
        self.per_query
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }
}

/// Options for a multi-query batch.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Run the queries concurrently on the shared CPU pool. Results stay
    /// in input order and bit-identical to the serial path; only host
    /// wall-clock changes, never the modelled timings.
    pub parallel: bool,
    /// Fault injector shared by every query of the stream (disarmed when
    /// `None`). Specs can scope to a query index with
    /// [`gpu_sim::FaultSpec::on_query`].
    pub injector: Option<Arc<FaultInjector>>,
    /// Hit-detection strategy: per-query DFA passes (default) or grouped
    /// index passes. Per-query output is bit-identical either way.
    pub seed_mode: SeedMode,
    /// Device index budget for [`SeedMode::Grouped`], in word →
    /// (query, position) entries per round. Ignored in per-query mode.
    pub group_budget: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            parallel: false,
            injector: None,
            seed_mode: SeedMode::default(),
            group_budget: DEFAULT_GROUP_BUDGET,
        }
    }
}

/// Search a batch of queries against one database, keeping the database
/// resident on the device so its upload cost amortizes across queries —
/// how real GPU BLAST deployments process query streams (and the NGS
/// workload the paper's introduction motivates). Serial driver; see
/// [`search_batch_parallel`] for the concurrent one.
pub fn search_batch(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(queries, params, config, device, db, BatchOptions::default())
}

/// [`search_batch`] with query setup and searches run concurrently on the
/// shared CPU pool.
pub fn search_batch_parallel(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(
        queries,
        params,
        config,
        device,
        db,
        BatchOptions {
            parallel: true,
            ..Default::default()
        },
    )
}

/// Batch driver. The database is flattened into device layout exactly
/// once ([`DeviceDb`]); every query searches the resident copy, with only
/// the first charged the upload. The batched makespan chains all queries'
/// block timings through one [`schedule`] timeline, so later queries'
/// GPU work overlaps earlier queries' CPU tail across query boundaries.
///
/// Queries are isolated: each runs under [`catch_unwind`], so a poisoned
/// query (malformed state, injected panic) lands as an `Err` in its own
/// `per_query` slot while every other query completes normally.
pub fn search_batch_with(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
    opts: BatchOptions,
) -> BatchOutcome {
    match opts.seed_mode {
        SeedMode::PerQuery => search_batch_per_query(queries, params, config, device, db, opts),
        SeedMode::Grouped => search_batch_grouped(queries, params, config, device, db, opts),
    }
}

/// The per-query batch driver (the default [`SeedMode::PerQuery`] path).
fn search_batch_per_query(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
    opts: BatchOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let dev_db = DeviceDb::upload(db, config.db_block_size);
    // One scratch pool for the whole stream: buffers warmed by early
    // queries serve every later one.
    let workspace = Arc::new(KernelWorkspace::new());

    let run_query = |(i, q): (usize, &Sequence)| -> Result<CuBlastpResult, SearchError> {
        // Time from batch start to this query's own start: scheduler queue
        // wait, surfaced separately from compute in the recovery report.
        let queue_wait_us = t0.elapsed().as_micros() as u64;
        let mut result = catch_unwind(AssertUnwindSafe(|| {
            let _batch_span = obs::span("batch_query", "batch").with_query(i as u32);
            let mut searcher = CuBlastp::new(q.clone(), params, config, device, db);
            searcher.workspace = Arc::clone(&workspace);
            if let Some(inj) = &opts.injector {
                searcher.injector = Arc::clone(inj);
            }
            searcher.stream_index = i as u32;
            searcher.search_resident(db, &dev_db, i == 0)
        }))
        .unwrap_or_else(|payload| {
            Err(SearchError::Pipeline(PipelineError::WorkerPanicked {
                side: "batch query",
                payload: panic_message(payload.as_ref()),
            }))
        });
        if let Ok(r) = &mut result {
            r.recovery.queue_wait_us = queue_wait_us;
            obs::observe("batch_queue_wait_ms", &[], queue_wait_us as f64 / 1e3);
        }
        let outcome = if result.is_ok() { "ok" } else { "err" };
        obs::counter("batch_queries_total", &[("outcome", outcome)], 1);
        result
    };
    let per_query: Vec<Result<CuBlastpResult, SearchError>> = if opts.parallel {
        blast_cpu::search::shared_pool()
            .install(|| queries.par_iter().enumerate().map(run_query).collect())
    } else {
        queries.iter().enumerate().map(run_query).collect()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Upload cost of each resident block, for re-adding H2D to queries
    // that did not pay it when modelling their standalone cost.
    let h2d_per_block: Vec<f64> = dev_db
        .blocks()
        .iter()
        .map(|(_, b)| device.transfer_ms(b.upload_bytes()))
        .collect();

    // With the concurrent driver, query setups (DFA/PSSM build — "other")
    // genuinely run on the pool while earlier queries stream through the
    // pipeline. Model them as work on the serial CPU resource of the
    // timeline — overlapping other queries' device stages but contending
    // with the gapped/traceback tail — at the concurrency the batch
    // actually offers: min(modelled multicore speedup, batch size).
    let setup_scale = if opts.parallel {
        blast_cpu::search::modeled_parallel_speedup(config.cpu_threads)
            .min(queries.len() as f64)
            .max(1.0)
    } else {
        1.0
    };

    let mut stream: Vec<BlockTiming> = Vec::new();
    let mut other_serial = 0.0f64;
    let mut unbatched_ms = 0.0f64;
    // Failed queries contribute nothing to the modelled timelines.
    for (i, r) in per_query.iter().enumerate() {
        let Ok(r) = r else { continue };
        if opts.parallel {
            stream.push(BlockTiming {
                h2d_ms: 0.0,
                gpu_ms: 0.0,
                d2h_ms: 0.0,
                cpu_ms: r.timing.other_ms / setup_scale,
            });
        } else {
            other_serial += r.timing.other_ms;
        }
        stream.extend(&r.block_timings);
        let mut alone = r.block_timings.clone();
        if i > 0 {
            for (t, h) in alone.iter_mut().zip(&h2d_per_block) {
                t.h2d_ms = *h;
            }
        }
        unbatched_ms += schedule(&alone).overlapped_ms + r.timing.other_ms;
    }
    let batch_ms = schedule(&stream).overlapped_ms + other_serial;

    BatchOutcome {
        per_query,
        batch_ms,
        unbatched_ms,
        wall_ms,
        grouped: None,
    }
}

/// The grouped batch driver ([`SeedMode::Grouped`]): pack the batch into
/// index-budget-bounded rounds, run one grouped seeding pass per
/// (round, database block), demux each pass into per-member hit arenas,
/// and finish every member through the unchanged kernels 2–5 + CPU tail.
///
/// Per-query reports are bit-identical to the per-query driver (the demux
/// reproduces each member's hit multiset per arena slot, and downstream
/// sorting is insensitive to within-slot order). The modelled batch
/// timeline charges each seeding pass once per round; the unbatched
/// baseline conservatively charges every member the full pass of its
/// round — i.e. what it would pay running the grouped engine alone.
fn search_batch_grouped(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
    opts: BatchOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let dev_db = DeviceDb::upload(db, config.db_block_size);
    let workspace = Arc::new(KernelWorkspace::new());

    // Query setup (DFA/PSSM build + device upload), isolated per query so
    // a poisoned input cannot take the batch down.
    let mut searchers: Vec<Result<CuBlastp, SearchError>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            catch_unwind(AssertUnwindSafe(|| {
                let mut s = CuBlastp::new(q.clone(), params, config, device, db);
                s.workspace = Arc::clone(&workspace);
                if let Some(inj) = &opts.injector {
                    s.injector = Arc::clone(inj);
                }
                s.stream_index = i as u32;
                s
            }))
            .map_err(|payload| {
                SearchError::Pipeline(PipelineError::WorkerPanicked {
                    side: "batch query setup",
                    payload: panic_message(payload.as_ref()),
                })
            })
        })
        .collect();

    // Round packing over the queries that set up cleanly; failed ones
    // already occupy their per_query slot as errors.
    let ok_idx: Vec<usize> = searchers
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_ok().then_some(i))
        .collect();
    let entry_counts: Vec<usize> = ok_idx
        .iter()
        .map(|&i| match &searchers[i] {
            Ok(s) => s.query_device.dfa.neighborhood().total_entries(),
            Err(_) => unreachable!("ok_idx only holds Ok slots"),
        })
        .collect();
    let rounds = plan_rounds(&entry_counts, opts.group_budget);
    obs::counter("grouped_rounds_total", &[], rounds.len() as u64);

    let num_blocks = dev_db.blocks().len();
    let mut per_query: Vec<Option<Result<CuBlastpResult, SearchError>>> =
        (0..queries.len()).map(|_| None).collect();
    let mut round_reports: Vec<RoundReport> = Vec::with_capacity(rounds.len());
    let mut seeding_rows: Vec<BlockTiming> = Vec::new();
    // Per-round, per-block seeding gpu_ms — re-billed to standalone
    // members by the unbatched model.
    let mut round_block_ms: Vec<Vec<f64>> = Vec::with_capacity(rounds.len());

    for round in &rounds {
        let members: Vec<&CuBlastp> = ok_idx[round.clone()]
            .iter()
            .map(|&i| match &searchers[i] {
                Ok(s) => s,
                Err(_) => unreachable!("ok_idx only holds Ok slots"),
            })
            .collect();
        let member_queries: Vec<&DeviceQuery> = members.iter().map(|s| &s.query_device).collect();

        let group = {
            let _span =
                obs::span("group_index_build", "grouped").with_query(ok_idx[round.start] as u32);
            DeviceGroupIndex::upload(&member_queries)
        };
        let index = group.index();
        obs::gauge("group_index_occupancy", &[], index.occupancy());
        obs::gauge("group_index_entries", &[], index.entries() as f64);
        obs::gauge("group_members", &[], members.len() as f64);
        let index_h2d_ms = device.transfer_ms(group.upload_bytes());

        // One pass over each resident block for the whole round.
        let mut per_member_bins: Vec<Vec<BinnedHits>> = (0..members.len())
            .map(|_| Vec::with_capacity(num_blocks))
            .collect();
        let mut seeding_ms = 0.0f64;
        let mut block_ms = Vec::with_capacity(num_blocks);
        for (idx, (_, dev_block)) in dev_db.blocks().iter().enumerate() {
            let mut k_span = obs::span("grouped_seeding", "kernel").with_block(idx as u32);
            let (bins, stats) =
                grouped_seeding_kernel(&device, &config, &group, dev_block, &workspace);
            let sim_ms = stats.time_ms(&device);
            k_span.set_arg("sim_ms", sim_ms);
            drop(k_span);
            obs::modelled(
                "gpu (modelled)",
                "grouped_seeding",
                sim_ms,
                Some(idx as u32),
                None,
            );
            seeding_ms += sim_ms;
            block_ms.push(sim_ms);
            for (m, b) in bins.into_iter().enumerate() {
                per_member_bins[m].push(b);
            }
            seeding_rows.push(BlockTiming {
                // The first round's first pass rides on the database
                // upload; the index upload is charged to the round's
                // first block row.
                h2d_ms: if idx == 0 { index_h2d_ms } else { 0.0 }
                    + if round_reports.is_empty() {
                        device.transfer_ms(dev_block.upload_bytes())
                    } else {
                        0.0
                    },
                gpu_ms: sim_ms,
                d2h_ms: 0.0,
                cpu_ms: 0.0,
            });
        }
        round_block_ms.push(block_ms);

        round_reports.push(RoundReport {
            first_query: ok_idx[round.start],
            members: members.len(),
            index_entries: index.entries(),
            index_capacity: index.capacity(),
            occupancy: index.occupancy(),
            index_upload_bytes: group.upload_bytes(),
            seeding_ms,
            blocks: num_blocks,
        });

        // Finish each member through kernels 2–5 and the CPU tail,
        // panic-isolated like the per-query driver.
        for (m, bins) in per_member_bins.into_iter().enumerate() {
            let qi = ok_idx[round.start + m];
            let searcher = match &searchers[qi] {
                Ok(s) => s,
                Err(_) => unreachable!("ok_idx only holds Ok slots"),
            };
            let queue_wait_us = t0.elapsed().as_micros() as u64;
            let mut result = catch_unwind(AssertUnwindSafe(|| {
                let _batch_span = obs::span("batch_query", "batch").with_query(qi as u32);
                searcher.search_resident_prebinned(db, &dev_db, bins)
            }))
            .unwrap_or_else(|payload| {
                Err(SearchError::Pipeline(PipelineError::WorkerPanicked {
                    side: "batch query",
                    payload: panic_message(payload.as_ref()),
                }))
            });
            if let Ok(r) = &mut result {
                r.recovery.queue_wait_us = queue_wait_us;
                obs::observe("batch_queue_wait_ms", &[], queue_wait_us as f64 / 1e3);
            }
            let outcome = if result.is_ok() { "ok" } else { "err" };
            obs::counter("batch_queries_total", &[("outcome", outcome)], 1);
            per_query[qi] = Some(result);
        }
    }

    // Fold setup failures back into their input slots.
    for (i, slot) in per_query.iter_mut().enumerate() {
        if slot.is_none() {
            let err = match std::mem::replace(
                &mut searchers[i],
                Err(SearchError::config("slot already drained")),
            ) {
                Err(e) => e,
                Ok(_) => SearchError::config("grouped driver skipped a healthy query"),
            };
            *slot = Some(Err(err));
        }
    }
    let per_query: Vec<Result<CuBlastpResult, SearchError>> = per_query
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                Err(SearchError::config(
                    "grouped driver left a query slot unfilled",
                ))
            })
        })
        .collect();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Modelled timelines. The batch pays each seeding pass once (the
    // seeding rows) and chains every member's tail; a standalone member
    // would pay the database upload plus its round's full seeding passes
    // itself.
    let h2d_per_block: Vec<f64> = dev_db
        .blocks()
        .iter()
        .map(|(_, b)| device.transfer_ms(b.upload_bytes()))
        .collect();
    let mut stream: Vec<BlockTiming> = seeding_rows;
    let mut other_serial = 0.0f64;
    let mut unbatched_ms = 0.0f64;
    for (round_i, round) in rounds.iter().enumerate() {
        for m in 0..round.len() {
            let qi = ok_idx[round.start + m];
            let Ok(r) = &per_query[qi] else { continue };
            other_serial += r.timing.other_ms;
            stream.extend(&r.block_timings);
            let mut alone = r.block_timings.clone();
            for ((t, h), seed) in alone
                .iter_mut()
                .zip(&h2d_per_block)
                .zip(&round_block_ms[round_i])
            {
                t.h2d_ms = *h;
                t.gpu_ms += *seed;
            }
            unbatched_ms += schedule(&alone).overlapped_ms + r.timing.other_ms;
        }
    }
    let batch_ms = schedule(&stream).overlapped_ms + other_serial;

    BatchOutcome {
        per_query,
        batch_ms,
        unbatched_ms,
        wall_ms,
        grouped: Some(GroupedReport {
            rounds: round_reports,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_cpu::search::search_sequential;

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "t",
            num_sequences: 150,
            mean_length: 140,
            homolog_fraction: 0.2,
            seed: 21,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    #[test]
    fn output_identical_to_fsa_blast() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);

        for overlap in [false, true] {
            let cfg = CuBlastpConfig {
                db_block_size: 40,
                grid_blocks: 4,
                warps_per_block: 2,
                overlap,
                cpu_threads: 2,
                ..Default::default()
            };
            let gpu = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db);
            let result = gpu.search(&db).expect("fault-free search");
            assert_eq!(
                result.report.identity_key(),
                cpu.report.identity_key(),
                "overlap = {overlap}"
            );
            assert!(!result.report.hits.is_empty());
            assert!(result.recovery.is_clean());
        }
    }

    #[test]
    fn hit_counters_match_cpu_reference() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);
        let cfg = CuBlastpConfig {
            db_block_size: 64,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, params, cfg, DeviceConfig::k20c(), &db);
        let result = gpu.search(&db).expect("fault-free search");
        assert_eq!(result.counts.hits, cpu.hit_stats.hits);
        assert_eq!(result.counts.extensions, cpu.hit_stats.extensions);
    }

    #[test]
    fn batch_amortizes_database_upload() {
        let (q, db) = workload();
        let queries = vec![q.clone(), make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        assert_eq!(out.per_query.len(), 3);
        assert_eq!(out.succeeded(), 3);
        assert!(out.batch_ms < out.unbatched_ms);
        assert!(out.saving() > 0.0);
        // Per-query results equal standalone searches.
        let standalone = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db)
            .search(&db)
            .expect("fault-free search");
        assert_eq!(
            out.per_query[0]
                .as_ref()
                .expect("query 0")
                .report
                .identity_key(),
            standalone.report.identity_key()
        );
    }

    #[test]
    fn steady_state_searches_are_workspace_allocation_free() {
        // The allocation-free contract of the flat-arena hit path: after a
        // warm-up search, repeat searches check out pooled buffers only —
        // the workspace's cold-miss counter stops moving.
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            overlap: false,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, cfg.db_block_size);
        gpu.search_resident(&db, &dev_db, false).expect("warmup");
        gpu.search_resident(&db, &dev_db, false).expect("warmup");
        let warm_allocs = gpu.workspace.allocations();
        let warm_checkouts = gpu.workspace.checkouts();
        let r = gpu
            .search_resident(&db, &dev_db, false)
            .expect("steady-state search");
        assert!(!r.report.hits.is_empty());
        assert!(
            gpu.workspace.checkouts() > warm_checkouts,
            "the search must actually use the workspace"
        );
        assert_eq!(
            gpu.workspace.allocations(),
            warm_allocs,
            "steady-state search must allocate zero workspace buffers"
        );
    }

    #[test]
    fn timing_fields_are_populated() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let r = gpu.search(&db).expect("fault-free search");
        assert!(r.timing.gpu_ms > 0.0);
        assert!(r.timing.h2d_ms > 0.0);
        assert!(r.timing.overlapped_ms > 0.0);
        assert!(r.timing.overlapped_ms <= r.timing.serial_ms + 1e-9);
        assert_eq!(r.kernels.len(), 5);
        assert!(r.kernel("hit_detection").is_some());
    }

    #[test]
    fn mismatched_block_size_is_a_config_error_not_a_panic() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, 64);
        let err = gpu
            .search_resident(&db, &dev_db, true)
            .expect_err("block-size mismatch must be rejected");
        assert_eq!(err.category(), "config");
    }

    #[test]
    fn transient_fault_retries_to_bit_identical_output() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let clean = CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        )
        .search(&db)
        .expect("fault-free search");

        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::once(FaultSite::KernelLaunch).on_block(1)),
        ));
        let r = faulty.search(&db).expect("transient fault must recover");
        assert_eq!(r.recovery.faults, 1);
        assert_eq!(r.recovery.retries, 1);
        assert_eq!(r.recovery.degraded_blocks, 0);
        assert_eq!(r.report.identity_key(), clean.report.identity_key());
        assert_eq!(r.counts.hits, clean.counts.hits);
        assert_eq!(r.counts.extensions, clean.counts.extensions);
    }

    #[test]
    fn permanent_fault_degrades_to_bit_identical_output() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let clean = CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        )
        .search(&db)
        .expect("fault-free search");

        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::DeviceAlloc).on_block(0)),
        ));
        let r = faulty.search(&db).expect("permanent fault must degrade");
        assert_eq!(r.recovery.degraded_blocks, 1);
        assert_eq!(r.recovery.retries, 0, "permanent faults are not retried");
        assert_eq!(r.report.identity_key(), clean.report.identity_key());
        assert_eq!(r.counts.hits, clean.counts.hits);
        assert_eq!(r.counts.extensions, clean.counts.extensions);
    }

    #[test]
    fn gpu_gapped_backend_is_bit_identical_to_cpu_backend() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu_cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            cpu_threads: 2,
            ..Default::default()
        };
        let cpu = CuBlastp::new(q.clone(), params, cpu_cfg, DeviceConfig::k20c(), &db)
            .search(&db)
            .expect("fault-free search");
        for overlap in [false, true] {
            let cfg = CuBlastpConfig {
                gapped_backend: GappedBackend::Gpu,
                overlap,
                ..cpu_cfg
            };
            let gpu = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db)
                .search(&db)
                .expect("fault-free search");
            assert_eq!(
                gpu.report.identity_key(),
                cpu.report.identity_key(),
                "overlap = {overlap}"
            );
            assert!(gpu.recovery.is_clean());
            // The gapped kernel joins the pipeline as its 6th entry and
            // does real modelled work; the measured CPU gapped lane is
            // gone (its time now lives in gpu_ms).
            assert_eq!(gpu.kernels.len(), 6, "overlap = {overlap}");
            let fine = gpu.kernel("gapped_extension_fine").expect("6th kernel");
            assert!(fine.warp_cycles > 0);
            assert_eq!(gpu.timing.gapped_ms, 0.0);
            assert!(gpu.timing.gpu_ms > cpu.timing.gpu_ms);
            assert!(gpu.timing.d2h_ms > cpu.timing.d2h_ms, "alignment download");
        }
    }

    #[test]
    fn gpu_gapped_transient_fault_retries_to_identical_output() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let (q, db) = workload();
        let params = SearchParams::default();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            gapped_backend: GappedBackend::Gpu,
            ..Default::default()
        };
        let clean = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db)
            .search(&db)
            .expect("fault-free search");
        for site in gpu_sim::FaultSite::GAPPED {
            let mut faulty = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db);
            faulty.injector = Arc::new(FaultInjector::new(
                FaultPlan::none().with(FaultSpec::once(site).on_block(1)),
            ));
            let r = faulty.search(&db).expect("transient fault must recover");
            assert_eq!(r.recovery.faults, 1, "site {}", site.name());
            assert_eq!(r.recovery.retries, 1, "site {}", site.name());
            assert_eq!(r.recovery.degraded_gapped, 0, "site {}", site.name());
            assert_eq!(r.report.identity_key(), clean.report.identity_key());
        }
    }

    #[test]
    fn gpu_gapped_permanent_fault_degrades_gapped_phase_only() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let params = SearchParams::default();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            gapped_backend: GappedBackend::Gpu,
            ..Default::default()
        };
        let clean = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db)
            .search(&db)
            .expect("fault-free search");
        let mut faulty = CuBlastp::new(q, params, cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::GappedLaunch).on_block(0)),
        ));
        let r = faulty.search(&db).expect("gapped fault must degrade");
        assert_eq!(r.recovery.degraded_gapped, 1);
        assert_eq!(
            r.recovery.degraded_blocks, 0,
            "hit-path kernels stay on the device"
        );
        assert_eq!(r.report.identity_key(), clean.report.identity_key());
        // The degraded block contributes a zeroed 6th entry, so the
        // positional merge stays aligned.
        assert_eq!(r.kernels.len(), 6);
    }

    #[test]
    fn fallback_disabled_surfaces_the_device_error() {
        use crate::config::RecoveryPolicy;
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 2,
            recovery: RecoveryPolicy {
                max_attempts: 2,
                backoff_ms: 0.0,
                cpu_fallback: false,
            },
            ..Default::default()
        };
        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::D2h).on_block(1)),
        ));
        let err = faulty
            .search(&db)
            .expect_err("no fallback, permanent fault must fail the search");
        match err {
            SearchError::Device {
                block, attempts, ..
            } => {
                // Transient class: the policy budget of 2 attempts is spent.
                assert_eq!(block, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected device error, got {other:?}"),
        }
    }

    #[test]
    fn grouped_batch_is_bit_identical_to_per_query_batch() {
        let (q, db) = workload();
        let queries = vec![q, make_query(80), make_query(110), make_query(64)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let per_query = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        // One big round, and tiny budgets that force round splits — the
        // report must not depend on the packing.
        for budget in [DEFAULT_GROUP_BUDGET, 1] {
            let grouped = search_batch_with(
                &queries,
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
                BatchOptions {
                    seed_mode: SeedMode::Grouped,
                    group_budget: budget,
                    ..Default::default()
                },
            );
            assert_eq!(grouped.succeeded(), queries.len(), "budget {budget}");
            for (i, (g, p)) in grouped
                .per_query
                .iter()
                .zip(&per_query.per_query)
                .enumerate()
            {
                let (g, p) = (g.as_ref().expect("grouped"), p.as_ref().expect("per-query"));
                assert_eq!(
                    g.report.identity_key(),
                    p.report.identity_key(),
                    "query {i}, budget {budget}"
                );
                assert_eq!(g.counts.hits, p.counts.hits, "query {i}, budget {budget}");
                assert_eq!(
                    g.counts.extensions, p.counts.extensions,
                    "query {i}, budget {budget}"
                );
            }
            let report = grouped.grouped.as_ref().expect("grouped telemetry");
            assert_eq!(report.queries_covered(), queries.len());
            if budget == 1 {
                // An impossible budget degrades to singleton rounds, never
                // to a silent per-query fallback.
                assert_eq!(report.rounds.len(), queries.len());
            } else {
                assert_eq!(report.rounds.len(), 1);
            }
            for r in &report.rounds {
                assert!(r.occupancy > 0.0 && r.occupancy <= 0.5 + f64::EPSILON);
                assert!(r.seeding_ms > 0.0);
                assert!(r.index_upload_bytes > 0);
            }
        }
        assert!(per_query.grouped.is_none());
    }

    #[test]
    fn grouped_batch_with_gpu_gapped_backend_is_identical() {
        // The prebinned member tail must honour the backend too: grouped
        // seeding + device gapped phase vs the plain per-query CPU tail.
        let (q, db) = workload();
        let queries = vec![q, make_query(80), make_query(110)];
        let cpu_cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let reference = search_batch(
            &queries,
            SearchParams::default(),
            cpu_cfg,
            DeviceConfig::k20c(),
            &db,
        );
        let cfg = CuBlastpConfig {
            gapped_backend: GappedBackend::Gpu,
            ..cpu_cfg
        };
        let grouped = search_batch_with(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
            BatchOptions {
                seed_mode: SeedMode::Grouped,
                ..Default::default()
            },
        );
        assert_eq!(grouped.succeeded(), queries.len());
        for (i, (g, p)) in grouped
            .per_query
            .iter()
            .zip(&reference.per_query)
            .enumerate()
        {
            let (g, p) = (g.as_ref().expect("grouped"), p.as_ref().expect("per-query"));
            assert_eq!(
                g.report.identity_key(),
                p.report.identity_key(),
                "query {i}"
            );
            assert_eq!(g.kernels.len(), 6, "query {i}");
            let fine = g.kernel("gapped_extension_fine").expect("6th kernel");
            if i == 0 {
                // The homolog-bearing workload query has real gapped work.
                assert!(fine.warp_cycles > 0);
            }
        }
    }

    #[test]
    fn grouped_round_amortizes_seeding_over_members() {
        let (_, db) = workload();
        let queries: Vec<Sequence> = (0..6).map(|k| make_query(56 + 4 * k)).collect();
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let run = |budget: usize| {
            search_batch_with(
                &queries,
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
                BatchOptions {
                    seed_mode: SeedMode::Grouped,
                    group_budget: budget,
                    ..Default::default()
                },
            )
            .grouped
            .expect("grouped telemetry")
        };
        let one_round = run(DEFAULT_GROUP_BUDGET);
        let singletons = run(1);
        assert_eq!(one_round.rounds.len(), 1);
        assert_eq!(singletons.rounds.len(), queries.len());
        assert!(
            one_round.seeding_ms_per_block_query() * 2.0 < singletons.seeding_ms_per_block_query(),
            "grouping 6 queries must amortize seeding at least 2x: {} vs {}",
            one_round.seeding_ms_per_block_query(),
            singletons.seeding_ms_per_block_query()
        );
    }

    #[test]
    fn grouped_member_fault_degrades_to_identical_output() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let queries = vec![q, make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let clean = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::DeviceAlloc).on_query(1)),
        ));
        let out = search_batch_with(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
            BatchOptions {
                seed_mode: SeedMode::Grouped,
                injector: Some(injector),
                ..Default::default()
            },
        );
        assert_eq!(out.succeeded(), 3);
        let r1 = out.per_query[1].as_ref().expect("degraded, not failed");
        assert!(r1.recovery.degraded_blocks > 0);
        assert_eq!(
            r1.report.identity_key(),
            clean.per_query[1]
                .as_ref()
                .expect("clean")
                .report
                .identity_key()
        );
    }

    #[test]
    fn cancelled_search_returns_typed_deadline_error_with_telemetry() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 2,
            warps_per_block: 2,
            overlap: false,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, cfg.db_block_size);
        let blocks_total = dev_db.blocks().len() as u32;
        assert!(blocks_total >= 2, "workload must span multiple blocks");
        // Trip on the very first checkpoint: no block completes.
        let hooks = SearchHooks {
            cancel: CancelToken::after_checks(1),
            on_block: None,
        };
        let err = gpu
            .search_resident_with_hooks(&db, &dev_db, false, &hooks)
            .expect_err("tripped token must cancel the search");
        match err {
            SearchError::DeadlineExceeded {
                blocks_completed,
                blocks_total: total,
                ..
            } => {
                assert_eq!(blocks_completed, 0);
                assert_eq!(total, blocks_total);
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(err.category(), "deadline");
        // An expired wall-clock deadline cancels before any device work.
        let hooks = SearchHooks {
            cancel: CancelToken::with_deadline(Duration::from_millis(0)),
            on_block: None,
        };
        std::thread::sleep(Duration::from_millis(1));
        let err = gpu
            .search_resident_with_hooks(&db, &dev_db, false, &hooks)
            .expect_err("expired deadline must cancel");
        assert_eq!(err.category(), "deadline");
    }

    #[test]
    fn block_streaming_accumulates_to_the_exact_final_report() {
        use std::sync::Mutex;
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, cfg.db_block_size);
        let streamed: Mutex<Vec<(u32, u32, SearchReport)>> = Mutex::new(Vec::new());
        let on_block = |p: BlockProgress<'_>| {
            streamed.lock().expect("test mutex").push((
                p.block,
                p.blocks_total,
                SearchReport {
                    hits: p.partial.hits.clone(),
                },
            ));
        };
        let hooks = SearchHooks {
            cancel: CancelToken::never(),
            on_block: Some(&on_block),
        };
        let r = gpu
            .search_resident_with_hooks(&db, &dev_db, false, &hooks)
            .expect("fault-free search");
        let streamed = streamed.into_inner().expect("test mutex");
        let blocks_total = dev_db.blocks().len();
        assert_eq!(streamed.len(), blocks_total, "one event per block");
        // Events arrive in pipeline order and accumulate to the final
        // report (modulo finalize's ranking).
        let mut merged = SearchReport::default();
        for (i, (block, total, partial)) in streamed.into_iter().enumerate() {
            assert_eq!(block as usize, i);
            assert_eq!(total as usize, blocks_total);
            merged.hits.extend(partial.hits);
        }
        merged.finalize(gpu.engine.params.max_reported);
        assert_eq!(merged.identity_key(), r.report.identity_key());
    }

    #[test]
    fn batch_queries_report_queue_wait_separately() {
        let (q, db) = workload();
        let queries = vec![q, make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        // Later queries in a serial batch waited behind earlier ones; the
        // wait is telemetry, not a recovery action, so they stay clean.
        let last = out.per_query[2].as_ref().expect("query 2");
        assert!(last.recovery.queue_wait_us > 0);
        assert!(last.recovery.is_clean(), "queue wait does not dirty a run");
    }

    #[test]
    fn poisoned_batch_query_fails_alone() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let queries = vec![q.clone(), make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::HostPanic).on_query(1)),
        ));
        for parallel in [false, true] {
            let out = search_batch_with(
                &queries,
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
                BatchOptions {
                    parallel,
                    injector: Some(Arc::clone(&injector)),
                    ..Default::default()
                },
            );
            assert_eq!(out.per_query.len(), 3, "parallel = {parallel}");
            assert_eq!(out.succeeded(), 2, "parallel = {parallel}");
            let failures: Vec<_> = out.failures().collect();
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].0, 1, "query 1 carries the injected panic");
            assert_eq!(failures[0].1.category(), "pipeline");
            // The surviving queries match their standalone runs.
            let solo = CuBlastp::new(
                queries[2].clone(),
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
            )
            .search(&db)
            .expect("fault-free search");
            assert_eq!(
                out.per_query[2]
                    .as_ref()
                    .expect("query 2")
                    .report
                    .identity_key(),
                solo.report.identity_key()
            );
        }
    }
}
