//! The public cuBLASTP search driver.
//!
//! Orchestrates the whole paper: database blocks stream through the five
//! fine-grained GPU kernels (§3.2–3.5), their extension records cross the
//! modelled PCIe link, and a multicore CPU pool finishes gapped extension
//! and alignment with traceback (§3.6), overlapped block-against-block as
//! in Fig. 12. Output is bit-identical to the FSA-BLAST reference
//! (`blast_cpu::search_sequential`) — the property §4.3 claims and the
//! integration tests enforce.

use crate::config::CuBlastpConfig;
use crate::devicedata::{DeviceDb, DeviceDbBlock, DeviceQuery};
use crate::gpu_phase::{run_gpu_phase, GpuPhaseCounts, GpuPhaseOutput};
use crate::pipeline::{overlap_blocks, schedule, BlockTiming, PipelineSchedule};
use bio_seq::{DbBlock, Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::report::{PhaseTimes, SearchReport};
use blast_cpu::search::SearchEngine;
use gpu_sim::{DeviceConfig, KernelStats, KernelWorkspace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Timing summary of one cuBLASTP search (figure inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CuBlastpTiming {
    /// Simulated GPU kernel time (the paper's "critical phases").
    pub gpu_ms: f64,
    /// Modelled host→device transfer time.
    pub h2d_ms: f64,
    /// Modelled device→host transfer time.
    pub d2h_ms: f64,
    /// Measured CPU gapped-extension time.
    pub gapped_ms: f64,
    /// Measured CPU traceback time.
    pub traceback_ms: f64,
    /// Setup + ranking + output ("Other" in Fig. 19d).
    pub other_ms: f64,
    /// Wall-clock of the CPU phase (gapped + traceback) summed over
    /// blocks — the denominator of the Fig. 13 strong-scaling study.
    pub cpu_wall_ms: f64,
    /// Makespan with the Fig. 12 overlap.
    pub overlapped_ms: f64,
    /// Makespan without overlap.
    pub serial_ms: f64,
}

impl CuBlastpTiming {
    /// Total reported time: overlapped pipeline plus the serial "other"
    /// work (database read, DFA/PSSM build, final output).
    pub fn total_ms(&self) -> f64 {
        self.overlapped_ms + self.other_ms
    }

    /// The paper's "critical phases" time: the GPU kernels.
    pub fn critical_ms(&self) -> f64 {
        self.gpu_ms
    }
}

/// Result of a cuBLASTP search.
pub struct CuBlastpResult {
    /// Ranked hit list — identical to the CPU reference.
    pub report: SearchReport,
    /// Per-kernel stats merged across database blocks, in pipeline order.
    pub kernels: Vec<KernelStats>,
    /// Hit/extension counters summed across blocks.
    pub counts: GpuPhaseCounts,
    /// Timing summary.
    pub timing: CuBlastpTiming,
    /// Pipeline schedule details.
    pub pipeline: PipelineSchedule,
    /// Per-block stage times in pipeline order — the raw schedule input,
    /// kept so batch drivers can chain several queries into one timeline.
    pub block_timings: Vec<BlockTiming>,
}

impl CuBlastpResult {
    /// Stats of one kernel by (partial) name.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name.contains(name))
    }
}

/// A configured cuBLASTP searcher for one query.
pub struct CuBlastp {
    /// Shared query state (PSSM, DFA, cutoffs) — also used by the CPU
    /// phases.
    pub engine: SearchEngine,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Pipeline configuration.
    pub config: CuBlastpConfig,
    /// Pooled hit-path scratch, reused across database blocks and across
    /// searches. Batch drivers share one workspace between all queries of
    /// a stream, so after warm-up the hot path performs zero allocations
    /// (see [`KernelWorkspace`]).
    pub workspace: Arc<KernelWorkspace>,
    query_device: DeviceQuery,
    setup_ms: f64,
}

impl CuBlastp {
    /// Build the searcher: constructs the DFA, PSSM and cutoffs (counted
    /// as "other" time, as the paper does) and uploads the query-side
    /// structures.
    pub fn new(
        query: Sequence,
        params: SearchParams,
        config: CuBlastpConfig,
        device: DeviceConfig,
        db: &SequenceDb,
    ) -> Self {
        let t0 = Instant::now();
        let engine = SearchEngine::new(query, params, db);
        let query_device = DeviceQuery::upload(engine.dfa.clone(), engine.pssm.clone());
        let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
        Self {
            engine,
            device,
            config,
            workspace: Arc::new(KernelWorkspace::new()),
            query_device,
            setup_ms,
        }
    }

    /// Search the database: flatten it into device layout once, then run
    /// the pipeline against the resident copy (charging the upload).
    pub fn search(&self, db: &SequenceDb) -> CuBlastpResult {
        let dev_db = DeviceDb::upload(db, self.config.db_block_size);
        self.search_resident(db, &dev_db, true)
    }

    /// Search against a database already resident on the device (see
    /// [`DeviceDb`]). `charge_h2d` controls whether the database upload is
    /// billed to this query's timing: a standalone search pays it; in a
    /// batch only the first query does, the rest reuse the resident copy.
    pub fn search_resident(
        &self,
        db: &SequenceDb,
        dev_db: &DeviceDb,
        charge_h2d: bool,
    ) -> CuBlastpResult {
        assert_eq!(
            dev_db.block_size(),
            self.config.db_block_size,
            "resident database was partitioned at a different block size"
        );
        let device = self.device;

        // GPU side of one block: five kernels over the resident block.
        let gpu_side =
            |(block, dev_block): (DbBlock, Arc<DeviceDbBlock>)| -> (usize, GpuPhaseOutput, f64, f64) {
                let h2d = if charge_h2d {
                    device.transfer_ms(dev_block.upload_bytes())
                } else {
                    0.0
                };
                let out = run_gpu_phase(
                    &device,
                    &self.config,
                    &self.query_device,
                    &dev_block,
                    &self.engine.params,
                    &self.workspace,
                );
                let d2h = device.transfer_ms(out.download_bytes);
                (block.start, out, h2d, d2h)
            };

        // CPU side of one block: gapped extension + traceback on the
        // shared pool. The pool never oversubscribes the host; wall-clock
        // at the requested thread count is modelled from the summed
        // per-subject times (see `blast_cpu::search::modeled_parallel_speedup`).
        let pool = blast_cpu::search::shared_pool();
        let cpu_side = |(base, out, h2d, d2h): (usize, GpuPhaseOutput, f64, f64)| {
            let t0 = Instant::now();
            let mut times = PhaseTimes::default();
            let csr = &out.extensions;
            let partials: Vec<(SearchReport, PhaseTimes)> = pool.install(|| {
                (0..csr.num_seqs())
                    .into_par_iter()
                    .filter(|&local| !csr.seq(local).is_empty())
                    .map(|local| {
                        let idx = base + local;
                        let mut report = SearchReport::default();
                        let mut t = PhaseTimes::default();
                        self.engine.finish_subject(
                            idx,
                            &db.sequences()[idx],
                            csr.seq(local),
                            &mut report,
                            Some(&mut t),
                        );
                        (report, t)
                    })
                    .collect()
            });
            let mut report = SearchReport::default();
            for (partial, t) in partials {
                report.hits.extend(partial.hits);
                times.add(&t);
            }
            let _measured_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            // Modelled multicore wall-clock: summed per-subject phase time
            // over the Fig. 13 scaling curve.
            let cpu_wall_ms = (times.gapped + times.traceback).as_secs_f64() * 1e3
                / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            (report, times, out, h2d, d2h, cpu_wall_ms)
        };

        // Run the pipeline: actually overlapped (two host threads) when
        // configured, serial otherwise. Functional output is identical.
        let inputs: Vec<(DbBlock, Arc<DeviceDbBlock>)> = dev_db
            .blocks()
            .iter()
            .map(|(b, d)| (*b, Arc::clone(d)))
            .collect();
        let block_results = if self.config.overlap {
            overlap_blocks(inputs, gpu_side, cpu_side)
        } else {
            inputs.into_iter().map(|b| cpu_side(gpu_side(b))).collect()
        };

        // Merge.
        let t_merge = Instant::now();
        let mut report = SearchReport::default();
        let mut kernels: Vec<KernelStats> = Vec::new();
        let mut counts = GpuPhaseCounts::default();
        let mut timings: Vec<BlockTiming> = Vec::new();
        let mut timing = CuBlastpTiming::default();
        for (partial, times, out, h2d, d2h, cpu_wall_ms) in block_results {
            report.hits.extend(partial.hits);
            counts.hits += out.counts.hits;
            counts.filtered += out.counts.filtered;
            counts.extensions += out.counts.extensions;
            counts.redundant += out.counts.redundant;
            let gpu_ms = out.gpu_ms(&device);
            let block_kernels = out.kernels;
            if kernels.is_empty() {
                kernels = block_kernels;
            } else {
                for (k, o) in kernels.iter_mut().zip(&block_kernels) {
                    k.merge(o);
                }
            }
            timings.push(BlockTiming {
                h2d_ms: h2d,
                gpu_ms,
                d2h_ms: d2h,
                cpu_ms: cpu_wall_ms,
            });
            timing.gpu_ms += gpu_ms;
            timing.h2d_ms += h2d;
            timing.d2h_ms += d2h;
            let cpu_scale =
                1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            timing.gapped_ms += times.gapped.as_secs_f64() * 1e3 * cpu_scale;
            timing.traceback_ms += times.traceback.as_secs_f64() * 1e3 * cpu_scale;
            timing.cpu_wall_ms += cpu_wall_ms;
        }
        report.finalize(self.engine.params.max_reported);
        let pipeline = schedule(&timings);
        timing.overlapped_ms = pipeline.overlapped_ms;
        timing.serial_ms = pipeline.serial_ms;
        timing.other_ms = self.setup_ms + t_merge.elapsed().as_secs_f64() * 1e3;

        CuBlastpResult {
            report,
            kernels,
            counts,
            timing,
            pipeline,
            block_timings: timings,
        }
    }
}

/// Outcome of a multi-query batch (see [`search_batch`]).
pub struct BatchOutcome {
    /// Per-query results, in input order.
    pub per_query: Vec<CuBlastpResult>,
    /// Modelled makespan with the database resident on the device: one
    /// pipeline timeline chained over every (query, block) pair, with the
    /// host→device upload paid once for the whole batch.
    pub batch_ms: f64,
    /// Modelled makespan if each query ran standalone, re-uploading the
    /// database and draining the pipeline between queries.
    pub unbatched_ms: f64,
    /// Measured host wall-clock for the whole batch (setup included).
    pub wall_ms: f64,
}

impl BatchOutcome {
    /// Fraction of time saved by keeping the database resident.
    pub fn saving(&self) -> f64 {
        if self.unbatched_ms <= 0.0 {
            0.0
        } else {
            1.0 - self.batch_ms / self.unbatched_ms
        }
    }

    /// Modelled batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.batch_ms <= 0.0 {
            0.0
        } else {
            self.per_query.len() as f64 * 1e3 / self.batch_ms
        }
    }
}

/// Options for a multi-query batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Run the queries concurrently on the shared CPU pool. Results stay
    /// in input order and bit-identical to the serial path; only host
    /// wall-clock changes, never the modelled timings.
    pub parallel: bool,
}

/// Search a batch of queries against one database, keeping the database
/// resident on the device so its upload cost amortizes across queries —
/// how real GPU BLAST deployments process query streams (and the NGS
/// workload the paper's introduction motivates). Serial driver; see
/// [`search_batch_parallel`] for the concurrent one.
pub fn search_batch(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(queries, params, config, device, db, BatchOptions::default())
}

/// [`search_batch`] with query setup and searches run concurrently on the
/// shared CPU pool.
pub fn search_batch_parallel(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(
        queries,
        params,
        config,
        device,
        db,
        BatchOptions { parallel: true },
    )
}

/// Batch driver. The database is flattened into device layout exactly
/// once ([`DeviceDb`]); every query searches the resident copy, with only
/// the first charged the upload. The batched makespan chains all queries'
/// block timings through one [`schedule`] timeline, so later queries'
/// GPU work overlaps earlier queries' CPU tail across query boundaries.
pub fn search_batch_with(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
    opts: BatchOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let dev_db = DeviceDb::upload(db, config.db_block_size);
    // One scratch pool for the whole stream: buffers warmed by early
    // queries serve every later one.
    let workspace = Arc::new(KernelWorkspace::new());

    let run_query = |(i, q): (usize, &Sequence)| -> CuBlastpResult {
        let mut searcher = CuBlastp::new(q.clone(), params, config, device, db);
        searcher.workspace = Arc::clone(&workspace);
        searcher.search_resident(db, &dev_db, i == 0)
    };
    let per_query: Vec<CuBlastpResult> = if opts.parallel {
        blast_cpu::search::shared_pool()
            .install(|| queries.par_iter().enumerate().map(run_query).collect())
    } else {
        queries.iter().enumerate().map(run_query).collect()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Upload cost of each resident block, for re-adding H2D to queries
    // that did not pay it when modelling their standalone cost.
    let h2d_per_block: Vec<f64> = dev_db
        .blocks()
        .iter()
        .map(|(_, b)| device.transfer_ms(b.upload_bytes()))
        .collect();

    // With the concurrent driver, query setups (DFA/PSSM build — "other")
    // genuinely run on the pool while earlier queries stream through the
    // pipeline. Model them as work on the serial CPU resource of the
    // timeline — overlapping other queries' device stages but contending
    // with the gapped/traceback tail — at the concurrency the batch
    // actually offers: min(modelled multicore speedup, batch size).
    let setup_scale = if opts.parallel {
        blast_cpu::search::modeled_parallel_speedup(config.cpu_threads)
            .min(queries.len() as f64)
            .max(1.0)
    } else {
        1.0
    };

    let mut stream: Vec<BlockTiming> = Vec::new();
    let mut other_serial = 0.0f64;
    let mut unbatched_ms = 0.0f64;
    for (i, r) in per_query.iter().enumerate() {
        if opts.parallel {
            stream.push(BlockTiming {
                h2d_ms: 0.0,
                gpu_ms: 0.0,
                d2h_ms: 0.0,
                cpu_ms: r.timing.other_ms / setup_scale,
            });
        } else {
            other_serial += r.timing.other_ms;
        }
        stream.extend(&r.block_timings);
        let mut alone = r.block_timings.clone();
        if i > 0 {
            for (t, h) in alone.iter_mut().zip(&h2d_per_block) {
                t.h2d_ms = *h;
            }
        }
        unbatched_ms += schedule(&alone).overlapped_ms + r.timing.other_ms;
    }
    let batch_ms = schedule(&stream).overlapped_ms + other_serial;

    BatchOutcome {
        per_query,
        batch_ms,
        unbatched_ms,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_cpu::search::search_sequential;

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "t",
            num_sequences: 150,
            mean_length: 140,
            homolog_fraction: 0.2,
            seed: 21,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    #[test]
    fn output_identical_to_fsa_blast() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);

        for overlap in [false, true] {
            let cfg = CuBlastpConfig {
                db_block_size: 40,
                grid_blocks: 4,
                warps_per_block: 2,
                overlap,
                cpu_threads: 2,
                ..Default::default()
            };
            let gpu = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db);
            let result = gpu.search(&db);
            assert_eq!(
                result.report.identity_key(),
                cpu.report.identity_key(),
                "overlap = {overlap}"
            );
            assert!(!result.report.hits.is_empty());
        }
    }

    #[test]
    fn hit_counters_match_cpu_reference() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);
        let cfg = CuBlastpConfig {
            db_block_size: 64,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, params, cfg, DeviceConfig::k20c(), &db);
        let result = gpu.search(&db);
        assert_eq!(result.counts.hits, cpu.hit_stats.hits);
        assert_eq!(result.counts.extensions, cpu.hit_stats.extensions);
    }

    #[test]
    fn batch_amortizes_database_upload() {
        let (q, db) = workload();
        let queries = vec![q.clone(), make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        assert_eq!(out.per_query.len(), 3);
        assert!(out.batch_ms < out.unbatched_ms);
        assert!(out.saving() > 0.0);
        // Per-query results equal standalone searches.
        let standalone =
            CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db).search(&db);
        assert_eq!(
            out.per_query[0].report.identity_key(),
            standalone.report.identity_key()
        );
    }

    #[test]
    fn steady_state_searches_are_workspace_allocation_free() {
        // The allocation-free contract of the flat-arena hit path: after a
        // warm-up search, repeat searches check out pooled buffers only —
        // the workspace's cold-miss counter stops moving.
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            overlap: false,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, cfg.db_block_size);
        gpu.search_resident(&db, &dev_db, false);
        gpu.search_resident(&db, &dev_db, false);
        let warm_allocs = gpu.workspace.allocations();
        let warm_checkouts = gpu.workspace.checkouts();
        let r = gpu.search_resident(&db, &dev_db, false);
        assert!(!r.report.hits.is_empty());
        assert!(
            gpu.workspace.checkouts() > warm_checkouts,
            "the search must actually use the workspace"
        );
        assert_eq!(
            gpu.workspace.allocations(),
            warm_allocs,
            "steady-state search must allocate zero workspace buffers"
        );
    }

    #[test]
    fn timing_fields_are_populated() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let r = gpu.search(&db);
        assert!(r.timing.gpu_ms > 0.0);
        assert!(r.timing.h2d_ms > 0.0);
        assert!(r.timing.overlapped_ms > 0.0);
        assert!(r.timing.overlapped_ms <= r.timing.serial_ms + 1e-9);
        assert_eq!(r.kernels.len(), 5);
        assert!(r.kernel("hit_detection").is_some());
    }
}
