//! The public cuBLASTP search driver.
//!
//! Orchestrates the whole paper: database blocks stream through the five
//! fine-grained GPU kernels (§3.2–3.5), their extension records cross the
//! modelled PCIe link, and a multicore CPU pool finishes gapped extension
//! and alignment with traceback (§3.6), overlapped block-against-block as
//! in Fig. 12. Output is bit-identical to the FSA-BLAST reference
//! (`blast_cpu::search_sequential`) — the property §4.3 claims and the
//! integration tests enforce.

use crate::config::{CuBlastpConfig, ExtensionStrategy};
use crate::devicedata::{DeviceDb, DeviceDbBlock, DeviceQuery};
use crate::error::{panic_message, PipelineError, SearchError};
use crate::gpu_phase::{run_gpu_phase, ExtensionsCsr, GpuPhaseCounts, GpuPhaseOutput};
use crate::pipeline::{overlap_blocks_depth, schedule, BlockTiming, PipelineSchedule};
use bio_seq::{DbBlock, Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::report::{PhaseTimes, SearchReport};
use blast_cpu::search::SearchEngine;
use gpu_sim::{DeviceConfig, FaultCtx, FaultInjector, KernelStats, KernelWorkspace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing summary of one cuBLASTP search (figure inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CuBlastpTiming {
    /// Simulated GPU kernel time (the paper's "critical phases").
    pub gpu_ms: f64,
    /// Modelled host→device transfer time.
    pub h2d_ms: f64,
    /// Modelled device→host transfer time.
    pub d2h_ms: f64,
    /// Measured CPU gapped-extension time.
    pub gapped_ms: f64,
    /// Measured CPU traceback time.
    pub traceback_ms: f64,
    /// Setup + ranking + output ("Other" in Fig. 19d).
    pub other_ms: f64,
    /// Wall-clock of the CPU phase (gapped + traceback) summed over
    /// blocks — the denominator of the Fig. 13 strong-scaling study.
    pub cpu_wall_ms: f64,
    /// Makespan with the Fig. 12 overlap.
    pub overlapped_ms: f64,
    /// Makespan without overlap.
    pub serial_ms: f64,
}

impl CuBlastpTiming {
    /// Total reported time: overlapped pipeline plus the serial "other"
    /// work (database read, DFA/PSSM build, final output).
    pub fn total_ms(&self) -> f64 {
        self.overlapped_ms + self.other_ms
    }

    /// The paper's "critical phases" time: the GPU kernels.
    pub fn critical_ms(&self) -> f64 {
        self.gpu_ms
    }
}

/// What the recovery policy had to do to complete a search (see
/// DESIGN.md §3.3). All zeros on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Device faults observed across all blocks and attempts.
    pub faults: u64,
    /// Block launches retried after a transient fault.
    pub retries: u64,
    /// Blocks re-run on the CPU degradation path.
    pub degraded_blocks: u64,
}

impl RecoveryReport {
    /// True when the search completed without touching the recovery path.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    fn absorb(&mut self, other: &RecoveryReport) {
        self.faults += other.faults;
        self.retries += other.retries;
        self.degraded_blocks += other.degraded_blocks;
    }
}

/// Result of a cuBLASTP search.
#[derive(Debug)]
pub struct CuBlastpResult {
    /// Ranked hit list — identical to the CPU reference.
    pub report: SearchReport,
    /// Per-kernel stats merged across database blocks, in pipeline order.
    pub kernels: Vec<KernelStats>,
    /// Hit/extension counters summed across blocks.
    pub counts: GpuPhaseCounts,
    /// Timing summary.
    pub timing: CuBlastpTiming,
    /// Pipeline schedule details.
    pub pipeline: PipelineSchedule,
    /// Per-block stage times in pipeline order — the raw schedule input,
    /// kept so batch drivers can chain several queries into one timeline.
    pub block_timings: Vec<BlockTiming>,
    /// What the fault-recovery policy did (all zeros when fault-free).
    pub recovery: RecoveryReport,
}

impl CuBlastpResult {
    /// Stats of one kernel by (partial) name.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name.contains(name))
    }
}

/// A configured cuBLASTP searcher for one query.
pub struct CuBlastp {
    /// Shared query state (PSSM, DFA, cutoffs) — also used by the CPU
    /// phases.
    pub engine: SearchEngine,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Pipeline configuration.
    pub config: CuBlastpConfig,
    /// Pooled hit-path scratch, reused across database blocks and across
    /// searches. Batch drivers share one workspace between all queries of
    /// a stream, so after warm-up the hot path performs zero allocations
    /// (see [`KernelWorkspace`]).
    pub workspace: Arc<KernelWorkspace>,
    /// Fault injector consulted at every device fault site. Defaults to
    /// disarmed (never fires); tests and chaos runs arm it with a
    /// [`gpu_sim::FaultPlan`].
    pub injector: Arc<FaultInjector>,
    /// This query's index in a batch stream (0 standalone) — the `query`
    /// coordinate fault specs can scope to.
    pub stream_index: u32,
    query_device: DeviceQuery,
    setup_ms: f64,
}

impl CuBlastp {
    /// Build the searcher: constructs the DFA, PSSM and cutoffs (counted
    /// as "other" time, as the paper does) and uploads the query-side
    /// structures.
    pub fn new(
        query: Sequence,
        params: SearchParams,
        config: CuBlastpConfig,
        device: DeviceConfig,
        db: &SequenceDb,
    ) -> Self {
        let t0 = Instant::now();
        let setup_span = obs::span("query_setup", "host");
        let engine = SearchEngine::new(query, params, db);
        let query_device = DeviceQuery::upload(engine.dfa.clone(), engine.pssm.clone());
        drop(setup_span);
        let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
        Self {
            engine,
            device,
            config,
            workspace: Arc::new(KernelWorkspace::new()),
            injector: Arc::new(FaultInjector::none()),
            stream_index: 0,
            query_device,
            setup_ms,
        }
    }

    /// Search the database: flatten it into device layout once, then run
    /// the pipeline against the resident copy (charging the upload).
    pub fn search(&self, db: &SequenceDb) -> Result<CuBlastpResult, SearchError> {
        let dev_db = DeviceDb::upload(db, self.config.db_block_size);
        self.search_resident(db, &dev_db, true)
    }

    /// Run one block's GPU phase under the recovery policy: retry
    /// transient faults (workspace reset + linear backoff between
    /// attempts), degrade permanent or retry-exhausted ones to the CPU
    /// reference path when the policy allows, and fail the search with a
    /// [`SearchError::Device`] otherwise.
    fn run_block_recovered(
        &self,
        dev_block: &DeviceDbBlock,
        block_idx: u32,
    ) -> Result<(GpuPhaseOutput, RecoveryReport), SearchError> {
        let ctx = FaultCtx {
            query: self.stream_index,
            block: block_idx,
        };
        let policy = self.config.recovery;
        let mut recovery = RecoveryReport::default();
        let mut attempts = 0u32;
        let final_err = loop {
            attempts += 1;
            // Re-launches after a fault get their own span, so retry storms
            // are visible as repeated `block_retry` lanes in the trace.
            let _retry_span = if attempts > 1 {
                obs::span("block_retry", "recovery")
                    .with_block(block_idx)
                    .with_query(self.stream_index)
                    .with_arg("attempt", attempts as f64)
            } else {
                obs::PhaseSpan::inert()
            };
            match run_gpu_phase(
                &self.device,
                &self.config,
                &self.query_device,
                dev_block,
                &self.engine.params,
                &self.workspace,
                &self.injector,
                ctx,
            ) {
                Ok(out) => return Ok((out, recovery)),
                Err(e) => {
                    recovery.faults += 1;
                    obs::counter("recovery_faults_total", &[], 1);
                    if e.is_transient() && attempts < policy.max_attempts {
                        // A retry starts from known-good device state: drop
                        // pooled buffers the failed launch may have left
                        // inconsistent, then back off linearly.
                        recovery.retries += 1;
                        obs::counter("recovery_retries_total", &[], 1);
                        self.workspace.reset();
                        if policy.backoff_ms > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(
                                policy.backoff_ms * attempts as f64 / 1e3,
                            ));
                        }
                        continue;
                    }
                    break e;
                }
            }
        };
        if policy.cpu_fallback {
            recovery.degraded_blocks += 1;
            obs::counter("recovery_degraded_blocks_total", &[], 1);
            let _fb_span = obs::span("cpu_fallback", "recovery")
                .with_block(block_idx)
                .with_query(self.stream_index);
            Ok((self.cpu_fallback_phase(dev_block), recovery))
        } else {
            Err(SearchError::Device {
                source: final_err,
                block: block_idx,
                attempts,
            })
        }
    }

    /// Degradation path: reproduce the GPU phase for one block on the CPU
    /// reference scan (`blast_cpu::hit`). The extension records — and so
    /// every downstream alignment — are bit-identical to what the kernels
    /// produce (the equivalence the `extensions_match_cpu_reference` test
    /// pins down); only the performance counters differ (zeroed kernel
    /// stats: the block did no simulated GPU work).
    fn cpu_fallback_phase(&self, db: &DeviceDbBlock) -> GpuPhaseOutput {
        let p = &self.engine.params;
        let mut scratch = blast_cpu::hit::DiagonalScratch::new(0);
        let mut stats = blast_cpu::hit::HitStats::default();
        let mut stream = Vec::new();
        for i in 0..db.num_seqs() {
            blast_cpu::hit::scan_subject_mode(
                &self.query_device.dfa,
                &self.query_device.pssm,
                db.seq(i),
                i as u32,
                p.two_hit,
                p.two_hit_window as i64,
                p.xdrop_ungapped,
                &mut scratch,
                &mut stream,
                &mut stats,
            );
        }
        // The GPU phase emits each subject's records sorted by the packed
        // hit key; the same order here keeps the CSR bit-identical.
        stream.sort_by_key(|e| (e.seq_id, e.s_start, e.q_start, e.len));
        let n_ext = stream.len() as u64;
        let download_bytes = n_ext * std::mem::size_of::<blast_cpu::ungapped::UngappedExt>() as u64;
        let extension_kernel_name = match self.config.extension {
            ExtensionStrategy::Diagonal => "ungapped_extension_diagonal",
            ExtensionStrategy::Hit => "ungapped_extension_hit",
            ExtensionStrategy::Window => "ungapped_extension_window",
        };
        GpuPhaseOutput {
            extensions: ExtensionsCsr::from_stream(stream, db.num_seqs()),
            // Zeroed stats under the standard names keep the per-kernel
            // merge across blocks aligned.
            kernels: [
                "hit_detection",
                "hit_assembling",
                "hit_sorting",
                "hit_filtering",
                extension_kernel_name,
            ]
            .into_iter()
            .map(KernelStats::new)
            .collect(),
            counts: GpuPhaseCounts {
                hits: stats.hits,
                filtered: stats.triggers,
                extensions: n_ext,
                redundant: 0,
            },
            download_bytes,
        }
    }

    /// Search against a database already resident on the device (see
    /// [`DeviceDb`]). `charge_h2d` controls whether the database upload is
    /// billed to this query's timing: a standalone search pays it; in a
    /// batch only the first query does, the rest reuse the resident copy.
    pub fn search_resident(
        &self,
        db: &SequenceDb,
        dev_db: &DeviceDb,
        charge_h2d: bool,
    ) -> Result<CuBlastpResult, SearchError> {
        let _search_span = obs::span("search", "host").with_query(self.stream_index);
        self.config.validate()?;
        // Record which SIMD instruction set the CPU phases (gapped
        // extension, traceback) dispatch to for this search.
        let dispatch = blast_cpu::simd::dispatch_report();
        obs::gauge("cpu_simd_dispatch", &[("isa", dispatch.active.name())], 1.0);
        if dev_db.block_size() != self.config.db_block_size {
            return Err(SearchError::config(format!(
                "resident database was partitioned at block size {}, config wants {}",
                dev_db.block_size(),
                self.config.db_block_size
            )));
        }
        let device = self.device;

        // GPU side of one block: five kernels over the resident block,
        // under the recovery policy.
        type GpuSideOut = Result<(usize, GpuPhaseOutput, RecoveryReport, f64, f64), SearchError>;
        let gpu_side =
            |(idx, (block, dev_block)): (usize, (DbBlock, Arc<DeviceDbBlock>))| -> GpuSideOut {
                let h2d = if charge_h2d {
                    let ms = device.transfer_ms(dev_block.upload_bytes());
                    obs::modelled(
                        "pcie h2d (modelled)",
                        "h2d_transfer",
                        ms,
                        Some(idx as u32),
                        Some(self.stream_index),
                    );
                    obs::counter(
                        "pcie_bytes_total",
                        &[("dir", "h2d")],
                        dev_block.upload_bytes(),
                    );
                    ms
                } else {
                    0.0
                };
                let (out, recovery) = self.run_block_recovered(&dev_block, idx as u32)?;
                let d2h = device.transfer_ms(out.download_bytes);
                obs::modelled(
                    "pcie d2h (modelled)",
                    "d2h_transfer",
                    d2h,
                    Some(idx as u32),
                    Some(self.stream_index),
                );
                obs::counter("pcie_bytes_total", &[("dir", "d2h")], out.download_bytes);
                Ok((block.start, out, recovery, h2d, d2h))
            };

        // CPU side of one block: gapped extension + traceback on the
        // shared pool. The pool never oversubscribes the host; wall-clock
        // at the requested thread count is modelled from the summed
        // per-subject times (see `blast_cpu::search::modeled_parallel_speedup`).
        // A failed block skips the CPU phase and carries its error through.
        let pool = blast_cpu::search::shared_pool();
        type CpuSideOut = Result<
            (
                SearchReport,
                PhaseTimes,
                GpuPhaseOutput,
                RecoveryReport,
                f64,
                f64,
                f64,
            ),
            SearchError,
        >;
        let cpu_side = |gpu_out: GpuSideOut| -> CpuSideOut {
            let (base, out, recovery, h2d, d2h) = gpu_out?;
            let mut cpu_span = obs::span("cpu_phase", "cpu").with_query(self.stream_index);
            let mut times = PhaseTimes::default();
            let csr = &out.extensions;
            let partials: Vec<(SearchReport, PhaseTimes)> = pool.install(|| {
                (0..csr.num_seqs())
                    .into_par_iter()
                    .filter(|&local| !csr.seq(local).is_empty())
                    .map(|local| {
                        let idx = base + local;
                        let mut report = SearchReport::default();
                        let mut t = PhaseTimes::default();
                        self.engine.finish_subject(
                            idx,
                            &db.sequences()[idx],
                            csr.seq(local),
                            &mut report,
                            Some(&mut t),
                        );
                        (report, t)
                    })
                    .collect()
            });
            let mut report = SearchReport::default();
            for (partial, t) in partials {
                report.hits.extend(partial.hits);
                times.add(&t);
            }
            // Modelled multicore wall-clock: summed per-subject phase time
            // over the Fig. 13 scaling curve.
            let cpu_scale =
                1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            let gapped_ms = times.gapped.as_secs_f64() * 1e3 * cpu_scale;
            let traceback_ms = times.traceback.as_secs_f64() * 1e3 * cpu_scale;
            let cpu_wall_ms = gapped_ms + traceback_ms;
            if obs::state() != 0 {
                cpu_span.set_arg("gapped_ms", gapped_ms);
                cpu_span.set_arg("traceback_ms", traceback_ms);
                // The two CPU sub-phases interleave per subject on the
                // pool, so their wall-clocks are modelled lanes (like the
                // GPU kernels), while `cpu_phase` above is the measured
                // host span.
                let q = Some(self.stream_index);
                obs::modelled(
                    "cpu tail (modelled)",
                    "gapped_extension",
                    gapped_ms,
                    None,
                    q,
                );
                obs::modelled("cpu tail (modelled)", "traceback", traceback_ms, None, q);
                obs::observe("gapped_ms", &[], gapped_ms);
                obs::observe("traceback_ms", &[], traceback_ms);
                obs::counter("alignments_total", &[], report.hits.len() as u64);
            }
            drop(cpu_span);
            Ok((report, times, out, recovery, h2d, d2h, cpu_wall_ms))
        };

        // Run the pipeline: actually overlapped (two host threads) when
        // configured, serial otherwise. Functional output is identical.
        let inputs: Vec<(usize, (DbBlock, Arc<DeviceDbBlock>))> = dev_db
            .blocks()
            .iter()
            .map(|(b, d)| (*b, Arc::clone(d)))
            .enumerate()
            .collect();
        let block_results: Vec<CpuSideOut> = if self.config.overlap {
            overlap_blocks_depth(self.config.pipeline.depth, inputs, gpu_side, cpu_side)
                .map_err(SearchError::Pipeline)?
        } else {
            inputs.into_iter().map(|b| cpu_side(gpu_side(b))).collect()
        };

        // Merge.
        let t_merge = Instant::now();
        let merge_span = obs::span("merge", "host").with_query(self.stream_index);
        let mut report = SearchReport::default();
        let mut kernels: Vec<KernelStats> = Vec::new();
        let mut counts = GpuPhaseCounts::default();
        let mut timings: Vec<BlockTiming> = Vec::new();
        let mut timing = CuBlastpTiming::default();
        let mut recovery_total = RecoveryReport::default();
        for block_result in block_results {
            let (partial, times, out, recovery, h2d, d2h, cpu_wall_ms) = block_result?;
            report.hits.extend(partial.hits);
            recovery_total.absorb(&recovery);
            counts.hits += out.counts.hits;
            counts.filtered += out.counts.filtered;
            counts.extensions += out.counts.extensions;
            counts.redundant += out.counts.redundant;
            let gpu_ms = out.gpu_ms(&device);
            let block_kernels = out.kernels;
            if kernels.is_empty() {
                kernels = block_kernels;
            } else {
                for (k, o) in kernels.iter_mut().zip(&block_kernels) {
                    k.merge(o);
                }
            }
            timings.push(BlockTiming {
                h2d_ms: h2d,
                gpu_ms,
                d2h_ms: d2h,
                cpu_ms: cpu_wall_ms,
            });
            timing.gpu_ms += gpu_ms;
            timing.h2d_ms += h2d;
            timing.d2h_ms += d2h;
            let cpu_scale =
                1.0 / blast_cpu::search::modeled_parallel_speedup(self.config.cpu_threads);
            timing.gapped_ms += times.gapped.as_secs_f64() * 1e3 * cpu_scale;
            timing.traceback_ms += times.traceback.as_secs_f64() * 1e3 * cpu_scale;
            timing.cpu_wall_ms += cpu_wall_ms;
        }
        report.finalize(self.engine.params.max_reported);
        let pipeline = schedule(&timings);
        timing.overlapped_ms = pipeline.overlapped_ms;
        timing.serial_ms = pipeline.serial_ms;
        timing.other_ms = self.setup_ms + t_merge.elapsed().as_secs_f64() * 1e3;
        drop(merge_span);
        if obs::metrics_enabled() {
            let checkouts = self.workspace.checkouts();
            let allocs = self.workspace.allocations();
            if checkouts > 0 {
                let hit_rate = 1.0 - allocs as f64 / checkouts as f64;
                obs::gauge("workspace_pool_hit_rate", &[], hit_rate);
            }
        }

        Ok(CuBlastpResult {
            report,
            kernels,
            counts,
            timing,
            pipeline,
            block_timings: timings,
            recovery: recovery_total,
        })
    }
}

/// Outcome of a multi-query batch (see [`search_batch`]).
pub struct BatchOutcome {
    /// Per-query results, in input order. A failed (or panicked) query is
    /// an `Err` in its slot; the rest of the batch completes normally.
    pub per_query: Vec<Result<CuBlastpResult, SearchError>>,
    /// Modelled makespan with the database resident on the device: one
    /// pipeline timeline chained over every (query, block) pair, with the
    /// host→device upload paid once for the whole batch.
    pub batch_ms: f64,
    /// Modelled makespan if each query ran standalone, re-uploading the
    /// database and draining the pipeline between queries.
    pub unbatched_ms: f64,
    /// Measured host wall-clock for the whole batch (setup included).
    pub wall_ms: f64,
}

impl BatchOutcome {
    /// Fraction of time saved by keeping the database resident.
    pub fn saving(&self) -> f64 {
        if self.unbatched_ms <= 0.0 {
            0.0
        } else {
            1.0 - self.batch_ms / self.unbatched_ms
        }
    }

    /// Modelled batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.batch_ms <= 0.0 {
            0.0
        } else {
            self.per_query.len() as f64 * 1e3 / self.batch_ms
        }
    }

    /// Queries that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.per_query.iter().filter(|r| r.is_ok()).count()
    }

    /// Queries that failed, with their input index and error.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &SearchError)> {
        self.per_query
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }
}

/// Options for a multi-query batch.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Run the queries concurrently on the shared CPU pool. Results stay
    /// in input order and bit-identical to the serial path; only host
    /// wall-clock changes, never the modelled timings.
    pub parallel: bool,
    /// Fault injector shared by every query of the stream (disarmed when
    /// `None`). Specs can scope to a query index with
    /// [`gpu_sim::FaultSpec::on_query`].
    pub injector: Option<Arc<FaultInjector>>,
}

/// Search a batch of queries against one database, keeping the database
/// resident on the device so its upload cost amortizes across queries —
/// how real GPU BLAST deployments process query streams (and the NGS
/// workload the paper's introduction motivates). Serial driver; see
/// [`search_batch_parallel`] for the concurrent one.
pub fn search_batch(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(queries, params, config, device, db, BatchOptions::default())
}

/// [`search_batch`] with query setup and searches run concurrently on the
/// shared CPU pool.
pub fn search_batch_parallel(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
) -> BatchOutcome {
    search_batch_with(
        queries,
        params,
        config,
        device,
        db,
        BatchOptions {
            parallel: true,
            ..Default::default()
        },
    )
}

/// Batch driver. The database is flattened into device layout exactly
/// once ([`DeviceDb`]); every query searches the resident copy, with only
/// the first charged the upload. The batched makespan chains all queries'
/// block timings through one [`schedule`] timeline, so later queries'
/// GPU work overlaps earlier queries' CPU tail across query boundaries.
///
/// Queries are isolated: each runs under [`catch_unwind`], so a poisoned
/// query (malformed state, injected panic) lands as an `Err` in its own
/// `per_query` slot while every other query completes normally.
pub fn search_batch_with(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    db: &SequenceDb,
    opts: BatchOptions,
) -> BatchOutcome {
    let t0 = Instant::now();
    let dev_db = DeviceDb::upload(db, config.db_block_size);
    // One scratch pool for the whole stream: buffers warmed by early
    // queries serve every later one.
    let workspace = Arc::new(KernelWorkspace::new());

    let run_query = |(i, q): (usize, &Sequence)| -> Result<CuBlastpResult, SearchError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _batch_span = obs::span("batch_query", "batch").with_query(i as u32);
            let mut searcher = CuBlastp::new(q.clone(), params, config, device, db);
            searcher.workspace = Arc::clone(&workspace);
            if let Some(inj) = &opts.injector {
                searcher.injector = Arc::clone(inj);
            }
            searcher.stream_index = i as u32;
            searcher.search_resident(db, &dev_db, i == 0)
        }))
        .unwrap_or_else(|payload| {
            Err(SearchError::Pipeline(PipelineError::WorkerPanicked {
                side: "batch query",
                payload: panic_message(payload.as_ref()),
            }))
        });
        let outcome = if result.is_ok() { "ok" } else { "err" };
        obs::counter("batch_queries_total", &[("outcome", outcome)], 1);
        result
    };
    let per_query: Vec<Result<CuBlastpResult, SearchError>> = if opts.parallel {
        blast_cpu::search::shared_pool()
            .install(|| queries.par_iter().enumerate().map(run_query).collect())
    } else {
        queries.iter().enumerate().map(run_query).collect()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Upload cost of each resident block, for re-adding H2D to queries
    // that did not pay it when modelling their standalone cost.
    let h2d_per_block: Vec<f64> = dev_db
        .blocks()
        .iter()
        .map(|(_, b)| device.transfer_ms(b.upload_bytes()))
        .collect();

    // With the concurrent driver, query setups (DFA/PSSM build — "other")
    // genuinely run on the pool while earlier queries stream through the
    // pipeline. Model them as work on the serial CPU resource of the
    // timeline — overlapping other queries' device stages but contending
    // with the gapped/traceback tail — at the concurrency the batch
    // actually offers: min(modelled multicore speedup, batch size).
    let setup_scale = if opts.parallel {
        blast_cpu::search::modeled_parallel_speedup(config.cpu_threads)
            .min(queries.len() as f64)
            .max(1.0)
    } else {
        1.0
    };

    let mut stream: Vec<BlockTiming> = Vec::new();
    let mut other_serial = 0.0f64;
    let mut unbatched_ms = 0.0f64;
    // Failed queries contribute nothing to the modelled timelines.
    for (i, r) in per_query.iter().enumerate() {
        let Ok(r) = r else { continue };
        if opts.parallel {
            stream.push(BlockTiming {
                h2d_ms: 0.0,
                gpu_ms: 0.0,
                d2h_ms: 0.0,
                cpu_ms: r.timing.other_ms / setup_scale,
            });
        } else {
            other_serial += r.timing.other_ms;
        }
        stream.extend(&r.block_timings);
        let mut alone = r.block_timings.clone();
        if i > 0 {
            for (t, h) in alone.iter_mut().zip(&h2d_per_block) {
                t.h2d_ms = *h;
            }
        }
        unbatched_ms += schedule(&alone).overlapped_ms + r.timing.other_ms;
    }
    let batch_ms = schedule(&stream).overlapped_ms + other_serial;

    BatchOutcome {
        per_query,
        batch_ms,
        unbatched_ms,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};
    use blast_cpu::search::search_sequential;

    fn workload() -> (Sequence, SequenceDb) {
        let q = make_query(96);
        let spec = DbSpec {
            name: "t",
            num_sequences: 150,
            mean_length: 140,
            homolog_fraction: 0.2,
            seed: 21,
        };
        (q.clone(), generate_db(&spec, &q).db)
    }

    #[test]
    fn output_identical_to_fsa_blast() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);

        for overlap in [false, true] {
            let cfg = CuBlastpConfig {
                db_block_size: 40,
                grid_blocks: 4,
                warps_per_block: 2,
                overlap,
                cpu_threads: 2,
                ..Default::default()
            };
            let gpu = CuBlastp::new(q.clone(), params, cfg, DeviceConfig::k20c(), &db);
            let result = gpu.search(&db).expect("fault-free search");
            assert_eq!(
                result.report.identity_key(),
                cpu.report.identity_key(),
                "overlap = {overlap}"
            );
            assert!(!result.report.hits.is_empty());
            assert!(result.recovery.is_clean());
        }
    }

    #[test]
    fn hit_counters_match_cpu_reference() {
        let (q, db) = workload();
        let params = SearchParams::default();
        let cpu = search_sequential(&SearchEngine::new(q.clone(), params, &db), &db);
        let cfg = CuBlastpConfig {
            db_block_size: 64,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, params, cfg, DeviceConfig::k20c(), &db);
        let result = gpu.search(&db).expect("fault-free search");
        assert_eq!(result.counts.hits, cpu.hit_stats.hits);
        assert_eq!(result.counts.extensions, cpu.hit_stats.extensions);
    }

    #[test]
    fn batch_amortizes_database_upload() {
        let (q, db) = workload();
        let queries = vec![q.clone(), make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let out = search_batch(
            &queries,
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        );
        assert_eq!(out.per_query.len(), 3);
        assert_eq!(out.succeeded(), 3);
        assert!(out.batch_ms < out.unbatched_ms);
        assert!(out.saving() > 0.0);
        // Per-query results equal standalone searches.
        let standalone = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db)
            .search(&db)
            .expect("fault-free search");
        assert_eq!(
            out.per_query[0]
                .as_ref()
                .expect("query 0")
                .report
                .identity_key(),
            standalone.report.identity_key()
        );
    }

    #[test]
    fn steady_state_searches_are_workspace_allocation_free() {
        // The allocation-free contract of the flat-arena hit path: after a
        // warm-up search, repeat searches check out pooled buffers only —
        // the workspace's cold-miss counter stops moving.
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            overlap: false,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, cfg.db_block_size);
        gpu.search_resident(&db, &dev_db, false).expect("warmup");
        gpu.search_resident(&db, &dev_db, false).expect("warmup");
        let warm_allocs = gpu.workspace.allocations();
        let warm_checkouts = gpu.workspace.checkouts();
        let r = gpu
            .search_resident(&db, &dev_db, false)
            .expect("steady-state search");
        assert!(!r.report.hits.is_empty());
        assert!(
            gpu.workspace.checkouts() > warm_checkouts,
            "the search must actually use the workspace"
        );
        assert_eq!(
            gpu.workspace.allocations(),
            warm_allocs,
            "steady-state search must allocate zero workspace buffers"
        );
    }

    #[test]
    fn timing_fields_are_populated() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let r = gpu.search(&db).expect("fault-free search");
        assert!(r.timing.gpu_ms > 0.0);
        assert!(r.timing.h2d_ms > 0.0);
        assert!(r.timing.overlapped_ms > 0.0);
        assert!(r.timing.overlapped_ms <= r.timing.serial_ms + 1e-9);
        assert_eq!(r.kernels.len(), 5);
        assert!(r.kernel("hit_detection").is_some());
    }

    #[test]
    fn mismatched_block_size_is_a_config_error_not_a_panic() {
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 50,
            ..Default::default()
        };
        let gpu = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        let dev_db = DeviceDb::upload(&db, 64);
        let err = gpu
            .search_resident(&db, &dev_db, true)
            .expect_err("block-size mismatch must be rejected");
        assert_eq!(err.category(), "config");
    }

    #[test]
    fn transient_fault_retries_to_bit_identical_output() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let clean = CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        )
        .search(&db)
        .expect("fault-free search");

        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::once(FaultSite::KernelLaunch).on_block(1)),
        ));
        let r = faulty.search(&db).expect("transient fault must recover");
        assert_eq!(r.recovery.faults, 1);
        assert_eq!(r.recovery.retries, 1);
        assert_eq!(r.recovery.degraded_blocks, 0);
        assert_eq!(r.report.identity_key(), clean.report.identity_key());
        assert_eq!(r.counts.hits, clean.counts.hits);
        assert_eq!(r.counts.extensions, clean.counts.extensions);
    }

    #[test]
    fn permanent_fault_degrades_to_bit_identical_output() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 3,
            warps_per_block: 2,
            ..Default::default()
        };
        let clean = CuBlastp::new(
            q.clone(),
            SearchParams::default(),
            cfg,
            DeviceConfig::k20c(),
            &db,
        )
        .search(&db)
        .expect("fault-free search");

        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::DeviceAlloc).on_block(0)),
        ));
        let r = faulty.search(&db).expect("permanent fault must degrade");
        assert_eq!(r.recovery.degraded_blocks, 1);
        assert_eq!(r.recovery.retries, 0, "permanent faults are not retried");
        assert_eq!(r.report.identity_key(), clean.report.identity_key());
        assert_eq!(r.counts.hits, clean.counts.hits);
        assert_eq!(r.counts.extensions, clean.counts.extensions);
    }

    #[test]
    fn fallback_disabled_surfaces_the_device_error() {
        use crate::config::RecoveryPolicy;
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let cfg = CuBlastpConfig {
            db_block_size: 40,
            grid_blocks: 2,
            recovery: RecoveryPolicy {
                max_attempts: 2,
                backoff_ms: 0.0,
                cpu_fallback: false,
            },
            ..Default::default()
        };
        let mut faulty = CuBlastp::new(q, SearchParams::default(), cfg, DeviceConfig::k20c(), &db);
        faulty.injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::D2h).on_block(1)),
        ));
        let err = faulty
            .search(&db)
            .expect_err("no fallback, permanent fault must fail the search");
        match err {
            SearchError::Device {
                block, attempts, ..
            } => {
                // Transient class: the policy budget of 2 attempts is spent.
                assert_eq!(block, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected device error, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_batch_query_fails_alone() {
        use gpu_sim::{FaultPlan, FaultSite, FaultSpec};
        let (q, db) = workload();
        let queries = vec![q.clone(), make_query(80), make_query(110)];
        let cfg = CuBlastpConfig {
            db_block_size: 60,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::none().with(FaultSpec::permanent(FaultSite::HostPanic).on_query(1)),
        ));
        for parallel in [false, true] {
            let out = search_batch_with(
                &queries,
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
                BatchOptions {
                    parallel,
                    injector: Some(Arc::clone(&injector)),
                },
            );
            assert_eq!(out.per_query.len(), 3, "parallel = {parallel}");
            assert_eq!(out.succeeded(), 2, "parallel = {parallel}");
            let failures: Vec<_> = out.failures().collect();
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].0, 1, "query 1 carries the injected panic");
            assert_eq!(failures[0].1.category(), "pipeline");
            // The surviving queries match their standalone runs.
            let solo = CuBlastp::new(
                queries[2].clone(),
                SearchParams::default(),
                cfg,
                DeviceConfig::k20c(),
                &db,
            )
            .search(&db)
            .expect("fault-free search");
            assert_eq!(
                out.per_query[2]
                    .as_ref()
                    .expect("query 2")
                    .report
                    .identity_key(),
                solo.report.identity_key()
            );
        }
    }
}
