//! The CPU–GPU overlap pipeline (paper §3.6, Fig. 12).
//!
//! The database is processed in blocks. While the GPU runs hit detection
//! and ungapped extension for block *n+1*, the CPU runs gapped extension
//! and traceback for block *n*, and the PCIe bus moves block data in both
//! directions. Two artifacts live here:
//!
//! * [`schedule`] — the analytic four-stage pipeline timeline (H2D → GPU →
//!   D2H → CPU) used by the figures: each stage is a serial resource,
//!   stages of different blocks overlap freely.
//! * [`overlap_blocks`] — a real two-thread executor (crossbeam channel,
//!   bounded to one block in flight) that the search driver uses so the
//!   overlap is not merely modelled but actually happens on the host.

use crossbeam::channel::bounded;
use serde::{Deserialize, Serialize};

/// Per-block stage times in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockTiming {
    /// Host→device transfer.
    pub h2d_ms: f64,
    /// GPU kernels (hit detection … ungapped extension).
    pub gpu_ms: f64,
    /// Device→host transfer of the extension records.
    pub d2h_ms: f64,
    /// CPU gapped extension + traceback.
    pub cpu_ms: f64,
}

/// Result of scheduling a block sequence through the four-stage pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Makespan with overlap (Fig. 12 execution).
    pub overlapped_ms: f64,
    /// Makespan if every stage ran serially (no overlap).
    pub serial_ms: f64,
}

impl PipelineSchedule {
    /// Fraction of serial time hidden by the overlap.
    pub fn saving(&self) -> f64 {
        if self.serial_ms <= 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_ms / self.serial_ms
        }
    }
}

/// Compute the pipeline timeline: classic chained-stage recurrence where
/// each stage is busy with at most one block at a time.
pub fn schedule(blocks: &[BlockTiming]) -> PipelineSchedule {
    let mut h2d_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut d2h_free = 0.0f64;
    let mut cpu_free = 0.0f64;
    let mut serial = 0.0f64;
    for b in blocks {
        h2d_free += b.h2d_ms;
        gpu_free = gpu_free.max(h2d_free) + b.gpu_ms;
        d2h_free = d2h_free.max(gpu_free) + b.d2h_ms;
        cpu_free = cpu_free.max(d2h_free) + b.cpu_ms;
        serial += b.h2d_ms + b.gpu_ms + b.d2h_ms + b.cpu_ms;
    }
    PipelineSchedule {
        overlapped_ms: cpu_free,
        serial_ms: serial,
    }
}

/// Run `producer` (the GPU side) over the inputs on a separate thread and
/// `consumer` (the CPU side) on the calling thread, overlapping them with
/// a bounded channel — the executable counterpart of Fig. 12.
///
/// Outputs arrive at the consumer in input order; results are returned in
/// that order.
pub fn overlap_blocks<I, M, R>(
    inputs: Vec<I>,
    producer: impl Fn(I) -> M + Send,
    mut consumer: impl FnMut(M) -> R,
) -> Vec<R>
where
    I: Send,
    M: Send,
{
    let (tx, rx) = bounded::<M>(1);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for input in inputs {
                let mid = producer(input);
                if tx.send(mid).is_err() {
                    break;
                }
            }
        });
        let mut out = Vec::new();
        for mid in rx {
            out.push(consumer(mid));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn block(h: f64, g: f64, d: f64, c: f64) -> BlockTiming {
        BlockTiming {
            h2d_ms: h,
            gpu_ms: g,
            d2h_ms: d,
            cpu_ms: c,
        }
    }

    #[test]
    fn single_block_has_no_overlap() {
        let s = schedule(&[block(1.0, 5.0, 1.0, 3.0)]);
        assert!((s.overlapped_ms - 10.0).abs() < 1e-9);
        assert!((s.serial_ms - 10.0).abs() < 1e-9);
        assert_eq!(s.saving(), 0.0);
    }

    #[test]
    fn balanced_blocks_pipeline_toward_bottleneck() {
        // 10 equal blocks: makespan ≈ fill latency + 10 × bottleneck stage.
        let blocks: Vec<BlockTiming> = (0..10).map(|_| block(1.0, 5.0, 1.0, 5.0)).collect();
        let s = schedule(&blocks);
        assert!((s.serial_ms - 120.0).abs() < 1e-9);
        // GPU and CPU both 5 ms → steady state ~5 ms per block per stage
        // chain; must be far below serial.
        assert!(s.overlapped_ms < 0.6 * s.serial_ms, "overlap = {s:?}");
        assert!(s.overlapped_ms >= 57.0, "cannot beat the busiest chain");
    }

    #[test]
    fn gpu_bound_pipeline_hides_cpu_entirely() {
        let blocks: Vec<BlockTiming> = (0..20).map(|_| block(0.1, 10.0, 0.1, 1.0)).collect();
        let s = schedule(&blocks);
        // Makespan ≈ 20 × 10 ms GPU + edges.
        assert!(s.overlapped_ms < 20.0 * 10.0 + 5.0);
        assert!(s.saving() > 0.05);
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(&[]);
        assert_eq!(s.overlapped_ms, 0.0);
        assert_eq!(s.serial_ms, 0.0);
    }

    #[test]
    fn overlap_blocks_preserves_order_and_values() {
        let out = overlap_blocks((0..50).collect::<Vec<i32>>(), |x| x * 2, |m| m + 1);
        assert_eq!(out, (0..50).map(|x| x * 2 + 1).collect::<Vec<i32>>());
    }

    #[test]
    fn overlap_actually_overlaps_in_wall_time() {
        // Producer and consumer each sleep 4 × 10 ms; serial would be
        // ≥ 80 ms, overlapped should be well under.
        let t0 = Instant::now();
        let out = overlap_blocks(
            vec![(); 4],
            |_| std::thread::sleep(Duration::from_millis(10)),
            |_| std::thread::sleep(Duration::from_millis(10)),
        );
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), 4);
        assert!(
            elapsed < Duration::from_millis(75),
            "no overlap observed: {elapsed:?}"
        );
    }
}
