//! The CPU–GPU overlap pipeline (paper §3.6, Fig. 12).
//!
//! The database is processed in blocks. While the GPU runs hit detection
//! and ungapped extension for block *n+1*, the CPU runs gapped extension
//! and traceback for block *n*, and the PCIe bus moves block data in both
//! directions. Two artifacts live here:
//!
//! * [`schedule`] — the analytic four-stage pipeline timeline (H2D → GPU →
//!   D2H → CPU) used by the figures: each stage is a serial resource,
//!   stages of different blocks overlap freely.
//! * [`overlap_blocks`] — a real two-thread executor (crossbeam channel,
//!   bounded to one block in flight) that the search driver uses so the
//!   overlap is not merely modelled but actually happens on the host.

use crate::error::{panic_message, PipelineError};
use crossbeam::channel::bounded;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-block stage times in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockTiming {
    /// Host→device transfer.
    pub h2d_ms: f64,
    /// GPU kernels (hit detection … ungapped extension).
    pub gpu_ms: f64,
    /// Device→host transfer of the extension records.
    pub d2h_ms: f64,
    /// CPU gapped extension + traceback.
    pub cpu_ms: f64,
}

/// Result of scheduling a block sequence through the four-stage pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Makespan with overlap (Fig. 12 execution).
    pub overlapped_ms: f64,
    /// Makespan if every stage ran serially (no overlap).
    pub serial_ms: f64,
}

impl PipelineSchedule {
    /// Fraction of serial time hidden by the overlap.
    pub fn saving(&self) -> f64 {
        if self.serial_ms <= 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_ms / self.serial_ms
        }
    }
}

/// Compute the pipeline timeline: classic chained-stage recurrence where
/// each stage is busy with at most one block at a time.
pub fn schedule(blocks: &[BlockTiming]) -> PipelineSchedule {
    let mut h2d_free = 0.0f64;
    let mut gpu_free = 0.0f64;
    let mut d2h_free = 0.0f64;
    let mut cpu_free = 0.0f64;
    let mut serial = 0.0f64;
    for b in blocks {
        h2d_free += b.h2d_ms;
        gpu_free = gpu_free.max(h2d_free) + b.gpu_ms;
        d2h_free = d2h_free.max(gpu_free) + b.d2h_ms;
        cpu_free = cpu_free.max(d2h_free) + b.cpu_ms;
        serial += b.h2d_ms + b.gpu_ms + b.d2h_ms + b.cpu_ms;
    }
    PipelineSchedule {
        overlapped_ms: cpu_free,
        serial_ms: serial,
    }
}

/// Run `producer` (the GPU side) over the inputs on a separate thread and
/// `consumer` (the CPU side) on the calling thread, overlapping them with
/// a bounded channel — the executable counterpart of Fig. 12.
///
/// Outputs arrive at the consumer in input order; results are returned in
/// that order.
///
/// Both sides run under [`catch_unwind`]: a panic on either thread is
/// converted into [`PipelineError::WorkerPanicked`] instead of poisoning
/// the channel and hanging the peer. When the producer dies, dropping its
/// sender closes the channel, the consumer loop drains and stops, and the
/// stored panic wins; when the consumer dies, the receiver drops, the
/// producer's next `send` fails, and its loop exits. Either way both
/// threads terminate and the first panic is reported.
pub fn overlap_blocks<I, M, R>(
    inputs: Vec<I>,
    producer: impl Fn(I) -> M + Send,
    consumer: impl FnMut(M) -> R,
) -> Result<Vec<R>, PipelineError>
where
    I: Send,
    M: Send,
{
    overlap_blocks_depth(1, inputs, producer, consumer)
}

/// [`overlap_blocks`] with a configurable in-flight depth: the producer
/// may run up to `depth` blocks ahead of the consumer before its `send`
/// blocks. Depth 1 is the paper's Fig. 12 regime (one block staged while
/// one is consumed); deeper queues smooth producer jitter at the cost of
/// holding more intermediate blocks in memory. Results are identical at
/// any depth — only wall-clock scheduling changes.
pub fn overlap_blocks_depth<I, M, R>(
    depth: usize,
    inputs: Vec<I>,
    producer: impl Fn(I) -> M + Send,
    mut consumer: impl FnMut(M) -> R,
) -> Result<Vec<R>, PipelineError>
where
    I: Send,
    M: Send,
{
    let (tx, rx) = bounded::<M>(depth.max(1));
    std::thread::scope(|scope| {
        let gpu = scope.spawn(move || {
            // The closure owns `tx`; dropping it (normally or via unwind)
            // is what lets the consumer loop below terminate.
            catch_unwind(AssertUnwindSafe(move || {
                for (i, input) in inputs.into_iter().enumerate() {
                    let mid = {
                        let _span = obs::span("producer_block", "pipeline").with_block(i as u32);
                        producer(input)
                    };
                    obs::counter("pipeline_blocks_total", &[("side", "producer")], 1);
                    if tx.send(mid).is_err() {
                        break;
                    }
                }
            }))
        });
        let mut out = Vec::new();
        let mut cpu_panic: Option<PipelineError> = None;
        let mut consumed: u32 = 0;
        // recv() returns Err when the producer is done (or panicked and
        // dropped its sender) — either way the loop terminates.
        while let Ok(mid) = rx.recv() {
            let block = consumed;
            consumed += 1;
            let run = catch_unwind(AssertUnwindSafe(|| {
                let _span = obs::span("consumer_block", "pipeline").with_block(block);
                consumer(mid)
            }));
            if run.is_ok() {
                obs::counter("pipeline_blocks_total", &[("side", "consumer")], 1);
            }
            match run {
                Ok(r) => out.push(r),
                Err(payload) => {
                    cpu_panic = Some(PipelineError::WorkerPanicked {
                        side: "cpu consumer",
                        payload: panic_message(payload.as_ref()),
                    });
                    break;
                }
            }
        }
        // Close the channel so a producer blocked on send() fails fast
        // and its thread winds down instead of deadlocking the join.
        drop(rx);
        let gpu_result = match gpu.join() {
            Ok(r) => r,
            // The spawned closure already caught unwinds, so join itself
            // only fails if the catch machinery was bypassed.
            Err(payload) => Err(payload),
        };
        if let Err(payload) = gpu_result {
            return Err(PipelineError::WorkerPanicked {
                side: "gpu producer",
                payload: panic_message(payload.as_ref()),
            });
        }
        if let Some(e) = cpu_panic {
            return Err(e);
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn block(h: f64, g: f64, d: f64, c: f64) -> BlockTiming {
        BlockTiming {
            h2d_ms: h,
            gpu_ms: g,
            d2h_ms: d,
            cpu_ms: c,
        }
    }

    #[test]
    fn single_block_has_no_overlap() {
        let s = schedule(&[block(1.0, 5.0, 1.0, 3.0)]);
        assert!((s.overlapped_ms - 10.0).abs() < 1e-9);
        assert!((s.serial_ms - 10.0).abs() < 1e-9);
        assert_eq!(s.saving(), 0.0);
    }

    #[test]
    fn balanced_blocks_pipeline_toward_bottleneck() {
        // 10 equal blocks: makespan ≈ fill latency + 10 × bottleneck stage.
        let blocks: Vec<BlockTiming> = (0..10).map(|_| block(1.0, 5.0, 1.0, 5.0)).collect();
        let s = schedule(&blocks);
        assert!((s.serial_ms - 120.0).abs() < 1e-9);
        // GPU and CPU both 5 ms → steady state ~5 ms per block per stage
        // chain; must be far below serial.
        assert!(s.overlapped_ms < 0.6 * s.serial_ms, "overlap = {s:?}");
        assert!(s.overlapped_ms >= 57.0, "cannot beat the busiest chain");
    }

    #[test]
    fn gpu_bound_pipeline_hides_cpu_entirely() {
        let blocks: Vec<BlockTiming> = (0..20).map(|_| block(0.1, 10.0, 0.1, 1.0)).collect();
        let s = schedule(&blocks);
        // Makespan ≈ 20 × 10 ms GPU + edges.
        assert!(s.overlapped_ms < 20.0 * 10.0 + 5.0);
        assert!(s.saving() > 0.05);
    }

    #[test]
    fn empty_schedule() {
        let s = schedule(&[]);
        assert_eq!(s.overlapped_ms, 0.0);
        assert_eq!(s.serial_ms, 0.0);
    }

    #[test]
    fn overlap_blocks_preserves_order_and_values() {
        let out =
            overlap_blocks((0..50).collect::<Vec<i32>>(), |x| x * 2, |m| m + 1).expect("no panics");
        assert_eq!(out, (0..50).map(|x| x * 2 + 1).collect::<Vec<i32>>());
    }

    #[test]
    fn overlap_actually_overlaps_in_wall_time() {
        // Producer and consumer each sleep 4 × 10 ms; serial would be
        // ≥ 80 ms, overlapped should be well under.
        let t0 = Instant::now();
        let out = overlap_blocks(
            vec![(); 4],
            |_| std::thread::sleep(Duration::from_millis(10)),
            |_| std::thread::sleep(Duration::from_millis(10)),
        )
        .expect("no panics");
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), 4);
        assert!(
            elapsed < Duration::from_millis(75),
            "no overlap observed: {elapsed:?}"
        );
    }

    #[test]
    fn overlap_with_empty_block_list_returns_empty() {
        let out = overlap_blocks(Vec::<i32>::new(), |x| x, |m: i32| m).expect("no panics");
        assert!(out.is_empty());
    }

    #[test]
    fn schedule_with_zero_timings_is_zero_not_nan() {
        let s = schedule(&[block(0.0, 0.0, 0.0, 0.0); 3]);
        assert_eq!(s.overlapped_ms, 0.0);
        assert_eq!(s.serial_ms, 0.0);
        assert_eq!(s.saving(), 0.0, "zero serial time must not divide to NaN");
    }

    #[test]
    fn producer_panic_returns_err_not_deadlock() {
        let out = overlap_blocks(
            (0..10).collect::<Vec<i32>>(),
            |x| {
                if x == 3 {
                    panic!("injected gpu-side panic");
                }
                x
            },
            |m| m,
        );
        match out {
            Err(PipelineError::WorkerPanicked { side, payload }) => {
                assert_eq!(side, "gpu producer");
                assert!(payload.contains("injected gpu-side panic"));
            }
            other => panic!("expected producer panic error, got {other:?}"),
        }
    }

    #[test]
    fn consumer_panic_returns_err_not_deadlock() {
        // The producer keeps sending while the consumer dies; the closed
        // channel must wind the producer down instead of blocking forever
        // on the bounded(1) send.
        let out = overlap_blocks(
            (0..100).collect::<Vec<i32>>(),
            |x| x,
            |m| {
                if m == 5 {
                    panic!("injected cpu-side panic");
                }
                m
            },
        );
        match out {
            Err(PipelineError::WorkerPanicked { side, payload }) => {
                assert_eq!(side, "cpu consumer");
                assert!(payload.contains("injected cpu-side panic"));
            }
            other => panic!("expected consumer panic error, got {other:?}"),
        }
    }

    #[test]
    fn depth_two_results_are_bit_identical_per_block() {
        let inputs: Vec<i32> = (0..64).collect();
        let d1 = overlap_blocks_depth(1, inputs.clone(), |x| x * 3 - 7, |m| (m, m * m))
            .expect("no panics");
        let d2 = overlap_blocks_depth(2, inputs.clone(), |x| x * 3 - 7, |m| (m, m * m))
            .expect("no panics");
        let d8 = overlap_blocks_depth(8, inputs, |x| x * 3 - 7, |m| (m, m * m)).expect("no panics");
        assert_eq!(d1, d2);
        assert_eq!(d1, d8);
    }

    #[test]
    fn depth_zero_is_clamped_not_deadlocked() {
        // bounded(0) would be a rendezvous channel; the depth API clamps
        // to 1 so a misconfigured caller still makes progress.
        let out = overlap_blocks_depth(0, (0..10).collect::<Vec<i32>>(), |x| x, |m: i32| m)
            .expect("no panics");
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn schedule_makespan_is_monotone_in_block_count() {
        // Adding a block can never shrink the overlapped makespan — the
        // analytic schedule the depth knob is reasoned against.
        let blocks: Vec<BlockTiming> = (0..12)
            .map(|i| {
                block(
                    0.5 + (i % 3) as f64,
                    2.0 + (i % 5) as f64,
                    0.3,
                    1.0 + (i % 4) as f64,
                )
            })
            .collect();
        let mut prev = 0.0f64;
        for n in 0..=blocks.len() {
            let s = schedule(&blocks[..n]);
            assert!(
                s.overlapped_ms >= prev,
                "makespan shrank at n = {n}: {} < {prev}",
                s.overlapped_ms
            );
            assert!(s.overlapped_ms <= s.serial_ms + 1e-9);
            prev = s.overlapped_ms;
        }
    }

    #[test]
    fn panic_on_first_input_still_terminates() {
        let out = overlap_blocks(vec![0i32], |_| panic!("immediate"), |m: i32| m);
        assert!(matches!(
            out,
            Err(PipelineError::WorkerPanicked {
                side: "gpu producer",
                ..
            })
        ));
    }
}
