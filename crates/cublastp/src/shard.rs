//! The sharded multi-device execution engine (DESIGN.md §3.10).
//!
//! The paper's §6 future work — GPU-cluster scale-out for very large
//! databases — promoted from the analytic model in [`crate::cluster`] to a
//! real execution layer. The database is partitioned into [`DbShard`]s
//! (mpiBLAST-style contiguous segmentation), each flattened into its own
//! resident [`DeviceDb`] (or materialised zero-copy from a per-shard
//! `.cdb` image), and (query × shard) work items are distributed across N
//! simulated devices by the deterministic work-stealing scheduler in
//! [`crate::scheduler`].
//!
//! Statistical identity is the load-bearing contract: every searcher is
//! built with [`CuBlastp::with_db_stats`] over the *global* database's
//! residue and sequence totals, so Karlin–Altschul cutoffs and E-values
//! match a single-database run exactly even though each search only ever
//! touches a shard-local [`SequenceDb`]. Shard-local subject indices are
//! remapped by the shard's global start offset and the merged report is
//! re-ranked with the same `finalize` the single path uses — the merged
//! output is bit-identical at every shard count, which the
//! `sharded_equivalence` proptests and CI job pin down.
//!
//! [`search_all_vs_all`] drives the many-against-many workload (PASTIS's
//! problem shape): query groups stream against shard tiles and above-
//! threshold pairs land in a CSR [`SparseSimMatrix`], best HSP per
//! (query, subject) pair, so memory stays bounded by one tile of rows.

use crate::config::CuBlastpConfig;
use crate::devicedata::DeviceDb;
use crate::error::{panic_message, PipelineError, SearchError};
use crate::pipeline::PipelineSchedule;
use crate::scheduler::{schedule_work_stealing, StealSchedule, DEFAULT_STEAL_SEED};
use crate::search::{
    BlockProgress, CuBlastp, CuBlastpResult, CuBlastpTiming, RecoveryReport, SearchHooks,
};
use bio_seq::{Sequence, SequenceDb};
use blast_core::SearchParams;
use blast_cpu::report::SearchReport;
use cublastp_db::DbImage;
use gpu_sim::{DeviceConfig, FaultInjector, KernelStats, KernelWorkspace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// One contiguous database shard with its resident device copy.
pub struct DbShard {
    /// Shard index within the [`ShardedDb`].
    pub index: usize,
    /// Global database index of the shard's first sequence — the offset
    /// added to every shard-local subject index at merge time.
    pub start: usize,
    /// The shard-local database the searches run against.
    pub db: SequenceDb,
    /// The shard flattened into device layout, shared by every query.
    pub dev: Arc<DeviceDb>,
}

impl DbShard {
    /// Sequences in the shard.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True for a shard holding no sequences (a ragged split's tail).
    pub fn is_empty(&self) -> bool {
        self.db.len() == 0
    }

    /// Modelled host→device payload of the whole shard.
    pub fn upload_bytes(&self) -> u64 {
        self.dev.upload_bytes()
    }
}

/// A database partitioned across shards, with global statistics retained
/// for cross-shard Karlin–Altschul correction.
pub struct ShardedDb {
    name: String,
    shards: Vec<DbShard>,
    block_size: usize,
    total_sequences: usize,
    total_residues: usize,
}

impl ShardedDb {
    /// Partition `db` into `num_shards` contiguous near-equal shards
    /// (mpiBLAST segmentation), flattening each at `block_size`. A split
    /// wider than the database keeps its empty tail shards, so per-shard
    /// telemetry always has `num_shards` entries.
    pub fn split(db: &SequenceDb, num_shards: usize, block_size: usize) -> Self {
        let n = num_shards.max(1);
        let shard_size = db.len().div_ceil(n).max(1);
        let boundaries: Vec<usize> = (1..n).map(|i| (i * shard_size).min(db.len())).collect();
        Self::from_boundaries(db, &boundaries, block_size)
    }

    /// Partition `db` at explicit split points: `boundaries` lists the
    /// global index of each shard's first sequence after the first shard
    /// (so `k` boundaries make `k + 1` shards). Out-of-range or unsorted
    /// boundaries are clamped and sorted; duplicates produce empty shards.
    pub fn from_boundaries(db: &SequenceDb, boundaries: &[usize], block_size: usize) -> Self {
        let mut cuts: Vec<usize> = boundaries.iter().map(|&b| b.min(db.len())).collect();
        cuts.sort_unstable();
        let mut starts = vec![0usize];
        starts.extend(cuts);
        let mut shards = Vec::with_capacity(starts.len());
        for (index, &start) in starts.iter().enumerate() {
            let end = starts.get(index + 1).copied().unwrap_or(db.len());
            let local = SequenceDb::new(
                format!("{}:{index}", db.name()),
                db.sequences()[start..end].to_vec(),
            );
            let dev = Arc::new(DeviceDb::upload(&local, block_size));
            shards.push(DbShard {
                index,
                start,
                db: local,
                dev,
            });
        }
        Self {
            name: db.name().to_string(),
            shards,
            block_size,
            total_sequences: db.len(),
            total_residues: db.total_residues(),
        }
    }

    /// Assemble a sharded database from per-shard `.cdb` images (the
    /// [`cublastp_db`] shard-set path): each image becomes one shard
    /// materialised zero-copy via [`DeviceDb::from_image`] — no flatten
    /// pass runs. Images must share one block size; shard order is image
    /// order and global starts are cumulative sequence counts.
    pub fn from_images(name: &str, images: &[DbImage]) -> Result<Self, SearchError> {
        let mut shards = Vec::with_capacity(images.len());
        let mut start = 0usize;
        let mut total_residues = 0usize;
        let mut block_size = None;
        for (index, img) in images.iter().enumerate() {
            match block_size {
                None => block_size = Some(img.block_size()),
                Some(bs) if bs != img.block_size() => {
                    return Err(SearchError::config(format!(
                        "shard {index} image has block size {}, shard set wants {bs}",
                        img.block_size()
                    )));
                }
                Some(_) => {}
            }
            let local = img.to_sequence_db();
            let dev = Arc::new(DeviceDb::from_image(img));
            total_residues += local.total_residues();
            let len = local.len();
            shards.push(DbShard {
                index,
                start,
                db: local,
                dev,
            });
            start += len;
        }
        Ok(Self {
            name: name.to_string(),
            shards,
            block_size: block_size.unwrap_or(0),
            total_sequences: start,
            total_residues,
        })
    }

    /// The shards, in global database order.
    pub fn shards(&self) -> &[DbShard] {
        &self.shards
    }

    /// Number of shards (empty tail shards included).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Block size every shard was flattened at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Global sequence count — the `db.len()` of the unsharded database.
    pub fn total_sequences(&self) -> usize {
        self.total_sequences
    }

    /// Global residue count — the Karlin–Altschul search-space input.
    pub fn total_residues(&self) -> usize {
        self.total_residues
    }

    /// Name of the underlying database.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Build a searcher with *global* database statistics (the cross-shard
    /// correction): cutoffs and E-values are those of the unsharded
    /// database, whatever shard the searcher is pointed at.
    pub fn searcher(
        &self,
        query: Sequence,
        params: SearchParams,
        config: CuBlastpConfig,
        device: DeviceConfig,
    ) -> CuBlastp {
        CuBlastp::with_db_stats(
            query,
            params,
            config,
            device,
            self.total_residues,
            self.total_sequences,
        )
    }

    /// Modelled H2D upload cost of each shard on `device`, indexed by
    /// shard — the residence charge the scheduler bills per
    /// (device, shard) first touch.
    pub fn upload_ms(&self, device: &DeviceConfig) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| {
                if s.is_empty() {
                    0.0
                } else {
                    device.transfer_ms(s.upload_bytes())
                }
            })
            .collect()
    }
}

/// Options for a sharded search.
#[derive(Debug, Clone, Copy)]
pub struct ShardedOptions {
    /// Simulated devices the schedule distributes work across.
    pub devices: usize,
    /// Steal-order seed — the schedule is deterministic given it.
    pub seed: u64,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self {
            devices: 1,
            seed: DEFAULT_STEAL_SEED,
        }
    }
}

/// Merged outcome of one query searched across every shard.
pub struct ShardedResult {
    /// Merged, re-ranked result — bit-identical to the single-DB search.
    pub result: CuBlastpResult,
    /// Modelled per-shard cost (device pipeline + shard upload), indexed
    /// by shard; zero for empty shards.
    pub per_shard_ms: Vec<f64>,
    /// Hits each shard contributed before the report cap.
    pub per_shard_hits: Vec<usize>,
    /// The work-stealing schedule the fleet executed.
    pub schedule: StealSchedule,
    /// Makespan of the same items on one device (the scaling baseline).
    pub single_device_ms: f64,
}

impl ShardedResult {
    /// Makespan speedup over the single-device baseline.
    pub fn speedup(&self) -> f64 {
        if self.schedule.makespan_ms <= 0.0 {
            1.0
        } else {
            self.single_device_ms / self.schedule.makespan_ms
        }
    }
}

/// Accumulates per-shard [`CuBlastpResult`]s into one merged result whose
/// report, counters and timings look exactly like a single-DB run.
struct ShardMerge {
    report: SearchReport,
    kernels: Vec<KernelStats>,
    counts: crate::gpu_phase::GpuPhaseCounts,
    timing: CuBlastpTiming,
    block_timings: Vec<crate::pipeline::BlockTiming>,
    recovery: RecoveryReport,
}

impl ShardMerge {
    fn new() -> Self {
        Self {
            report: SearchReport::default(),
            kernels: Vec::new(),
            counts: Default::default(),
            timing: CuBlastpTiming::default(),
            block_timings: Vec::new(),
            recovery: RecoveryReport::default(),
        }
    }

    /// Fold one shard's result in, remapping subject indices by the
    /// shard's global start. Returns the shard's remapped partial report
    /// (for streaming hooks) and its hit count.
    fn absorb(&mut self, shard_start: usize, r: CuBlastpResult) -> (SearchReport, usize) {
        let mut partial = r.report;
        for hit in &mut partial.hits {
            hit.subject_index += shard_start;
        }
        let hits = partial.hits.len();
        self.report.hits.extend(partial.hits.iter().cloned());
        if self.kernels.is_empty() {
            self.kernels = r.kernels;
        } else {
            for (k, o) in self.kernels.iter_mut().zip(&r.kernels) {
                k.merge(o);
            }
            // A shard that degraded its gapped phase differently can carry
            // an extra kernel entry; keep it rather than dropping stats.
            if r.kernels.len() > self.kernels.len() {
                self.kernels
                    .extend(r.kernels.into_iter().skip(self.kernels.len()));
            }
        }
        self.counts.hits += r.counts.hits;
        self.counts.filtered += r.counts.filtered;
        self.counts.extensions += r.counts.extensions;
        self.counts.redundant += r.counts.redundant;
        self.timing.gpu_ms += r.timing.gpu_ms;
        self.timing.h2d_ms += r.timing.h2d_ms;
        self.timing.d2h_ms += r.timing.d2h_ms;
        self.timing.gapped_ms += r.timing.gapped_ms;
        self.timing.traceback_ms += r.timing.traceback_ms;
        self.timing.cpu_wall_ms += r.timing.cpu_wall_ms;
        // Query setup happens once on the host however many shards run;
        // take the largest shard's "other" instead of summing it.
        self.timing.other_ms = self.timing.other_ms.max(r.timing.other_ms);
        self.timing.serial_ms += r.timing.serial_ms;
        self.block_timings.extend(r.block_timings);
        self.recovery.absorb(&r.recovery);
        (partial, hits)
    }

    /// Finish the merge: rank the global report and stamp the fleet
    /// makespan as the overlapped time.
    fn finish(mut self, max_reported: usize, makespan_ms: f64) -> CuBlastpResult {
        self.report.finalize(max_reported);
        self.timing.overlapped_ms = makespan_ms;
        let serial_ms = self.timing.serial_ms;
        CuBlastpResult {
            report: self.report,
            kernels: self.kernels,
            counts: self.counts,
            timing: self.timing,
            pipeline: PipelineSchedule {
                overlapped_ms: makespan_ms,
                serial_ms,
            },
            block_timings: self.block_timings,
            recovery: self.recovery,
        }
    }
}

/// Publish the fleet's per-device utilization and steal counters
/// (`device_busy_ms` / `device_steals` gauges — disarmed-cheap like every
/// obs call).
fn publish_fleet_metrics(schedule: &StealSchedule) {
    if !obs::metrics_enabled() {
        return;
    }
    for (d, tl) in schedule.per_device.iter().enumerate() {
        let label = d.to_string();
        obs::gauge("device_busy_ms", &[("device", &label)], tl.busy_ms);
        obs::gauge("device_steals", &[("device", &label)], tl.steals as f64);
    }
    obs::counter("fleet_steals_total", &[], schedule.total_steals());
    obs::gauge("fleet_makespan_ms", &[], schedule.makespan_ms);
}

/// Search every shard with `searcher` and merge — the single-query core
/// of the engine. The searcher must carry global statistics (build it
/// with [`ShardedDb::searcher`], or against the full database); a shard
/// whose search fails fails the whole query, as partial merges would
/// break the identical-to-single-DB contract.
pub fn search_sharded(
    searcher: &CuBlastp,
    sharded: &ShardedDb,
    opts: &ShardedOptions,
) -> Result<ShardedResult, SearchError> {
    search_sharded_with_hooks(searcher, sharded, opts, &SearchHooks::default())
}

/// [`search_sharded`] with serving-layer hooks: the cancel token is
/// polled inside every shard search at block boundaries, and `on_block`
/// fires once per completed shard with the shard's remapped partial
/// report (`block` = shard index, `blocks_total` = shard count).
pub fn search_sharded_with_hooks(
    searcher: &CuBlastp,
    sharded: &ShardedDb,
    opts: &ShardedOptions,
    hooks: &SearchHooks<'_>,
) -> Result<ShardedResult, SearchError> {
    let num_shards = sharded.num_shards();
    let inner_hooks = SearchHooks {
        cancel: hooks.cancel.clone(),
        on_block: None,
    };
    let mut merge = ShardMerge::new();
    let mut per_shard_ms = vec![0.0f64; num_shards];
    let mut per_shard_hits = vec![0usize; num_shards];
    let mut item_costs = Vec::new();
    let mut item_shards = Vec::new();
    let uploads = sharded.upload_ms(&searcher.device);
    for shard in sharded.shards() {
        if shard.is_empty() {
            continue;
        }
        let r = searcher.search_resident_with_hooks(&shard.db, &shard.dev, false, &inner_hooks)?;
        // Modelled on-device cost of this (query, shard) item: the shard's
        // overlapped pipeline makespan. Uploads are billed by the
        // scheduler per (device, shard) first touch, setup once globally.
        let cost = r.timing.overlapped_ms;
        per_shard_ms[shard.index] = cost + uploads[shard.index];
        item_costs.push(cost);
        item_shards.push(shard.index);
        let (partial, hits) = merge.absorb(shard.start, r);
        per_shard_hits[shard.index] = hits;
        if let Some(on_block) = hooks.on_block {
            on_block(BlockProgress {
                block: shard.index as u32,
                blocks_total: num_shards as u32,
                partial: &partial,
            });
        }
    }
    let schedule =
        schedule_work_stealing(&item_costs, &item_shards, &uploads, opts.devices, opts.seed);
    let single_device_ms =
        schedule_work_stealing(&item_costs, &item_shards, &uploads, 1, opts.seed).makespan_ms;
    publish_fleet_metrics(&schedule);
    let result = merge.finish(searcher.engine.params.max_reported, schedule.makespan_ms);
    Ok(ShardedResult {
        result,
        per_shard_ms,
        per_shard_hits,
        schedule,
        single_device_ms,
    })
}

/// Options for a sharded batch.
#[derive(Debug, Clone, Default)]
pub struct ShardedBatchOptions {
    /// Schedule geometry (devices, steal seed).
    pub sharded: ShardedOptions,
    /// Fault injector shared by every query of the stream, scoping specs
    /// by query index; disarmed when `None`.
    pub injector: Option<Arc<FaultInjector>>,
}

/// Outcome of a sharded multi-query batch: per-query merged results plus
/// the fleet schedule over every (query × shard) item. Item costs are
/// retained so scaling studies can re-simulate the same measured work at
/// other device counts without re-searching ([`Self::reschedule`]).
pub struct ShardedBatchOutcome {
    /// Per-query merged results, input order; a failed or panicked query
    /// is an `Err` in its slot and contributes no items to the schedule.
    pub per_query: Vec<Result<CuBlastpResult, SearchError>>,
    /// The fleet schedule at the requested device count.
    pub schedule: StealSchedule,
    /// Makespan of the same items on one device.
    pub single_device_ms: f64,
    /// Devices the schedule ran with.
    pub devices: usize,
    /// Modelled cost of each (query × shard) item, schedule order.
    pub item_costs: Vec<f64>,
    /// Shard of each item (parallel to `item_costs`).
    pub item_shards: Vec<usize>,
    /// Per-shard upload charge the scheduler bills on first touch.
    pub shard_upload_ms: Vec<f64>,
    /// Steal-order seed the schedules used.
    pub seed: u64,
    /// Measured host wall-clock of the whole batch.
    pub wall_ms: f64,
}

impl ShardedBatchOutcome {
    /// Makespan speedup over the single-device baseline.
    pub fn speedup(&self) -> f64 {
        if self.schedule.makespan_ms <= 0.0 {
            1.0
        } else {
            self.single_device_ms / self.schedule.makespan_ms
        }
    }

    /// Scaling efficiency at the schedule's device count.
    pub fn efficiency(&self) -> f64 {
        self.schedule.efficiency(self.single_device_ms)
    }

    /// Re-simulate the measured items at another device count — same
    /// costs, same uploads, same seed, no re-search. The scaling bench
    /// sweeps device counts through this.
    pub fn reschedule(&self, devices: usize) -> StealSchedule {
        schedule_work_stealing(
            &self.item_costs,
            &self.item_shards,
            &self.shard_upload_ms,
            devices,
            self.seed,
        )
    }

    /// Queries that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.per_query.iter().filter(|r| r.is_ok()).count()
    }
}

/// Search a batch of queries against a sharded database: every query
/// searches every shard (one (query × shard) work item each) and the
/// fleet schedule distributes the items across devices. Per-query merged
/// results are bit-identical to single-DB searches; queries are isolated
/// under `catch_unwind` like the flat batch driver.
pub fn search_sharded_batch(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    sharded: &ShardedDb,
    opts: &ShardedBatchOptions,
) -> ShardedBatchOutcome {
    let t0 = Instant::now();
    let workspace = Arc::new(KernelWorkspace::new());
    let uploads = sharded.upload_ms(&device);
    let mut per_query = Vec::with_capacity(queries.len());
    let mut item_costs = Vec::new();
    let mut item_shards = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let queue_wait_us = t0.elapsed().as_micros() as u64;
        let run = catch_unwind(AssertUnwindSafe(|| {
            let _span = obs::span("sharded_query", "batch").with_query(i as u32);
            let mut searcher = sharded.searcher(q.clone(), params, config, device);
            searcher.workspace = Arc::clone(&workspace);
            if let Some(inj) = &opts.injector {
                searcher.injector = Arc::clone(inj);
            }
            searcher.stream_index = i as u32;
            let mut merge = ShardMerge::new();
            let mut costs = Vec::new();
            let mut shards = Vec::new();
            for shard in sharded.shards() {
                if shard.is_empty() {
                    continue;
                }
                let r = searcher.search_resident(&shard.db, &shard.dev, false)?;
                costs.push(r.timing.overlapped_ms);
                shards.push(shard.index);
                merge.absorb(shard.start, r);
            }
            // The query's own overlapped time is its serial chain; the
            // fleet-level makespan lives on the batch outcome.
            let serial: f64 = costs.iter().sum();
            let result = merge.finish(params.max_reported, serial);
            Ok((result, costs, shards))
        }))
        .unwrap_or_else(|payload| {
            Err(SearchError::Pipeline(PipelineError::WorkerPanicked {
                side: "sharded batch query",
                payload: panic_message(payload.as_ref()),
            }))
        });
        match run {
            Ok((mut result, costs, shards)) => {
                result.recovery.queue_wait_us = queue_wait_us;
                item_costs.extend(costs);
                item_shards.extend(shards);
                per_query.push(Ok(result));
            }
            Err(e) => per_query.push(Err(e)),
        }
        let outcome = if per_query.last().is_some_and(|r| r.is_ok()) {
            "ok"
        } else {
            "err"
        };
        obs::counter("sharded_queries_total", &[("outcome", outcome)], 1);
    }
    let devices = opts.sharded.devices.max(1);
    let seed = opts.sharded.seed;
    let schedule = schedule_work_stealing(&item_costs, &item_shards, &uploads, devices, seed);
    let single_device_ms =
        schedule_work_stealing(&item_costs, &item_shards, &uploads, 1, seed).makespan_ms;
    publish_fleet_metrics(&schedule);
    ShardedBatchOutcome {
        per_query,
        schedule,
        single_device_ms,
        devices,
        item_costs,
        item_shards,
        shard_upload_ms: uploads,
        seed,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// One above-threshold (query, subject) pair in the similarity matrix:
/// the best HSP of the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEntry {
    /// Global database index of the subject.
    pub subject: u32,
    /// Raw score of the pair's best HSP.
    pub score: i32,
    /// Bit score of that HSP.
    pub bit_score: f64,
    /// E-value of that HSP (global statistics).
    pub evalue: f64,
}

/// Sparse query × subject similarity matrix in CSR form: row `q` of the
/// matrix is `entries[row_offsets[q]..row_offsets[q + 1]]`, sorted by
/// subject index. Only above-threshold pairs are stored, one entry per
/// pair (best HSP), so a many-against-many sweep stays sparse.
#[derive(Debug, Clone, Default)]
pub struct SparseSimMatrix {
    /// Rows (queries) in the matrix.
    pub num_queries: usize,
    /// Columns (database sequences) the rows index into.
    pub num_subjects: usize,
    /// CSR row offsets, `num_queries + 1` entries.
    pub row_offsets: Vec<usize>,
    /// Above-threshold pairs, row-major, subject-sorted within a row.
    pub entries: Vec<SimEntry>,
}

impl SparseSimMatrix {
    /// Entries of row `q` (empty past the last row).
    pub fn row(&self, q: usize) -> &[SimEntry] {
        match (self.row_offsets.get(q), self.row_offsets.get(q + 1)) {
            (Some(&lo), Some(&hi)) => &self.entries[lo..hi],
            _ => &[],
        }
    }

    /// Stored (above-threshold) pairs.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `(q, subject)`, if the pair scored above threshold.
    pub fn get(&self, q: usize, subject: usize) -> Option<&SimEntry> {
        let row = self.row(q);
        row.binary_search_by_key(&(subject as u32), |e| e.subject)
            .ok()
            .map(|i| &row[i])
    }
}

/// Options for the many-against-many driver.
#[derive(Debug, Clone, Copy)]
pub struct AllVsAllOptions {
    /// Schedule geometry (devices, steal seed).
    pub sharded: ShardedOptions,
    /// Queries per streamed tile: memory is bounded by one tile of matrix
    /// rows plus one shard of results.
    pub tile_rows: usize,
}

impl Default for AllVsAllOptions {
    fn default() -> Self {
        Self {
            sharded: ShardedOptions::default(),
            tile_rows: 16,
        }
    }
}

/// Outcome of a many-against-many sweep.
pub struct AllVsAllResult {
    /// The sparse similarity matrix (CSR over query rows).
    pub matrix: SparseSimMatrix,
    /// Fleet schedule over the (tile × shard) work items.
    pub schedule: StealSchedule,
    /// Makespan of the same items on one device.
    pub single_device_ms: f64,
    /// Query tiles the sweep streamed.
    pub tiles: usize,
}

impl AllVsAllResult {
    /// Makespan speedup over the single-device baseline.
    pub fn speedup(&self) -> f64 {
        if self.schedule.makespan_ms <= 0.0 {
            1.0
        } else {
            self.single_device_ms / self.schedule.makespan_ms
        }
    }
}

/// Reduce one query's ranked report into its matrix row: best HSP per
/// subject. The report arrives in canonical rank order (score descending,
/// subject ascending), so the first sighting of a subject is its best HSP.
fn reduce_row(row: &mut Vec<SimEntry>, report: &SearchReport) {
    for hit in &report.hits {
        let subject = hit.subject_index as u32;
        if row.iter().any(|e| e.subject == subject) {
            continue;
        }
        row.push(SimEntry {
            subject,
            score: hit.alignment.score,
            bit_score: hit.bit_score,
            evalue: hit.evalue,
        });
    }
}

/// Many-against-many search: every query against every shard, streamed as
/// (query-tile × shard) work items, emitting the sparse similarity matrix
/// of above-threshold pairs. Each pair's entry is its best HSP under
/// global statistics, so the matrix equals what per-query single-DB
/// searches would produce (the dense-reference property test).
pub fn search_all_vs_all(
    queries: &[Sequence],
    params: SearchParams,
    config: CuBlastpConfig,
    device: DeviceConfig,
    sharded: &ShardedDb,
    opts: &AllVsAllOptions,
) -> Result<AllVsAllResult, SearchError> {
    let tile_rows = opts.tile_rows.max(1);
    let workspace = Arc::new(KernelWorkspace::new());
    let uploads = sharded.upload_ms(&device);
    let mut rows: Vec<Vec<SimEntry>> = vec![Vec::new(); queries.len()];
    let mut item_costs = Vec::new();
    let mut item_shards = Vec::new();
    let mut tiles = 0usize;
    for (tile_idx, tile) in queries.chunks(tile_rows).enumerate() {
        tiles += 1;
        let tile_base = tile_idx * tile_rows;
        // Per-tile searchers are built once and reused across shards.
        let mut searchers = Vec::with_capacity(tile.len());
        for (j, q) in tile.iter().enumerate() {
            let mut s = sharded.searcher(q.clone(), params, config, device);
            s.workspace = Arc::clone(&workspace);
            s.stream_index = (tile_base + j) as u32;
            searchers.push(s);
        }
        for shard in sharded.shards() {
            if shard.is_empty() {
                continue;
            }
            // One work item: this whole tile against this shard.
            let mut tile_cost = 0.0f64;
            for (j, searcher) in searchers.iter().enumerate() {
                let r = searcher.search_resident(&shard.db, &shard.dev, false)?;
                tile_cost += r.timing.overlapped_ms;
                let mut partial = r.report;
                for hit in &mut partial.hits {
                    hit.subject_index += shard.start;
                }
                // Rank the shard slice so reduce_row sees best-HSP-first.
                partial.finalize(params.max_reported);
                reduce_row(&mut rows[tile_base + j], &partial);
            }
            item_costs.push(tile_cost);
            item_shards.push(shard.index);
        }
    }
    let mut row_offsets = Vec::with_capacity(queries.len() + 1);
    row_offsets.push(0usize);
    let mut entries = Vec::new();
    for mut row in rows {
        row.sort_by_key(|e| e.subject);
        entries.extend(row);
        row_offsets.push(entries.len());
    }
    let devices = opts.sharded.devices.max(1);
    let seed = opts.sharded.seed;
    let schedule = schedule_work_stealing(&item_costs, &item_shards, &uploads, devices, seed);
    let single_device_ms =
        schedule_work_stealing(&item_costs, &item_shards, &uploads, 1, seed).makespan_ms;
    publish_fleet_metrics(&schedule);
    Ok(AllVsAllResult {
        matrix: SparseSimMatrix {
            num_queries: queries.len(),
            num_subjects: sharded.total_sequences(),
            row_offsets,
            entries,
        },
        schedule,
        single_device_ms,
        tiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_seq::generate::{generate_db, make_query, DbSpec};

    fn workload(seqs: usize) -> (Sequence, SequenceDb, CuBlastpConfig) {
        let q = make_query(80);
        let spec = DbSpec {
            name: "shardtest",
            num_sequences: seqs,
            mean_length: 120,
            homolog_fraction: 0.25,
            seed: 97,
        };
        let db = generate_db(&spec, &q).db;
        let cfg = CuBlastpConfig {
            db_block_size: 24,
            grid_blocks: 2,
            warps_per_block: 2,
            ..CuBlastpConfig::default()
        };
        (q, db, cfg)
    }

    #[test]
    fn sharded_search_matches_single_db_at_every_shard_count() {
        let (q, db, cfg) = workload(96);
        let device = DeviceConfig::k20c();
        let single = CuBlastp::new(q.clone(), SearchParams::default(), cfg, device, &db)
            .search(&db)
            .expect("single-DB search");
        for num_shards in [1usize, 2, 3, 5, 8] {
            let sharded = ShardedDb::split(&db, num_shards, cfg.db_block_size);
            let searcher = sharded.searcher(q.clone(), SearchParams::default(), cfg, device);
            let r = search_sharded(&searcher, &sharded, &ShardedOptions::default())
                .expect("sharded search");
            assert_eq!(
                r.result.report.identity_key(),
                single.report.identity_key(),
                "shards = {num_shards}"
            );
            // Float fields too: E-values and bit scores must agree exactly.
            for (a, b) in r.result.report.hits.iter().zip(&single.report.hits) {
                assert_eq!(a.evalue.to_bits(), b.evalue.to_bits(), "evalue bits");
                assert_eq!(a.bit_score.to_bits(), b.bit_score.to_bits());
                assert_eq!(a.subject_id, b.subject_id);
            }
        }
    }

    #[test]
    fn ragged_boundaries_cover_everything() {
        let (q, db, cfg) = workload(61);
        let device = DeviceConfig::k20c();
        let single = CuBlastp::new(q.clone(), SearchParams::default(), cfg, device, &db)
            .search(&db)
            .expect("single-DB search");
        // Deliberately ugly cuts: duplicate (empty shard), tail-heavy.
        let sharded = ShardedDb::from_boundaries(&db, &[7, 7, 9, 60], cfg.db_block_size);
        assert_eq!(sharded.num_shards(), 5);
        assert!(sharded.shards()[1].is_empty());
        let searcher = sharded.searcher(q, SearchParams::default(), cfg, device);
        let r = search_sharded(&searcher, &sharded, &ShardedOptions::default()).expect("sharded");
        assert_eq!(r.result.report.identity_key(), single.report.identity_key());
        assert!(r.per_shard_hits.iter().sum::<usize>() >= r.result.report.hits.len());
    }

    #[test]
    fn image_set_shards_match_split_shards() {
        let (q, db, cfg) = workload(40);
        let device = DeviceConfig::k20c();
        let split = ShardedDb::split(&db, 3, cfg.db_block_size);
        let images: Vec<DbImage> = split
            .shards()
            .iter()
            .map(|s| {
                DbImage::from_bytes(
                    cublastp_db::build_to_vec(&s.db, cfg.db_block_size),
                    "in-memory",
                )
                .expect("valid shard image")
            })
            .collect();
        let mapped = ShardedDb::from_images(db.name(), &images).expect("image set");
        assert_eq!(mapped.total_sequences(), db.len());
        assert_eq!(mapped.total_residues(), db.total_residues());
        assert!(mapped.shards().iter().all(|s| s.dev.is_mapped()));
        let searcher = mapped.searcher(q.clone(), SearchParams::default(), cfg, device);
        let a = search_sharded(&searcher, &mapped, &ShardedOptions::default()).expect("mapped");
        let searcher = split.searcher(q, SearchParams::default(), cfg, device);
        let b = search_sharded(&searcher, &split, &ShardedOptions::default()).expect("split");
        assert_eq!(
            a.result.report.identity_key(),
            b.result.report.identity_key()
        );
    }

    #[test]
    fn batch_results_match_per_query_sharded_searches() {
        let (q, db, cfg) = workload(48);
        let device = DeviceConfig::k20c();
        let queries: Vec<Sequence> = (0..4)
            .map(|i| {
                let s = make_query(64 + 8 * i);
                Sequence::from_bytes(format!("q{i}"), s.residues())
            })
            .collect();
        let _ = q;
        let sharded = ShardedDb::split(&db, 4, cfg.db_block_size);
        let opts = ShardedBatchOptions {
            sharded: ShardedOptions {
                devices: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let batch = search_sharded_batch(
            &queries,
            SearchParams::default(),
            cfg,
            device,
            &sharded,
            &opts,
        );
        assert_eq!(batch.succeeded(), queries.len());
        assert_eq!(batch.item_costs.len(), queries.len() * 4);
        for (i, r) in batch.per_query.iter().enumerate() {
            let r = r.as_ref().expect("query ok");
            let single = CuBlastp::new(
                queries[i].clone(),
                SearchParams::default(),
                cfg,
                device,
                &db,
            )
            .search(&db)
            .expect("single");
            assert_eq!(r.report.identity_key(), single.report.identity_key());
        }
        // Re-simulating at 1 device reproduces the baseline makespan.
        assert_eq!(batch.reschedule(1).makespan_ms, batch.single_device_ms);
        assert!(batch.speedup() >= 1.0);
    }

    #[test]
    fn all_vs_all_matches_dense_reference() {
        let (_, db, cfg) = workload(32);
        let device = DeviceConfig::k20c();
        let queries: Vec<Sequence> = db.sequences()[..6].to_vec();
        let sharded = ShardedDb::split(&db, 3, cfg.db_block_size);
        let opts = AllVsAllOptions {
            sharded: ShardedOptions {
                devices: 2,
                ..Default::default()
            },
            tile_rows: 2,
        };
        let r = search_all_vs_all(
            &queries,
            SearchParams::default(),
            cfg,
            device,
            &sharded,
            &opts,
        )
        .expect("all-vs-all");
        assert_eq!(r.matrix.num_queries, queries.len());
        assert_eq!(r.matrix.row_offsets.len(), queries.len() + 1);
        assert_eq!(r.tiles, 3);
        // Dense reference: per-query single-DB search, best HSP per pair.
        for (qi, query) in queries.iter().enumerate() {
            let single = CuBlastp::new(query.clone(), SearchParams::default(), cfg, device, &db)
                .search(&db)
                .expect("single");
            let mut expect: Vec<SimEntry> = Vec::new();
            reduce_row(&mut expect, &single.report);
            expect.sort_by_key(|e| e.subject);
            let row = r.matrix.row(qi);
            assert_eq!(row.len(), expect.len(), "query {qi} pair count");
            for (a, b) in row.iter().zip(&expect) {
                assert_eq!(a.subject, b.subject);
                assert_eq!(a.score, b.score);
                assert_eq!(a.evalue.to_bits(), b.evalue.to_bits());
            }
            // Self-hit present: a query searched against a DB containing it.
            assert!(r.matrix.get(qi, qi).is_some(), "query {qi} self pair");
        }
    }

    #[test]
    fn fleet_schedule_is_deterministic_and_scales() {
        let (q, db, cfg) = workload(96);
        let device = DeviceConfig::k20c();
        let queries: Vec<Sequence> = (0..3).map(|_| q.clone()).collect();
        let sharded = ShardedDb::split(&db, 8, cfg.db_block_size);
        let opts = ShardedBatchOptions {
            sharded: ShardedOptions {
                devices: 4,
                seed: 11,
            },
            ..Default::default()
        };
        let a = search_sharded_batch(
            &queries,
            SearchParams::default(),
            cfg,
            device,
            &sharded,
            &opts,
        );
        // Determinism: the schedule is a pure function of the measured
        // item costs and the seed — re-simulating reproduces it exactly,
        // steal log included.
        assert_eq!(
            a.reschedule(4),
            a.schedule,
            "same items + seed, same schedule"
        );
        assert!(a.schedule.makespan_ms < a.single_device_ms);
        assert!(a.speedup() > 1.5, "4 devices over 24 items must scale");
    }
}
