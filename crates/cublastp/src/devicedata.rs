//! Device-resident data: the flattened database block and the query-side
//! structures (DFA, PSSM) with their synthetic addresses, plus the
//! whole-database residency layer ([`DeviceDb`], [`DeviceDbCache`]) that
//! lets a stream of queries share one flattened copy of the database.

use bio_seq::{DbBlock, Sequence, SequenceDb};
use blast_core::{Dfa, Pssm};
use cublastp_db::{DbImage, MappedRegion};
use gpu_sim::GlobalBuffer;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of database-block flattens ([`DeviceDbBlock::upload`]
/// calls). Residency is observable through it: a batch of N queries over a
/// B-block database must flatten B times, not N × B — and a database
/// loaded from a `.cdb` image must flatten zero times.
static FLATTEN_COUNT: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of blocks materialised zero-copy from a mapped
/// image ([`DeviceDbBlock::from_mapped`] calls). The dual of
/// [`flatten_count`]: the image load path is observable through it.
static MAPPED_BLOCK_COUNT: AtomicU64 = AtomicU64::new(0);

/// Current value of the flatten counter.
pub fn flatten_count() -> u64 {
    FLATTEN_COUNT.load(Ordering::Relaxed)
}

/// Current value of the mapped-block counter.
pub fn mapped_block_count() -> u64 {
    MAPPED_BLOCK_COUNT.load(Ordering::Relaxed)
}

/// Storage behind a resident block's residues: either a device buffer
/// flattened from host sequences, or a zero-copy view of a mapped `.cdb`
/// arena. Both expose the same contiguous byte layout and a synthetic
/// 256-aligned device base address, so kernels cannot tell them apart.
pub enum ResidueStore {
    /// Flattened into a fresh device buffer by [`DeviceDbBlock::upload`].
    Owned(GlobalBuffer<u8>),
    /// Zero-copy view of a shared mapped arena. Holding the `Arc` pins
    /// the mapping: the file is unmapped only when the last block view
    /// (and the [`DbImage`] itself) is gone.
    Mapped {
        /// The mapped image arena this view aliases.
        region: Arc<MappedRegion>,
        /// Byte range of this block's residues within the arena.
        range: Range<usize>,
        /// Synthetic device base address of the view.
        base: u64,
    },
}

impl ResidueStore {
    /// The block's residues as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ResidueStore::Owned(buf) => buf,
            ResidueStore::Mapped { region, range, .. } => &region.bytes()[range.clone()],
        }
    }

    /// Device address of byte `i` of the block.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        match self {
            ResidueStore::Owned(buf) => buf.addr(i),
            ResidueStore::Mapped { base, .. } => base + i as u64,
        }
    }

    /// Size of the residue payload in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        match self {
            ResidueStore::Owned(buf) => buf.size_bytes(),
            ResidueStore::Mapped { range, .. } => range.len() as u64,
        }
    }

    /// True when the store aliases a mapped image (no flatten happened).
    pub fn is_mapped(&self) -> bool {
        matches!(self, ResidueStore::Mapped { .. })
    }
}

/// One database block uploaded to the device: concatenated residues plus
/// per-sequence offsets (the layout every real GPU BLAST uses).
pub struct DeviceDbBlock {
    /// Concatenated residues of all sequences in the block.
    pub residues: ResidueStore,
    /// `offsets[i]..offsets[i+1]` delimits sequence `i` in `residues`.
    pub offsets: Vec<usize>,
    /// Global database index of the block's first sequence.
    pub base_index: usize,
    /// Length of the longest sequence in the block, cached at upload so
    /// the per-launch packed-format range check is O(1) instead of a scan.
    pub max_seq_len: usize,
}

impl DeviceDbBlock {
    /// Flatten a slice of sequences into device layout.
    pub fn upload(sequences: &[Sequence], base_index: usize) -> Self {
        FLATTEN_COUNT.fetch_add(1, Ordering::Relaxed);
        let total: usize = sequences.iter().map(|s| s.len()).sum();
        let mut residues = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(sequences.len() + 1);
        offsets.push(0);
        let mut max_seq_len = 0usize;
        for s in sequences {
            residues.extend_from_slice(s.residues());
            offsets.push(residues.len());
            max_seq_len = max_seq_len.max(s.len());
        }
        Self {
            residues: ResidueStore::Owned(GlobalBuffer::new(residues)),
            offsets,
            base_index,
            max_seq_len,
        }
    }

    /// Materialise a block zero-copy from a mapped image arena. `range`
    /// delimits the block's residues within `region`; `offsets` are
    /// block-local prefix offsets (same shape [`Self::upload`] builds).
    /// No flatten pass runs and no residue byte is copied — the view gets
    /// its own synthetic device address range, so the coalescing model
    /// sees the identical 256-aligned layout as the upload path.
    pub fn from_mapped(
        region: Arc<MappedRegion>,
        range: Range<usize>,
        offsets: Vec<usize>,
        base_index: usize,
    ) -> Self {
        MAPPED_BLOCK_COUNT.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(offsets.last().copied(), Some(range.len()));
        let max_seq_len = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let base = gpu_sim::memory::virtual_alloc(range.len() as u64);
        Self {
            residues: ResidueStore::Mapped {
                region,
                range,
                base,
            },
            offsets,
            base_index,
            max_seq_len,
        }
    }

    /// Number of sequences in the block.
    pub fn num_seqs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Residues of sequence `i` (block-local index).
    #[inline]
    pub fn seq(&self, i: usize) -> &[u8] {
        &self.residues.as_slice()[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length of sequence `i`.
    #[inline]
    pub fn seq_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Device address of residue `pos` of sequence `i` (for the coalescing
    /// model).
    #[inline]
    pub fn residue_addr(&self, i: usize, pos: usize) -> u64 {
        self.residues.addr(self.offsets[i] + pos)
    }

    /// Host→device payload size in bytes (PCIe model input).
    pub fn upload_bytes(&self) -> u64 {
        self.residues.size_bytes() + (self.offsets.len() * 8) as u64
    }
}

/// A whole database resident on the device: every block flattened exactly
/// once and shared (`Arc`) by all queries of a stream. Building one is the
/// upload; afterwards searches run against the resident copy and pay no
/// per-query H2D transfer for the database.
pub struct DeviceDb {
    blocks: Vec<(DbBlock, Arc<DeviceDbBlock>)>,
    block_size: usize,
}

impl DeviceDb {
    /// Flatten all blocks of `db` at the given partition size.
    pub fn upload(db: &SequenceDb, block_size: usize) -> Self {
        let blocks = db
            .blocks(block_size)
            .into_iter()
            .map(|b| {
                let dev = Arc::new(DeviceDbBlock::upload(db.block_sequences(b), b.start));
                (b, dev)
            })
            .collect();
        Self { blocks, block_size }
    }

    /// Materialise the whole database zero-copy from a validated `.cdb`
    /// image: every block is a view of the shared mapped arena, built at
    /// the image's stored block size with no flatten pass. Byte layout,
    /// offsets, and 256-aligned base addresses are identical to what
    /// [`DeviceDb::upload`] produces for the equivalent [`SequenceDb`],
    /// so searches over the two are bit-identical.
    pub fn from_image(img: &DbImage) -> Self {
        let seq_offsets = img.seq_offsets();
        let arena = img.residues_range();
        let blocks = img
            .blocks()
            .into_iter()
            .map(|b| {
                let start_byte = seq_offsets[b.start];
                let end_byte = seq_offsets[b.end];
                let range = arena.start + start_byte..arena.start + end_byte;
                let offsets: Vec<usize> = seq_offsets[b.start..=b.end]
                    .iter()
                    .map(|&o| o - start_byte)
                    .collect();
                let dev = Arc::new(DeviceDbBlock::from_mapped(
                    Arc::clone(img.region()),
                    range,
                    offsets,
                    b.start,
                ));
                (b, dev)
            })
            .collect();
        Self {
            blocks,
            block_size: img.block_size(),
        }
    }

    /// The resident blocks, in database order.
    pub fn blocks(&self) -> &[(DbBlock, Arc<DeviceDbBlock>)] {
        &self.blocks
    }

    /// True when every block aliases a mapped image arena (loaded via
    /// [`DeviceDb::from_image`] rather than flattened).
    pub fn is_mapped(&self) -> bool {
        !self.blocks.is_empty() && self.blocks.iter().all(|(_, b)| b.residues.is_mapped())
    }

    /// Partition size the database was flattened at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of resident blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total host→device payload of the whole database in bytes.
    pub fn upload_bytes(&self) -> u64 {
        self.blocks.iter().map(|(_, b)| b.upload_bytes()).sum()
    }
}

/// Cache of [`DeviceDb`] uploads keyed by block size, for drivers that
/// search one database under several partitionings (CLI, benches). Each
/// distinct block size flattens once; repeat requests share the `Arc`.
#[derive(Default)]
pub struct DeviceDbCache {
    entries: Mutex<Vec<(usize, Arc<DeviceDb>)>>,
}

impl DeviceDbCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The resident database at `block_size`, uploading it on first use.
    pub fn get(&self, db: &SequenceDb, block_size: usize) -> Arc<DeviceDb> {
        let mut entries = self.entries.lock();
        if let Some((_, cached)) = entries.iter().find(|(size, _)| *size == block_size) {
            return Arc::clone(cached);
        }
        let fresh = Arc::new(DeviceDb::upload(db, block_size));
        entries.push((block_size, Arc::clone(&fresh)));
        fresh
    }

    /// Install an already-resident database (e.g. one materialised via
    /// [`DeviceDb::from_image`]) under its own block size, replacing any
    /// cached upload at that size. Subsequent [`DeviceDbCache::get`]
    /// calls at the same block size share it instead of re-flattening.
    pub fn insert(&self, dev: Arc<DeviceDb>) {
        let mut entries = self.entries.lock();
        let block_size = dev.block_size();
        if let Some(entry) = entries.iter_mut().find(|(size, _)| *size == block_size) {
            entry.1 = dev;
        } else {
            entries.push((block_size, dev));
        }
    }
}

/// Query-side device structures shared by all kernels of one search.
pub struct DeviceQuery {
    /// The hit-detection automaton (host copy; the state table is modelled
    /// as resident in shared memory, Fig. 10).
    pub dfa: Dfa,
    /// The PSSM (host copy; placement decided by the buffering policy).
    pub pssm: Pssm,
    /// Device buffer behind the DFA query-position lists (read-only-cache
    /// traffic).
    pub dfa_positions: GlobalBuffer<u32>,
    /// Device buffer behind the PSSM when it spills to global memory.
    pub pssm_global: GlobalBuffer<i16>,
}

impl DeviceQuery {
    /// Upload query structures.
    pub fn upload(dfa: Dfa, pssm: Pssm) -> Self {
        let dfa_positions = GlobalBuffer::new(dfa.neighborhood().raw_positions().to_vec());
        let pssm_global = GlobalBuffer::new(pssm.raw().to_vec());
        Self {
            dfa,
            pssm,
            dfa_positions,
            pssm_global,
        }
    }

    /// Query length in residues.
    pub fn query_len(&self) -> usize {
        self.pssm.query_len()
    }

    /// Device addresses of the position-list entries for a word code —
    /// what the binning kernel feeds to the read-only cache.
    pub fn position_addrs(&self, code: usize) -> (u64, usize) {
        let lo = self.dfa.neighborhood().raw_offsets()[code] as usize;
        let hi = self.dfa.neighborhood().raw_offsets()[code + 1] as usize;
        (self.dfa_positions.addr(lo), hi - lo)
    }

    /// Device address of PSSM cell `(query_pos, residue)` for the
    /// global-memory PSSM path.
    #[inline]
    pub fn pssm_addr(&self, query_pos: usize, residue: u8) -> u64 {
        self.pssm_global.addr(query_pos * 32 + residue as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::Matrix;

    #[test]
    fn upload_preserves_sequences() {
        let seqs = vec![
            Sequence::from_bytes("a", b"MKV"),
            Sequence::from_bytes("b", b"ARNDC"),
            Sequence::from_bytes("c", b""),
        ];
        let block = DeviceDbBlock::upload(&seqs, 10);
        assert_eq!(block.num_seqs(), 3);
        assert_eq!(block.seq(0), seqs[0].residues());
        assert_eq!(block.seq(1), seqs[1].residues());
        assert!(block.seq(2).is_empty());
        assert_eq!(block.seq_len(1), 5);
        assert_eq!(block.base_index, 10);
        assert_eq!(block.max_seq_len, 5);
    }

    #[test]
    fn residue_addresses_are_contiguous_across_sequences() {
        let seqs = vec![
            Sequence::from_bytes("a", b"MKV"),
            Sequence::from_bytes("b", b"AR"),
        ];
        let block = DeviceDbBlock::upload(&seqs, 0);
        assert_eq!(block.residue_addr(0, 1) - block.residue_addr(0, 0), 1);
        // Sequence b starts right after a in the flat buffer.
        assert_eq!(block.residue_addr(1, 0) - block.residue_addr(0, 2), 1);
    }

    #[test]
    fn query_upload_and_position_addrs() {
        let q = Sequence::from_bytes("q", b"WKVMSARND");
        let m = Matrix::blosum62();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, 11), Pssm::build(&q, &m));
        assert_eq!(dq.query_len(), 9);
        // Find a word with hits and check its address span.
        let n = dq.dfa.neighborhood();
        let code = (0..blast_core::NUM_WORDS)
            .find(|&c| !n.positions(c).is_empty())
            .expect("query must have neighbour words");
        let (addr, len) = dq.position_addrs(code);
        assert_eq!(len, n.positions(code).len());
        assert!(addr >= dq.dfa_positions.addr(0));
    }

    #[test]
    fn pssm_addr_stride_matches_layout() {
        let q = Sequence::from_bytes("q", b"WKVM");
        let m = Matrix::blosum62();
        let dq = DeviceQuery::upload(Dfa::build(&q, &m, 11), Pssm::build(&q, &m));
        // Column stride is 32 entries × 2 bytes.
        assert_eq!(dq.pssm_addr(1, 0) - dq.pssm_addr(0, 0), 64);
        assert_eq!(dq.pssm_addr(0, 1) - dq.pssm_addr(0, 0), 2);
    }

    #[test]
    fn upload_bytes_counts_payload() {
        let seqs = vec![Sequence::from_bytes("a", b"MKVLW")];
        let block = DeviceDbBlock::upload(&seqs, 0);
        assert_eq!(block.upload_bytes(), 5 + 2 * 8);
    }

    fn tiny_db() -> SequenceDb {
        let seqs = (0..7)
            .map(|i| Sequence::from_bytes(format!("s{i}"), b"MKVARNDCQEGH"))
            .collect();
        SequenceDb::new("tiny", seqs)
    }

    #[test]
    fn device_db_blocks_match_fresh_uploads() {
        // Byte identity: the resident copy must be indistinguishable from
        // flattening the block directly.
        let db = tiny_db();
        let dev = DeviceDb::upload(&db, 3);
        assert_eq!(dev.num_blocks(), 3);
        assert_eq!(dev.block_size(), 3);
        let mut total = 0;
        for (block, resident) in dev.blocks() {
            let fresh = DeviceDbBlock::upload(db.block_sequences(*block), block.start);
            assert_eq!(resident.offsets, fresh.offsets);
            assert_eq!(resident.base_index, fresh.base_index);
            assert_eq!(resident.upload_bytes(), fresh.upload_bytes());
            for i in 0..fresh.num_seqs() {
                assert_eq!(resident.seq(i), fresh.seq(i));
            }
            total += fresh.upload_bytes();
        }
        assert_eq!(dev.upload_bytes(), total);
    }

    #[test]
    fn from_image_matches_upload_without_flattening() {
        let db = tiny_db();
        let img = cublastp_db::DbImage::from_bytes(cublastp_db::build_to_vec(&db, 3), "test")
            .expect("valid image");
        let uploaded = DeviceDb::upload(&db, 3);
        let flattens_before = flatten_count();
        let mapped_before = mapped_block_count();
        let mapped = DeviceDb::from_image(&img);
        assert_eq!(
            flatten_count(),
            flattens_before,
            "image load must not flatten"
        );
        assert_eq!(mapped_block_count(), mapped_before + 3);
        assert!(mapped.is_mapped());
        assert!(!uploaded.is_mapped());
        assert_eq!(mapped.num_blocks(), uploaded.num_blocks());
        assert_eq!(mapped.block_size(), uploaded.block_size());
        assert_eq!(mapped.upload_bytes(), uploaded.upload_bytes());
        for ((ba, a), (bb, b)) in mapped.blocks().iter().zip(uploaded.blocks()) {
            assert_eq!(ba, bb);
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.base_index, b.base_index);
            assert_eq!(a.max_seq_len, b.max_seq_len);
            for i in 0..a.num_seqs() {
                assert_eq!(a.seq(i), b.seq(i));
            }
            // Same address arithmetic: contiguous within the block, own
            // 256-aligned base per block.
            assert_eq!(a.residue_addr(0, 0) % 256, 0);
            assert_eq!(a.residue_addr(1, 0) - a.residue_addr(0, 0), 12);
        }
    }

    #[test]
    fn mapped_blocks_pin_the_region_until_dropped() {
        let db = tiny_db();
        let img = cublastp_db::DbImage::from_bytes(cublastp_db::build_to_vec(&db, 0), "pin-test")
            .expect("valid image");
        let unmaps_before = cublastp_db::unmap_count();
        let dev = DeviceDb::from_image(&img);
        drop(img);
        // The resident blocks still alias the arena — not unmapped yet.
        assert_eq!(cublastp_db::unmap_count(), unmaps_before);
        assert_eq!(dev.blocks()[0].1.seq_len(0), 12);
        drop(dev);
        // Refcount zero: the mapping is released.
        assert_eq!(cublastp_db::unmap_count(), unmaps_before + 1);
    }

    #[test]
    fn cache_insert_installs_mapped_db() {
        let db = tiny_db();
        let img = cublastp_db::DbImage::from_bytes(cublastp_db::build_to_vec(&db, 4), "test")
            .expect("valid image");
        let cache = DeviceDbCache::new();
        let mapped = Arc::new(DeviceDb::from_image(&img));
        cache.insert(Arc::clone(&mapped));
        let got = cache.get(&db, 4);
        assert!(Arc::ptr_eq(&mapped, &got), "get must share the inserted db");
        // Insert replaces an existing upload at the same block size.
        let other = cache.get(&db, 2);
        cache.insert(Arc::clone(&mapped));
        assert!(!Arc::ptr_eq(&other, &cache.get(&db, 2)) || other.block_size() == 2);
    }

    #[test]
    fn cache_shares_one_upload_per_block_size() {
        let db = tiny_db();
        let cache = DeviceDbCache::new();
        let a = cache.get(&db, 4);
        let b = cache.get(&db, 4);
        assert!(Arc::ptr_eq(&a, &b), "same block size must share the upload");
        let c = cache.get(&db, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.num_blocks(), 4);
    }
}
