//! Hit reordering: the assembling, sorting, and filtering kernels
//! (paper §3.3, Fig. 6–7).
//!
//! After binning, the hits of one bin interleave across diagonals (and
//! across the sequences a warp handled). Three kernels restore the order
//! ungapped extension needs:
//!
//! 1. **Assembling** (Fig. 6a) — copy the ragged bins into one contiguous
//!    array so the segmented sort can stream them at full throughput.
//! 2. **Sorting** (Fig. 6b) — a segmented sort of the packed 64-bit
//!    elements; ascending order is (sequence, diagonal, subject position)
//!    by construction of the packing.
//! 3. **Filtering** (Fig. 6c) — drop every hit whose left neighbour on the
//!    same (sequence, diagonal) is farther than the two-hit window: such a
//!    hit can never trigger an extension. The paper measures only 5–11 %
//!    of hits surviving, which is what makes the extra pass profitable.
//!
//! Host-side, all three stages operate on the flat hit arena of
//! [`BinnedHits`]: assembling *moves* the already-contiguous key buffer
//! and merely collapses empty bins out of the offsets (zero copies of the
//! keys themselves — the copy the simulated kernel charges happens only
//! on the modelled device); sorting runs the radix segmented sort in
//! place over segment slices; filtering reads the same flat buffer and
//! compacts survivors through pooled per-block buffers returned by value
//! from [`gpu_sim::launch_map`].

use crate::binning::BinnedHits;
use crate::config::CuBlastpConfig;
use crate::hitpack::{group_key, subject_pos};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::memory::virtual_alloc;
use gpu_sim::scan::WARP_SCAN_STEPS;
use gpu_sim::sort::segmented_sort_flat;
use gpu_sim::{launch, launch_map, DeviceConfig, KernelStats, KernelWorkspace, LaunchConfig};

/// Contiguous, segment-delimited hits (output of assembling; segments are
/// the former non-empty bins). `seg_offsets[s]..seg_offsets[s+1]` delimits
/// segment `s` in `keys`.
pub struct AssembledHits {
    /// All hits, one contiguous buffer (the arena, carried over from
    /// binning without copying).
    pub keys: Vec<u64>,
    /// Segment boundaries: leading 0, then the end of every non-empty
    /// former bin.
    pub seg_offsets: Vec<u32>,
}

impl AssembledHits {
    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.seg_offsets.len() - 1
    }

    /// Iterate the segments as slices of the flat buffer.
    pub fn segments(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.seg_offsets
            .windows(2)
            .map(|w| &self.keys[w[0] as usize..w[1] as usize])
    }

    /// Build from explicit ragged segments (test/bench convenience; the
    /// pipeline itself never materializes `Vec<Vec<_>>`). Empty segments
    /// are dropped, matching what assembling does to empty bins.
    pub fn from_segments(segments: Vec<Vec<u64>>) -> Self {
        let mut keys = Vec::new();
        let mut seg_offsets = vec![0u32];
        for seg in segments {
            if seg.is_empty() {
                continue;
            }
            keys.extend_from_slice(&seg);
            seg_offsets.push(keys.len() as u32);
        }
        Self { keys, seg_offsets }
    }

    /// Return the buffers to the workspace they were drawn from.
    pub fn recycle(self, ws: &KernelWorkspace) {
        ws.keys.put(self.keys);
        ws.offsets.put(self.seg_offsets);
    }
}

/// Assemble the bins into a contiguous array. Thread blocks tile the
/// *output* array (2048 elements each) and gather from the bins — both
/// sides stream, so reads and writes coalesce and lanes stay fully active
/// regardless of how small individual bins are. Host-side the arena is
/// already contiguous, so the functional work is only collapsing empty
/// bins out of the offsets; the key buffer moves, it is never copied.
pub fn assemble_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    binned: BinnedHits,
    ws: &KernelWorkspace,
) -> (AssembledHits, KernelStats) {
    const TILE: usize = 2048;
    let total = binned.total_hits as usize;
    let src_base = virtual_alloc(total.max(1) as u64 * 8);
    let dst_base = virtual_alloc(total.max(1) as u64 * 8);

    let blocks = total.div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let stats = launch(device, launch_cfg, "hit_assembling", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(total);
        let mut j = lo;
        while j < hi {
            // Both streams are stride-8 sequences, so the coalescing is
            // charged analytically — no address buffers on the host.
            let active = ((hi - j).min(WARP_SIZE as usize)) as u32;
            block.global_read_seq(src_base + (j as u64) * 8, active, 8, 8);
            block.global_write_seq(dst_base + (j as u64) * 8, active, 8, 8);
            j += WARP_SIZE as usize;
        }
    });

    // Collapse empty bins: consecutive equal offsets vanish, leaving one
    // boundary per non-empty bin. The keys are untouched.
    let BinnedHits { offsets, keys, .. } = binned;
    let mut seg_offsets: Vec<u32> = ws.offsets.take();
    seg_offsets.push(0);
    for w in offsets.windows(2) {
        if w[1] > w[0] {
            seg_offsets.push(w[1]);
        }
    }
    ws.offsets.put(offsets);
    (AssembledHits { keys, seg_offsets }, stats)
}

/// Segmented sort of the assembled hits (Fig. 6b / Fig. 7) — delegates to
/// the ModernGPU-model radix kernel in `gpu-sim`, sorting each segment
/// slice of the arena in place with pooled ping-pong scratch.
pub fn sort_kernel(
    device: &DeviceConfig,
    hits: &mut AssembledHits,
    ws: &KernelWorkspace,
) -> KernelStats {
    let mut scratch = ws.keys.take();
    let stats = segmented_sort_flat(
        device,
        &mut hits.keys,
        &hits.seg_offsets,
        "hit_sorting",
        &mut scratch,
    );
    ws.keys.put(scratch);
    stats
}

/// Output of the filtering kernel.
pub struct FilteredHits {
    /// Surviving hits, concatenated segment by segment; within the whole
    /// vector every (sequence, diagonal) group is contiguous and sorted by
    /// subject position.
    pub hits: Vec<u64>,
    /// Hits before filtering.
    pub before: u64,
}

impl FilteredHits {
    /// Fraction of hits that survived (the paper's 5–11 % observation).
    pub fn survival_ratio(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            self.hits.len() as f64 / self.before as f64
        }
    }

    /// Return the hit buffer to the workspace it was drawn from.
    pub fn recycle(self, ws: &KernelWorkspace) {
        ws.keys.put(self.hits);
    }
}

/// Filtering kernel: one thread per hit compares against its left
/// neighbour in the concatenated sorted array and keeps the hit only when
/// the neighbour is on the same (sequence, diagonal) within the two-hit
/// window. A (sequence, diagonal) group never spans a segment boundary,
/// so the group-key comparison makes flat tiling over the whole array
/// correct — lanes stay dense and reads coalesce. Survivors compact into
/// a per-block buffer with a warp scan, avoiding global atomics (§3.3).
pub fn filter_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    sorted: &AssembledHits,
    window: i64,
    ws: &KernelWorkspace,
) -> (FilteredHits, KernelStats) {
    filter_kernel_mode(device, cfg, sorted, true, window, ws)
}

/// [`filter_kernel`] with an explicit seeding mode. In one-hit mode
/// (`two_hit = false`) every hit is extendable, so the kernel degenerates
/// to a pass-through copy (still charged: the hits must be compacted for
/// the extension kernel either way).
pub fn filter_kernel_mode(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    sorted: &AssembledHits,
    two_hit: bool,
    window: i64,
    ws: &KernelWorkspace,
) -> (FilteredHits, KernelStats) {
    const TILE: usize = 2048;
    let concat: &[u64] = &sorted.keys;
    let before = concat.len() as u64;
    let src_base = virtual_alloc(before.max(1) * 8);
    let dst_base = virtual_alloc(before.max(1) * 8);

    let blocks = concat.len().div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let (per_block, stats) = launch_map(device, launch_cfg, "hit_filtering", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(concat.len());
        let mut kept: Vec<u64> = ws.keys.take();
        let mut j = lo;
        while j < hi {
            let active = (hi - j).min(WARP_SIZE as usize);
            // Each lane reads its hit; the left neighbour is the previous
            // lane's value (one extra element at the chunk boundary).
            block.global_read_seq(src_base + (j as u64) * 8, active as u32, 8, 8);
            // Distance comparison + warp-scan compaction of survivors.
            block.instr(active as u32);
            block.instr_n(active as u32, WARP_SCAN_STEPS);
            // Survivor writes advance with both the output cursor and the
            // in-warp scan rank, a stride-16 sequence from the chunk's
            // first free output slot — charged analytically.
            let n0 = kept.len() as u64;
            for l in 0..active {
                let idx = j + l;
                if idx == 0 {
                    if !two_hit {
                        kept.push(concat[idx]);
                    }
                    continue; // in two-hit mode the very first hit has no neighbour
                }
                let cur = concat[idx];
                let prev = concat[idx - 1];
                let extendable = !two_hit
                    || (group_key(cur) == group_key(prev)
                        && (subject_pos(cur) as i64 - subject_pos(prev) as i64) <= window);
                if extendable {
                    kept.push(cur);
                }
            }
            block.global_write_seq(dst_base + n0 * 8, (kept.len() as u64 - n0) as u32, 16, 8);
            j += WARP_SIZE as usize;
        }
        kept
    });

    let mut hits: Vec<u64> = ws.keys.take();
    for kept in per_block {
        hits.extend_from_slice(&kept);
        ws.keys.put(kept);
    }
    (FilteredHits { hits, before }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitpack::pack;

    fn binned(bins: Vec<Vec<u64>>) -> BinnedHits {
        let num_bins = bins.len();
        let mut offsets = vec![0u32];
        let mut keys = Vec::new();
        for b in &bins {
            keys.extend_from_slice(b);
            offsets.push(keys.len() as u32);
        }
        let total = keys.len() as u64;
        BinnedHits {
            offsets,
            keys,
            num_bins,
            num_warps: 1,
            total_hits: total,
        }
    }

    #[test]
    fn assemble_drops_empty_bins_and_keeps_hits() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let b = binned(vec![
            vec![pack(0, 5, 3)],
            vec![],
            vec![pack(0, 2, 1), pack(1, 2, 9)],
        ]);
        let (asm, _) = assemble_kernel(&d, &cfg, b, &ws);
        assert_eq!(asm.num_segments(), 2);
        assert_eq!(asm.keys.len(), 3);
        let lens: Vec<usize> = asm.segments().map(<[u64]>::len).collect();
        assert_eq!(lens, vec![1, 2]);
    }

    #[test]
    fn assemble_moves_the_arena_without_copying() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let b = binned(vec![vec![pack(0, 1, 1)], vec![pack(0, 2, 2)]]);
        let key_ptr = b.keys.as_ptr();
        let (asm, _) = assemble_kernel(&d, &cfg, b, &ws);
        assert_eq!(asm.keys.as_ptr(), key_ptr, "keys must move, not copy");
    }

    #[test]
    fn assemble_of_large_bins_is_coalesced() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let big: Vec<u64> = (0..512u32).map(|k| pack(0, 3, k)).collect();
        let (_, stats) = assemble_kernel(&d, &cfg, binned(vec![big]), &ws);
        // 32 consecutive 8-byte elements per warp read = 2 transactions.
        assert!(
            stats.global_load_efficiency() > 0.9,
            "efficiency = {}",
            stats.global_load_efficiency()
        );
    }

    #[test]
    fn sort_orders_within_segments() {
        let d = DeviceConfig::k20c();
        let ws = KernelWorkspace::new();
        let mut asm =
            AssembledHits::from_segments(vec![vec![pack(1, 3, 7), pack(0, 9, 2), pack(0, 9, 1)]]);
        sort_kernel(&d, &mut asm, &ws);
        assert_eq!(asm.keys, vec![pack(0, 9, 1), pack(0, 9, 2), pack(1, 3, 7)]);
    }

    #[test]
    fn filter_keeps_only_second_hits_within_window() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let asm = AssembledHits::from_segments(vec![vec![
            pack(0, 4, 10),
            pack(0, 4, 30),  // within 40 of 10 → kept
            pack(0, 4, 100), // 70 away → dropped
            pack(0, 4, 120), // within 40 of 100 → kept
            pack(0, 7, 125), // different diagonal, no neighbour → dropped
            pack(1, 4, 11),  // different sequence → dropped
        ]]);
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40, &ws);
        assert_eq!(f.hits, vec![pack(0, 4, 30), pack(0, 4, 120)]);
        assert_eq!(f.before, 6);
        assert!((f.survival_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn filter_boundary_exactly_window() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let asm =
            AssembledHits::from_segments(vec![vec![pack(0, 4, 0), pack(0, 4, 40), pack(0, 4, 81)]]);
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40, &ws);
        // Distance 40 ≤ 40 kept; 41 dropped.
        assert_eq!(f.hits, vec![pack(0, 4, 40)]);
    }

    #[test]
    fn filter_across_chunk_boundaries() {
        // A pair straddling the 32-lane chunk edge must still be compared.
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let mut seg: Vec<u64> = (0..33u32).map(|k| pack(0, 4, k * 2)).collect();
        seg.sort_unstable();
        let asm = AssembledHits::from_segments(vec![seg]);
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40, &ws);
        assert_eq!(f.hits.len(), 32, "all but the first are within window");
    }

    #[test]
    fn empty_everything() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let ws = KernelWorkspace::new();
        let (asm, _) = assemble_kernel(&d, &cfg, binned(vec![vec![], vec![]]), &ws);
        assert_eq!(asm.num_segments(), 0);
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40, &ws);
        assert!(f.hits.is_empty());
        assert_eq!(f.survival_ratio(), 0.0);
    }
}
