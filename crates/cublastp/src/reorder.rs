//! Hit reordering: the assembling, sorting, and filtering kernels
//! (paper §3.3, Fig. 6–7).
//!
//! After binning, the hits of one bin interleave across diagonals (and
//! across the sequences a warp handled). Three kernels restore the order
//! ungapped extension needs:
//!
//! 1. **Assembling** (Fig. 6a) — copy the ragged bins into one contiguous
//!    array so the segmented sort can stream them at full throughput.
//! 2. **Sorting** (Fig. 6b) — a segmented sort of the packed 64-bit
//!    elements; ascending order is (sequence, diagonal, subject position)
//!    by construction of the packing.
//! 3. **Filtering** (Fig. 6c) — drop every hit whose left neighbour on the
//!    same (sequence, diagonal) is farther than the two-hit window: such a
//!    hit can never trigger an extension. The paper measures only 5–11 %
//!    of hits surviving, which is what makes the extra pass profitable.

use crate::binning::BinnedHits;
use crate::config::CuBlastpConfig;
use crate::hitpack::{group_key, subject_pos};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::memory::virtual_alloc;
use gpu_sim::scan::WARP_SCAN_STEPS;
use gpu_sim::sort::segmented_sort_u64;
use gpu_sim::{launch, DeviceConfig, KernelStats, LaunchConfig};

/// Contiguous, segment-delimited hits (output of assembling; segments are
/// the former bins).
pub struct AssembledHits {
    /// One vector per (warp, bin), contiguous in memory on the device.
    pub segments: Vec<Vec<u64>>,
}

/// Assemble the ragged bins into a contiguous array. Thread blocks tile
/// the *output* array (2048 elements each) and gather from the bins —
/// both sides stream, so reads and writes coalesce and lanes stay fully
/// active regardless of how small individual bins are.
pub fn assemble_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    binned: BinnedHits,
) -> (AssembledHits, KernelStats) {
    const TILE: usize = 2048;
    let total = binned.total_hits as usize;
    let src_base = virtual_alloc(total.max(1) as u64 * 8);
    let dst_base = virtual_alloc(total.max(1) as u64 * 8);

    let blocks = total.div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let stats = launch(device, launch_cfg, "hit_assembling", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(total);
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut j = lo;
        while j < hi {
            let active = (hi - j).min(WARP_SIZE as usize);
            addrs.clear();
            addrs.extend((0..active).map(|l| src_base + ((j + l) as u64) * 8));
            block.global_read(&addrs, 8);
            addrs.clear();
            addrs.extend((0..active).map(|l| dst_base + ((j + l) as u64) * 8));
            block.global_write(&addrs, 8);
            j += WARP_SIZE as usize;
        }
    });

    let segments: Vec<Vec<u64>> = binned.bins.into_iter().filter(|b| !b.is_empty()).collect();
    (AssembledHits { segments }, stats)
}

/// Segmented sort of the assembled hits (Fig. 6b / Fig. 7) — delegates to
/// the ModernGPU-model kernel in `gpu-sim`.
pub fn sort_kernel(device: &DeviceConfig, hits: &mut AssembledHits) -> KernelStats {
    segmented_sort_u64(device, &mut hits.segments, "hit_sorting")
}

/// Output of the filtering kernel.
pub struct FilteredHits {
    /// Surviving hits, concatenated segment by segment; within the whole
    /// vector every (sequence, diagonal) group is contiguous and sorted by
    /// subject position.
    pub hits: Vec<u64>,
    /// Hits before filtering.
    pub before: u64,
}

impl FilteredHits {
    /// Fraction of hits that survived (the paper's 5–11 % observation).
    pub fn survival_ratio(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            self.hits.len() as f64 / self.before as f64
        }
    }
}

/// Filtering kernel: one thread per hit compares against its left
/// neighbour in the concatenated sorted array and keeps the hit only when
/// the neighbour is on the same (sequence, diagonal) within the two-hit
/// window. A (sequence, diagonal) group never spans a segment boundary,
/// so the group-key comparison makes flat tiling over the whole array
/// correct — lanes stay dense and reads coalesce. Survivors compact into
/// a per-block buffer with a warp scan, avoiding global atomics (§3.3).
pub fn filter_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    sorted: &AssembledHits,
    window: i64,
) -> (FilteredHits, KernelStats) {
    filter_kernel_mode(device, cfg, sorted, true, window)
}

/// [`filter_kernel`] with an explicit seeding mode. In one-hit mode
/// (`two_hit = false`) every hit is extendable, so the kernel degenerates
/// to a pass-through copy (still charged: the hits must be compacted for
/// the extension kernel either way).
pub fn filter_kernel_mode(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    sorted: &AssembledHits,
    two_hit: bool,
    window: i64,
) -> (FilteredHits, KernelStats) {
    const TILE: usize = 2048;
    let concat: Vec<u64> = sorted.segments.iter().flatten().copied().collect();
    let before = concat.len() as u64;
    let src_base = virtual_alloc(before.max(1) * 8);
    let dst_base = virtual_alloc(before.max(1) * 8);

    let blocks = concat.len().div_ceil(TILE).max(1) as u32;
    let launch_cfg = LaunchConfig {
        blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: 0,
        use_readonly_cache: false,
    };

    let results: parking_lot::Mutex<Vec<(usize, Vec<u64>)>> = parking_lot::Mutex::new(Vec::new());

    let stats = launch(device, launch_cfg, "hit_filtering", |block| {
        let lo = block.block_id as usize * TILE;
        let hi = (lo + TILE).min(concat.len());
        let mut kept: Vec<u64> = Vec::new();
        let mut addrs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
        let mut j = lo;
        while j < hi {
            let active = (hi - j).min(WARP_SIZE as usize);
            // Each lane reads its hit; the left neighbour is the previous
            // lane's value (one extra element at the chunk boundary).
            addrs.clear();
            addrs.extend((0..active).map(|l| src_base + ((j + l) as u64) * 8));
            block.global_read(&addrs, 8);
            // Distance comparison + warp-scan compaction of survivors.
            block.instr(active as u32);
            block.instr_n(active as u32, WARP_SCAN_STEPS);
            let mut writes: Vec<u64> = Vec::new();
            for l in 0..active {
                let idx = j + l;
                if idx == 0 {
                    if !two_hit {
                        writes.push(dst_base + (kept.len() as u64 + writes.len() as u64) * 8);
                        kept.push(concat[idx]);
                    }
                    continue; // in two-hit mode the very first hit has no neighbour
                }
                let cur = concat[idx];
                let prev = concat[idx - 1];
                let extendable = !two_hit
                    || (group_key(cur) == group_key(prev)
                        && (subject_pos(cur) as i64 - subject_pos(prev) as i64) <= window);
                if extendable {
                    writes.push(dst_base + (kept.len() as u64 + writes.len() as u64) * 8);
                    kept.push(cur);
                }
            }
            block.global_write(&writes, 8);
            j += WARP_SIZE as usize;
        }
        results.lock().push((block.block_id as usize, kept));
    });

    let mut per_block = results.into_inner();
    per_block.sort_by_key(|(id, _)| *id);
    let hits: Vec<u64> = per_block.into_iter().flat_map(|(_, v)| v).collect();
    (FilteredHits { hits, before }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitpack::pack;

    fn binned(bins: Vec<Vec<u64>>) -> BinnedHits {
        let total = bins.iter().map(|b| b.len() as u64).sum();
        let num_bins = bins.len();
        BinnedHits {
            bins,
            num_bins,
            num_warps: 1,
            total_hits: total,
        }
    }

    #[test]
    fn assemble_drops_empty_bins_and_keeps_hits() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let b = binned(vec![
            vec![pack(0, 5, 3)],
            vec![],
            vec![pack(0, 2, 1), pack(1, 2, 9)],
        ]);
        let (asm, _) = assemble_kernel(&d, &cfg, b);
        assert_eq!(asm.segments.len(), 2);
        assert_eq!(asm.segments.iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn assemble_of_large_bins_is_coalesced() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let big: Vec<u64> = (0..512u32).map(|k| pack(0, 3, k)).collect();
        let (_, stats) = assemble_kernel(&d, &cfg, binned(vec![big]));
        // 32 consecutive 8-byte elements per warp read = 2 transactions.
        assert!(
            stats.global_load_efficiency() > 0.9,
            "efficiency = {}",
            stats.global_load_efficiency()
        );
    }

    #[test]
    fn sort_orders_within_segments() {
        let d = DeviceConfig::k20c();
        let mut asm = AssembledHits {
            segments: vec![vec![pack(1, 3, 7), pack(0, 9, 2), pack(0, 9, 1)]],
        };
        sort_kernel(&d, &mut asm);
        assert_eq!(
            asm.segments[0],
            vec![pack(0, 9, 1), pack(0, 9, 2), pack(1, 3, 7)]
        );
    }

    #[test]
    fn filter_keeps_only_second_hits_within_window() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let asm = AssembledHits {
            segments: vec![vec![
                pack(0, 4, 10),
                pack(0, 4, 30),  // within 40 of 10 → kept
                pack(0, 4, 100), // 70 away → dropped
                pack(0, 4, 120), // within 40 of 100 → kept
                pack(0, 7, 125), // different diagonal, no neighbour → dropped
                pack(1, 4, 11),  // different sequence → dropped
            ]],
        };
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40);
        assert_eq!(f.hits, vec![pack(0, 4, 30), pack(0, 4, 120)]);
        assert_eq!(f.before, 6);
        assert!((f.survival_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn filter_boundary_exactly_window() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let asm = AssembledHits {
            segments: vec![vec![pack(0, 4, 0), pack(0, 4, 40), pack(0, 4, 81)]],
        };
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40);
        // Distance 40 ≤ 40 kept; 41 dropped.
        assert_eq!(f.hits, vec![pack(0, 4, 40)]);
    }

    #[test]
    fn filter_across_chunk_boundaries() {
        // A pair straddling the 32-lane chunk edge must still be compared.
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let mut seg: Vec<u64> = (0..33u32).map(|k| pack(0, 4, k * 2)).collect();
        seg.sort_unstable();
        let asm = AssembledHits {
            segments: vec![seg],
        };
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40);
        assert_eq!(f.hits.len(), 32, "all but the first are within window");
    }

    #[test]
    fn empty_everything() {
        let d = DeviceConfig::k20c();
        let cfg = CuBlastpConfig::default();
        let (asm, _) = assemble_kernel(&d, &cfg, binned(vec![vec![], vec![]]));
        assert!(asm.segments.is_empty());
        let (f, _) = filter_kernel(&d, &cfg, &asm, 40);
        assert!(f.hits.is_empty());
        assert_eq!(f.survival_ratio(), 0.0);
    }
}
