//! Typed errors for the search pipeline.
//!
//! The pipeline distinguishes four failure categories, mirrored in the
//! CLI's exit codes: bad *configuration* (caller bug — reject before any
//! work), bad *input* (malformed query — fail that query alone), *device*
//! faults that survived the recovery policy (bounded retry, then CPU
//! degradation), and *pipeline* faults (a worker thread panicked or died).
//! Each variant carries enough context to print a one-line diagnostic
//! naming the failing site — no backtrace required to know what happened.

use gpu_sim::DeviceError;
use std::fmt;

/// A failure inside the CPU–GPU overlap executor or batch scheduler: a
/// worker panicked or disappeared mid-stream. The executor converts the
/// panic into this error instead of poisoning its channel and hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A pipeline worker panicked; `side` names the stage ("gpu producer",
    /// "cpu consumer", "batch query") and `payload` is the stringified
    /// panic message.
    WorkerPanicked {
        /// Which pipeline stage the panic escaped from.
        side: &'static str,
        /// The panic payload, stringified (best effort).
        payload: String,
    },
    /// A pipeline channel disconnected before the stream completed — the
    /// peer thread died without reporting a panic.
    ChannelClosed {
        /// Which stage observed the disconnect.
        side: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::WorkerPanicked { side, payload } => {
                write!(f, "{side} worker panicked: {payload}")
            }
            PipelineError::ChannelClosed { side } => {
                write!(f, "pipeline channel closed early ({side} side)")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Stringify a panic payload from [`std::panic::catch_unwind`] — the two
/// common shapes (`&str` and `String`) verbatim, anything else opaquely.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Top-level error of a search: what failed and in which category.
///
/// [`SearchError::category`] gives the stable class name the CLI maps to
/// exit codes (`config` → 2, `input` → 3, `device` → 4, `pipeline` → 5,
/// `deadline` → 6, `overloaded` → 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// Invalid search configuration (e.g. zero block size, retry budget
    /// of zero with fallback disabled, engine/device block-size mismatch).
    Config {
        /// What is wrong with the configuration.
        message: String,
    },
    /// Invalid input (empty query, residues outside the alphabet, …).
    Input {
        /// What is wrong with the input.
        message: String,
    },
    /// A device fault that survived the full recovery policy — retries
    /// exhausted and CPU degradation disabled or impossible.
    Device {
        /// The final device error.
        source: DeviceError,
        /// Database block the fault occurred on.
        block: u32,
        /// Launch attempts made before giving up.
        attempts: u32,
    },
    /// The overlap executor or batch scheduler failed.
    Pipeline(PipelineError),
    /// The request's deadline expired at a cancellation checkpoint: the
    /// search stopped between database blocks and freed its slot. Carries
    /// partial-phase telemetry — how far the pipeline got before the
    /// budget ran out.
    DeadlineExceeded {
        /// Wall-clock spent (queue wait + partial search) in milliseconds.
        elapsed_ms: u64,
        /// Database blocks fully processed before cancellation.
        blocks_completed: u32,
        /// Total database blocks the search would have covered.
        blocks_total: u32,
    },
    /// The serving layer refused admission: queues or the outstanding
    /// work budget are full (or a tenant exceeded its rate limit). The
    /// caller should retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A persistent database image (`.cdb`) failed to build, map, or
    /// validate: truncation, bad magic, version mismatch, CRC failure, or
    /// an inconsistent layout. Corruption is always surfaced as this typed
    /// error — never a panic, never a silently wrong layout.
    Db(cublastp_db::DbError),
}

impl SearchError {
    /// Stable category label ("config" | "input" | "device" | "pipeline"
    /// | "deadline" | "overloaded" | "db").
    pub fn category(&self) -> &'static str {
        match self {
            SearchError::Config { .. } => "config",
            SearchError::Input { .. } => "input",
            SearchError::Device { .. } => "device",
            SearchError::Pipeline(_) => "pipeline",
            SearchError::DeadlineExceeded { .. } => "deadline",
            SearchError::Overloaded { .. } => "overloaded",
            SearchError::Db(_) => "db",
        }
    }

    /// Convenience constructor for configuration errors.
    pub fn config(message: impl Into<String>) -> Self {
        SearchError::Config {
            message: message.into(),
        }
    }

    /// Convenience constructor for input errors.
    pub fn input(message: impl Into<String>) -> Self {
        SearchError::Input {
            message: message.into(),
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Config { message } => write!(f, "invalid configuration: {message}"),
            SearchError::Input { message } => write!(f, "invalid input: {message}"),
            SearchError::Device {
                source,
                block,
                attempts,
            } => write!(
                f,
                "device fault on block {block} after {attempts} attempt(s): {source}"
            ),
            SearchError::Pipeline(e) => write!(f, "pipeline failure: {e}"),
            SearchError::DeadlineExceeded {
                elapsed_ms,
                blocks_completed,
                blocks_total,
            } => write!(
                f,
                "deadline exceeded after {elapsed_ms} ms \
                 ({blocks_completed}/{blocks_total} blocks completed)"
            ),
            SearchError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            SearchError::Db(e) => write!(f, "database image [{}]: {e}", e.kind()),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Device { source, .. } => Some(source),
            SearchError::Pipeline(e) => Some(e),
            SearchError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for SearchError {
    fn from(e: PipelineError) -> Self {
        SearchError::Pipeline(e)
    }
}

impl From<cublastp_db::DbError> for SearchError {
    fn from(e: cublastp_db::DbError) -> Self {
        SearchError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        assert_eq!(SearchError::config("x").category(), "config");
        assert_eq!(SearchError::input("x").category(), "input");
        assert_eq!(
            SearchError::Device {
                source: DeviceError::TransferFailed {
                    dir: gpu_sim::TransferDir::DeviceToHost
                },
                block: 2,
                attempts: 3,
            }
            .category(),
            "device"
        );
        assert_eq!(
            SearchError::from(PipelineError::ChannelClosed { side: "cpu" }).category(),
            "pipeline"
        );
        assert_eq!(
            SearchError::DeadlineExceeded {
                elapsed_ms: 120,
                blocks_completed: 2,
                blocks_total: 5,
            }
            .category(),
            "deadline"
        );
        assert_eq!(
            SearchError::Overloaded { retry_after_ms: 50 }.category(),
            "overloaded"
        );
        assert_eq!(
            SearchError::from(cublastp_db::DbError::BadMagic { found: [0; 8] }).category(),
            "db"
        );
    }

    #[test]
    fn db_errors_display_their_kind() {
        let e = SearchError::from(cublastp_db::DbError::UnsupportedVersion {
            found: 9,
            supported: 1,
        });
        let s = e.to_string();
        assert!(
            s.contains("[bad-version]") && s.contains("version 9"),
            "{s}"
        );
        assert!(!s.contains('\n'));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn serving_errors_display_their_telemetry() {
        let d = SearchError::DeadlineExceeded {
            elapsed_ms: 120,
            blocks_completed: 2,
            blocks_total: 5,
        }
        .to_string();
        assert!(d.contains("120 ms") && d.contains("2/5"), "{d}");
        assert!(!d.contains('\n'));
        let o = SearchError::Overloaded { retry_after_ms: 50 }.to_string();
        assert!(o.contains("retry after 50 ms"), "{o}");
    }

    #[test]
    fn display_is_one_line_with_context() {
        let e = SearchError::Device {
            source: DeviceError::LaunchFailed {
                kernel: "hit_sorting".into(),
            },
            block: 5,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("block 5") && s.contains("hit_sorting") && s.contains("3 attempt"));
        assert!(!s.contains('\n'));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn panic_messages_stringify_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "boom 7");
        let caught = std::panic::catch_unwind(|| panic!("static")).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "static");
    }
}
