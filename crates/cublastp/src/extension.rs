//! Fine-grained ungapped extension: the diagonal-based (Algorithm 3),
//! hit-based (Algorithm 4) and window-based (Algorithm 5) kernels of
//! §3.4, plus the scoring-table placement policy of §3.5.
//!
//! All three strategies compute extensions with the *same* x-drop routine
//! as the CPU reference ([`blast_cpu::ungapped::extend`]), so functional
//! output is identical by construction; what differs — and what the cost
//! model captures — is how work maps to lanes:
//!
//! * **diagonal-based**: lane ↦ one (sequence, diagonal) group; walks its
//!   hits with the coverage check. Divergence from both varying hit counts
//!   and varying extension lengths.
//! * **hit-based**: lane ↦ one filtered hit, extended unconditionally; no
//!   coverage branch, but redundant extensions (duplicates are removed in
//!   a de-duplication pass) and load imbalance from extension lengths.
//! * **window-based**: a window of `window_size` lanes ↦ one diagonal;
//!   each hit is extended cooperatively, `window_size` positions per step
//!   with a CUB-style prefix scan computing running scores, ChangeSinceBest
//!   and DropFlag (Fig. 8).

use crate::config::{CuBlastpConfig, ExtensionStrategy, ScoringMode};
use crate::devicedata::{DeviceDbBlock, DeviceQuery};
use crate::hitpack::{group_key, query_pos, seq_id, subject_pos};
use crate::reorder::FilteredHits;
use blast_core::SearchParams;
use blast_cpu::ungapped::{extend, UngappedExt};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::{launch_map, DeviceConfig, KernelStats, LaunchConfig};

/// Positions an x-drop extension scans beyond the best-scoring end before
/// giving up (cost-model constant; the functional routine computes the
/// exact extent).
const OVERSHOOT: u64 = 8;

/// Output of the ungapped-extension kernel.
pub struct ExtensionResult {
    /// Extensions, grouped by subject sequence in block-local ids,
    /// de-duplicated for the hit-based strategy.
    pub extensions: Vec<UngappedExt>,
    /// Kernel stats (divergence overhead drives Fig. 16b).
    pub stats: KernelStats,
    /// Redundant extensions the hit-based strategy computed and discarded.
    pub redundant: u64,
}

/// Per-lane cost aggregate for one lockstep batch.
#[derive(Debug, Clone, Copy, Default)]
struct LaneCost {
    cycles: u64,
    global_tx: u64,
    useful_bytes: u64,
    shared: u64,
}

/// Scoring-path cost per extended position, derived from §3.5.
#[derive(Debug, Clone, Copy)]
struct ScoringCost {
    /// Extra cycles per scored position.
    cycles_per_pos: u64,
    /// Shared-memory accesses per scored position.
    shared_per_pos: u64,
    /// Global transactions per scored position (PSSM spilled to global:
    /// the 64-byte column stride touches a new line every other position).
    tx_per_pos_x2: u64, // in halves to keep integer math
    /// Useful bytes per scored position read from global.
    bytes_per_pos: u64,
}

fn scoring_cost(cfg: &CuBlastpConfig, query_len: usize, device: &DeviceConfig) -> ScoringCost {
    match cfg.resolved_scoring(query_len) {
        ScoringMode::Pssm => {
            if cfg.pssm_in_global(query_len) {
                ScoringCost {
                    cycles_per_pos: device.global_transaction_cost / 2,
                    shared_per_pos: 0,
                    tx_per_pos_x2: 1,
                    bytes_per_pos: 2,
                }
            } else {
                // One shared-memory load per position, partially hidden
                // behind the arithmetic.
                ScoringCost {
                    cycles_per_pos: 2 * device.shared_access_cost,
                    shared_per_pos: 1,
                    tx_per_pos_x2: 0,
                    bytes_per_pos: 0,
                }
            }
        }
        // BLOSUM62: the query residue must be loaded before the matrix
        // cell can be addressed — two *dependent* shared loads whose
        // latency cannot overlap, plus bank conflicts from effectively
        // random (query, subject) residue pairs. This is the extra memory
        // work §3.5 trades against the PSSM's footprint.
        ScoringMode::Blosum62 => ScoringCost {
            cycles_per_pos: 5 * device.shared_access_cost + device.atomic_conflict_cost,
            shared_per_pos: 2,
            tx_per_pos_x2: 0,
            bytes_per_pos: 0,
        },
        ScoringMode::Auto => unreachable!("resolved"),
    }
}

/// Instructions per extended position: score add, running-best update,
/// drop test, bounds check, predicate and pointer bump.
const INSTR_PER_POS: u64 = 6;

/// Cost of one sequential (single-lane) extension that scanned `scanned`
/// subject positions. Every position issues a load (no L1 on Kepler); the
/// loads walk one line at a time, so DRAM sees only `scanned/128` lines
/// while the lane pays L2 latency per position.
fn sequential_ext_cost(scanned: u64, sc: &ScoringCost, device: &DeviceConfig) -> LaneCost {
    let dram_lines = 1 + scanned / 128;
    LaneCost {
        cycles: scanned
            * (INSTR_PER_POS * device.instr_cost + sc.cycles_per_pos + device.l2_hit_cost)
            + dram_lines * device.global_transaction_cost
            + (scanned * sc.tx_per_pos_x2 / 2) * device.global_transaction_cost,
        global_tx: dram_lines + scanned * sc.tx_per_pos_x2 / 2,
        useful_bytes: scanned + scanned * sc.bytes_per_pos,
        shared: scanned * sc.shared_per_pos,
    }
}

/// Cost of one window-cooperative extension (`w` lanes scan `w` positions
/// per step with a warp scan). The window's lanes read `w` *consecutive*
/// subject bytes per step — one coalesced load, L2-resident after the
/// first touch of each line — so the window amortizes both latency and
/// bandwidth `w`-fold over the single-lane strategies.
fn window_ext_cost(scanned: u64, w: u64, sc: &ScoringCost, device: &DeviceConfig) -> LaneCost {
    let steps = scanned.div_ceil(w).max(1);
    // A w-lane shuffle scan needs ⌈log₂ w⌉ steps (3 for the default 8).
    let scan_steps = (w.max(2) as f64).log2().ceil() as u64;
    // Redundant positions: the window always completes its last chunk.
    let scanned_padded = steps * w;
    let dram_lines = 1 + scanned_padded / 128;
    LaneCost {
        cycles: steps
            * ((scan_steps + INSTR_PER_POS) * device.instr_cost
                + sc.cycles_per_pos
                + device.l2_hit_cost)
            + dram_lines * device.global_transaction_cost
            + (scanned_padded * sc.tx_per_pos_x2 / 2) * device.global_transaction_cost,
        global_tx: dram_lines + scanned_padded * sc.tx_per_pos_x2 / 2,
        useful_bytes: scanned_padded + scanned_padded * sc.bytes_per_pos,
        shared: scanned_padded * sc.shared_per_pos,
    }
}

/// Cost of walking `n_hits` packed hits on one lane (8-byte loads, 16 hits
/// per 128-byte line since the group is contiguous).
fn hit_walk_cost(n_hits: u64, device: &DeviceConfig) -> LaneCost {
    let lines = 1 + n_hits / 16;
    LaneCost {
        cycles: n_hits * 2 * device.instr_cost + lines * device.global_transaction_cost,
        global_tx: lines,
        useful_bytes: n_hits * 8,
        shared: 0,
    }
}

impl LaneCost {
    fn add(&mut self, other: LaneCost) {
        self.cycles += other.cycles;
        self.global_tx += other.global_tx;
        self.useful_bytes += other.useful_bytes;
        self.shared += other.shared;
    }
}

/// Slice the filtered hits into (sequence, diagonal) tasks — runs of equal
/// [`group_key`].
pub fn build_tasks(hits: &[u64]) -> Vec<(usize, usize)> {
    let mut tasks = Vec::new();
    let mut start = 0usize;
    for i in 1..=hits.len() {
        if i == hits.len() || group_key(hits[i]) != group_key(hits[start]) {
            tasks.push((start, i));
            start = i;
        }
    }
    tasks
}

/// Functional diagonal walk with the coverage check (Algorithm 3 lines
/// 12–24) — the semantics shared with the CPU reference.
fn walk_task(
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    hits: &[u64],
    params: &SearchParams,
    out: &mut Vec<UngappedExt>,
) -> u64 {
    let qlen = query.query_len();
    let mut ext_reach: i64 = 0;
    let mut scanned_total = 0u64;
    for &h in hits {
        let spos = subject_pos(h);
        if (spos as i64) >= ext_reach {
            let sid = seq_id(h);
            let qpos = query_pos(h, qlen);
            let ext = extend(
                &query.pssm,
                db.seq(sid as usize),
                sid,
                qpos,
                spos,
                params.xdrop_ungapped,
            );
            ext_reach = ext.s_end() as i64;
            scanned_total += ext.len as u64 + 2 * OVERSHOOT;
            out.push(ext);
        }
    }
    scanned_total
}

/// Run the configured ungapped-extension kernel over the filtered hits.
pub fn extension_kernel(
    device: &DeviceConfig,
    cfg: &CuBlastpConfig,
    query: &DeviceQuery,
    db: &DeviceDbBlock,
    filtered: &FilteredHits,
    params: &SearchParams,
) -> ExtensionResult {
    let tasks = build_tasks(&filtered.hits);
    let qlen = query.query_len();
    let sc = scoring_cost(cfg, qlen, device);

    let shared = cfg.scoring_shared_bytes(qlen);
    let launch_cfg = LaunchConfig {
        blocks: cfg.grid_blocks,
        warps_per_block: cfg.warps_per_block,
        shared_bytes_per_block: shared + 1024, // + per-block output buffer
        use_readonly_cache: cfg.use_readonly_cache,
    };

    let name = match cfg.extension {
        ExtensionStrategy::Diagonal => "ungapped_extension_diagonal",
        ExtensionStrategy::Hit => "ungapped_extension_hit",
        ExtensionStrategy::Window => "ungapped_extension_window",
    };

    let blocks = cfg.grid_blocks.max(1);

    // Each block's extensions come back by value in block order — no
    // mutex collector, no re-sorting by block id.
    let (per_block, stats) = launch_map(device, launch_cfg, name, |block| {
        let mut out: Vec<UngappedExt> = Vec::new();
        match cfg.extension {
            ExtensionStrategy::Diagonal => {
                // Lane ↦ task; warp batch = 32 tasks; blocks stride the
                // batch list.
                let mut lane_costs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
                let mut batch = block.block_id as usize;
                let batches = tasks.len().div_ceil(WARP_SIZE as usize);
                while batch < batches {
                    let lo = batch * WARP_SIZE as usize;
                    let hi = (lo + WARP_SIZE as usize).min(tasks.len());
                    lane_costs.clear();
                    let mut traffic = LaneCost::default();
                    for &(s, e) in &tasks[lo..hi] {
                        let mut lane = hit_walk_cost((e - s) as u64, block.device());
                        let before = out.len();
                        let scanned = walk_task(query, db, &filtered.hits[s..e], params, &mut out);
                        let _ = before;
                        lane.add(sequential_ext_cost(scanned, &sc, block.device()));
                        lane_costs.push(lane.cycles);
                        traffic.add(LaneCost {
                            cycles: 0,
                            global_tx: lane.global_tx,
                            useful_bytes: lane.useful_bytes,
                            shared: lane.shared,
                        });
                    }
                    block.lockstep(&lane_costs);
                    block.bulk_traffic(traffic.global_tx, traffic.useful_bytes, traffic.shared);
                    batch += blocks as usize;
                }
            }
            ExtensionStrategy::Hit => {
                // Lane ↦ hit; every filtered hit is extended, coverage be
                // damned (Algorithm 4) — duplicates removed afterwards.
                let mut lane_costs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
                let n = filtered.hits.len();
                let batches = n.div_ceil(WARP_SIZE as usize);
                let mut batch = block.block_id as usize;
                while batch < batches {
                    let lo = batch * WARP_SIZE as usize;
                    let hi = (lo + WARP_SIZE as usize).min(n);
                    lane_costs.clear();
                    let mut traffic = LaneCost::default();
                    for &h in &filtered.hits[lo..hi] {
                        let sid = seq_id(h);
                        let spos = subject_pos(h);
                        let qpos = query_pos(h, qlen);
                        let ext = extend(
                            &query.pssm,
                            db.seq(sid as usize),
                            sid,
                            qpos,
                            spos,
                            params.xdrop_ungapped,
                        );
                        let scanned = ext.len as u64 + 2 * OVERSHOOT;
                        out.push(ext);
                        let mut lane = hit_walk_cost(1, block.device());
                        lane.add(sequential_ext_cost(scanned, &sc, block.device()));
                        lane_costs.push(lane.cycles);
                        traffic.add(LaneCost { cycles: 0, ..lane });
                    }
                    block.lockstep(&lane_costs);
                    block.bulk_traffic(traffic.global_tx, traffic.useful_bytes, traffic.shared);
                    batch += blocks as usize;
                }
            }
            ExtensionStrategy::Window => {
                // Window of `window_size` lanes ↦ task; warp batch =
                // 32 / window_size tasks (Fig. 9d).
                let w = cfg.window_size.clamp(2, WARP_SIZE as usize) as u64;
                let windows_per_warp = (WARP_SIZE as usize / w as usize).max(1);
                let mut win_costs: Vec<u64> = Vec::with_capacity(windows_per_warp);
                let batches = tasks.len().div_ceil(windows_per_warp);
                let mut batch = block.block_id as usize;
                while batch < batches {
                    let lo = batch * windows_per_warp;
                    let hi = (lo + windows_per_warp).min(tasks.len());
                    win_costs.clear();
                    let mut traffic = LaneCost::default();
                    for &(s, e) in &tasks[lo..hi] {
                        // Per-window serialized cost over its hits.
                        let mut win = hit_walk_cost((e - s) as u64, block.device());
                        let before = out.len();
                        let _ = walk_task(query, db, &filtered.hits[s..e], params, &mut out);
                        for ext in &out[before..] {
                            let scanned = ext.len as u64 + 2 * OVERSHOOT;
                            win.add(window_ext_cost(scanned, w, &sc, block.device()));
                        }
                        win_costs.push(win.cycles);
                        traffic.add(LaneCost { cycles: 0, ..win });
                    }
                    // Expand window costs to lane granularity: all lanes of
                    // a window stay active for the window's duration.
                    let mut lane_costs: Vec<u64> = Vec::with_capacity(WARP_SIZE as usize);
                    for &c in &win_costs {
                        for _ in 0..w {
                            lane_costs.push(c);
                        }
                    }
                    block.lockstep(&lane_costs);
                    block.bulk_traffic(traffic.global_tx, traffic.useful_bytes, traffic.shared);
                    batch += blocks as usize;
                }
            }
        }
        out
    });

    let mut extensions: Vec<UngappedExt> = per_block.into_iter().flatten().collect();

    // Canonical order: by subject, then position — shared by every
    // strategy so downstream phases are order-independent.
    extensions.sort_by_key(|e| (e.seq_id, e.s_start, e.q_start, e.len));
    let mut redundant = 0u64;
    if cfg.extension == ExtensionStrategy::Hit {
        let before = extensions.len();
        extensions.dedup();
        redundant = (before - extensions.len()) as u64;
    }

    ExtensionResult {
        extensions,
        stats,
        redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitpack::pack;
    use bio_seq::generate::make_query;
    use bio_seq::Sequence;
    use blast_core::{Dfa, Matrix, Pssm};

    fn device_query(qlen: usize) -> DeviceQuery {
        let q = make_query(qlen);
        let m = Matrix::blosum62();
        DeviceQuery::upload(Dfa::build(&q, &m, 11), Pssm::build(&q, &m))
    }

    fn filtered(hits: Vec<u64>) -> FilteredHits {
        let before = hits.len() as u64 * 10;
        FilteredHits { hits, before }
    }

    #[test]
    fn build_tasks_groups_by_sequence_and_diagonal() {
        let hits = vec![pack(0, 3, 1), pack(0, 3, 9), pack(0, 5, 2), pack(1, 3, 4)];
        assert_eq!(build_tasks(&hits), vec![(0, 2), (2, 3), (3, 4)]);
        assert!(build_tasks(&[]).is_empty());
    }

    fn workload() -> (DeviceQuery, DeviceDbBlock, FilteredHits) {
        let dq = device_query(64);
        let q = make_query(64);
        // Subjects embedding the query → real extendable hits.
        let subjects: Vec<Sequence> = (0..12)
            .map(|k| {
                let mut r = make_query(40 + k).residues().to_vec();
                r.extend_from_slice(q.residues());
                r.extend(make_query(30 + k).residues().iter());
                Sequence::from_residues(format!("s{k}"), r)
            })
            .collect();
        let db = DeviceDbBlock::upload(&subjects, 0);
        // Generate filtered hits with the real front half of the pipeline.
        let cfg = CuBlastpConfig {
            grid_blocks: 2,
            warps_per_block: 2,
            num_bins: 16,
            ..Default::default()
        };
        let d = DeviceConfig::k20c();
        let ws = gpu_sim::KernelWorkspace::new();
        let (binned, _) = crate::binning::binning_kernel(&d, &cfg, &dq, &db, &ws);
        let (mut asm, _) = crate::reorder::assemble_kernel(&d, &cfg, binned, &ws);
        crate::reorder::sort_kernel(&d, &mut asm, &ws);
        let (f, _) = crate::reorder::filter_kernel(&d, &cfg, &asm, 40, &ws);
        (dq, db, f)
    }

    #[test]
    fn diagonal_and_window_produce_identical_extensions() {
        let (dq, db, f) = workload();
        let d = DeviceConfig::k20c();
        let p = SearchParams::default();
        let run = |strategy| {
            let cfg = CuBlastpConfig {
                extension: strategy,
                grid_blocks: 3,
                warps_per_block: 2,
                ..Default::default()
            };
            extension_kernel(&d, &cfg, &dq, &db, &f, &p)
        };
        let diag = run(ExtensionStrategy::Diagonal);
        let win = run(ExtensionStrategy::Window);
        assert!(
            !diag.extensions.is_empty(),
            "workload produced no extensions"
        );
        assert_eq!(diag.extensions, win.extensions);
        assert_eq!(diag.redundant, 0);
        assert_eq!(win.redundant, 0);
    }

    #[test]
    fn hit_based_is_superset_after_dedup() {
        let (dq, db, f) = workload();
        let d = DeviceConfig::k20c();
        let p = SearchParams::default();
        let mk = |strategy| CuBlastpConfig {
            extension: strategy,
            grid_blocks: 2,
            warps_per_block: 2,
            ..Default::default()
        };
        let diag = extension_kernel(&d, &mk(ExtensionStrategy::Diagonal), &dq, &db, &f, &p);
        let hit = extension_kernel(&d, &mk(ExtensionStrategy::Hit), &dq, &db, &f, &p);
        // Every diagonal-based extension appears in the hit-based output.
        for e in &diag.extensions {
            assert!(
                hit.extensions.contains(e),
                "missing extension {e:?} in hit-based output"
            );
        }
        assert!(hit.extensions.len() >= diag.extensions.len());
    }

    #[test]
    fn extension_results_are_independent_of_grid_shape() {
        let (dq, db, f) = workload();
        let d = DeviceConfig::k20c();
        let p = SearchParams::default();
        let run = |blocks, warps| {
            let cfg = CuBlastpConfig {
                grid_blocks: blocks,
                warps_per_block: warps,
                ..Default::default()
            };
            extension_kernel(&d, &cfg, &dq, &db, &f, &p).extensions
        };
        assert_eq!(run(1, 1), run(7, 4));
    }

    #[test]
    fn window_has_lowest_divergence() {
        let (dq, db, f) = workload();
        let d = DeviceConfig::k20c();
        let p = SearchParams::default();
        let run = |strategy| {
            let cfg = CuBlastpConfig {
                extension: strategy,
                grid_blocks: 2,
                warps_per_block: 2,
                ..Default::default()
            };
            extension_kernel(&d, &cfg, &dq, &db, &f, &p)
                .stats
                .divergence_overhead()
        };
        let diag = run(ExtensionStrategy::Diagonal);
        let win = run(ExtensionStrategy::Window);
        assert!(
            win < diag,
            "window divergence {win} must beat diagonal {diag}"
        );
    }

    #[test]
    fn empty_filtered_hits() {
        let dq = device_query(32);
        let db = DeviceDbBlock::upload(&[], 0);
        let d = DeviceConfig::k20c();
        let p = SearchParams::default();
        let cfg = CuBlastpConfig::default();
        let r = extension_kernel(&d, &cfg, &dq, &db, &filtered(vec![]), &p);
        assert!(r.extensions.is_empty());
        assert_eq!(r.redundant, 0);
    }
}
