//! # cuBLASTP-rs
//!
//! A from-scratch reproduction of *cuBLASTP: Fine-Grained Parallelization
//! of Protein Sequence Search on a GPU* (Zhang, Wang, Feng), running on
//! the SIMT simulator in the `gpu-sim` crate instead of a physical Kepler
//! GPU (see DESIGN.md for the substitution argument).
//!
//! The pipeline decouples BLASTP's phases into five fine-grained GPU
//! kernels plus a multicore CPU tail, bridged by the paper's
//! binning–sorting–filtering reorder:
//!
//! ```text
//! hit detection + binning      (Algorithm 2, warp per sequence)
//!   → hit assembling           (Fig. 6a)
//!   → segmented hit sorting    (Fig. 6b, packed 64-bit keys of Fig. 7)
//!   → hit filtering            (Fig. 6c, two-hit window)
//!   → ungapped extension       (Algorithms 3/4/5: diagonal / hit / window)
//!   → [PCIe] → gapped extension + traceback on CPU threads (§3.6)
//! ```
//!
//! The end-to-end entry point is [`CuBlastp`]:
//!
//! ```
//! use bio_seq::generate::{generate_preset, make_query, DbPreset};
//! use blast_core::SearchParams;
//! use cublastp::{CuBlastp, CuBlastpConfig};
//! use gpu_sim::DeviceConfig;
//!
//! let query = make_query(127);
//! let db = generate_preset(DbPreset::SwissprotMini, &query).db;
//! let searcher = CuBlastp::new(
//!     query,
//!     SearchParams::default(),
//!     CuBlastpConfig::default(),
//!     DeviceConfig::k20c(),
//!     &db,
//! );
//! let result = searcher.search(&db).expect("search failed");
//! println!("{} alignments, {:.2} ms on the simulated K20c",
//!          result.report.hits.len(), result.timing.total_ms());
//! ```
//!
//! Searches return `Result`: device faults that survive the bounded-retry
//! and CPU-degradation policy ([`RecoveryPolicy`]), invalid configurations,
//! and pipeline worker panics surface as typed [`SearchError`]s instead of
//! process aborts. See DESIGN.md §3.3 for the fault model.

pub mod binning;
pub mod cancel;
pub mod cluster;
pub mod config;
pub mod devicedata;
pub mod error;
pub mod extension;
pub mod gapped_device;
pub mod gapped_gpu;
pub mod gpu_phase;
pub mod grouped;
pub mod grouping;
pub mod hitpack;
pub mod pipeline;
pub mod reorder;
pub mod scheduler;
pub mod search;
pub mod shard;

pub use cancel::CancelToken;
pub use cluster::{search_cluster, ClusterConfig, ClusterResult};
pub use config::{
    CuBlastpConfig, ExtensionStrategy, GappedBackend, PipelineConfig, RecoveryPolicy, ScoringMode,
};
pub use devicedata::{flatten_count, mapped_block_count, DeviceDb, DeviceDbCache, ResidueStore};
pub use error::{PipelineError, SearchError};
pub use gpu_phase::{ExtensionsCsr, GpuPhaseCounts, GpuPhaseOutput};
pub use grouped::DeviceGroupIndex;
pub use grouping::plan_rounds;
pub use pipeline::{overlap_blocks, overlap_blocks_depth, schedule, BlockTiming, PipelineSchedule};
pub use scheduler::{
    schedule_work_stealing, DeviceTimeline, StealEvent, StealSchedule, DEFAULT_STEAL_SEED,
};
pub use search::{
    search_batch, search_batch_parallel, search_batch_with, BatchOptions, BatchOutcome,
    BlockProgress, CuBlastp, CuBlastpResult, CuBlastpTiming, GroupedReport, RecoveryReport,
    RoundReport, SearchHooks, SeedMode, DEFAULT_GROUP_BUDGET,
};
pub use shard::{
    search_all_vs_all, search_sharded, search_sharded_batch, search_sharded_with_hooks,
    AllVsAllOptions, AllVsAllResult, DbShard, ShardedBatchOptions, ShardedBatchOutcome, ShardedDb,
    ShardedOptions, ShardedResult, SimEntry, SparseSimMatrix,
};
